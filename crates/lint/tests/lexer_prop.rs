//! Property tests: no string, raw string, char literal, comment or
//! suppression directive may ever confuse the lexer into a false
//! positive or a missed finding.

use proptest::prelude::*;
use wsd_lint::lexer::strip;
use wsd_lint::lint_source;

const PATH: &str = "crates/core/src/prop.rs";

/// Payload text that may *contain* forbidden patterns but no string
/// delimiters/escapes of its own (those are added by each property).
fn payload() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 :(){}.,_|&;=+*-]{0,40}".prop_map(|junk| format!("{junk} thread::spawn(Instant::now SystemTime::now q.pop().unwrap() mpsc::channel("))
}

proptest! {
    /// Forbidden patterns inside a plain string literal never flag, and
    /// code after the literal is still linted.
    #[test]
    fn strings_never_flag_and_code_after_still_linted(p in payload()) {
        let src = format!("fn f() {{ let s = \"{p}\"; }}\nfn g() {{ std::thread::spawn(|| {{}}); }}\n");
        let findings = lint_source(PATH, &src);
        prop_assert_eq!(findings.len(), 1, "{:#?}", &findings);
        prop_assert_eq!(findings[0].rule, "raw-thread-spawn");
        prop_assert_eq!(findings[0].line, 2);
    }

    /// The same, for raw strings with 1–3 hashes.
    #[test]
    fn raw_strings_never_flag(p in payload(), hashes in 1usize..=3) {
        let h = "#".repeat(hashes);
        // A lone quote inside the body exercises the hash-counting close.
        let src = format!("fn f() {{ let s = r{h}\"{p} \" un-closing quote\"{h}; }}\nfn g() {{ let t = std::time::Instant::now(); }}\n");
        let findings = lint_source(PATH, &src);
        prop_assert_eq!(findings.len(), 1, "{:#?}", &findings);
        prop_assert_eq!(findings[0].rule, "raw-clock");
        prop_assert_eq!(findings[0].line, 2);
    }

    /// Comment bodies never flag (and never parse as directives when they
    /// don't start with the directive prefix).
    #[test]
    fn comments_never_flag(p in payload(), block in any::<bool>()) {
        let src = if block {
            format!("fn f() {{ /* x {p} */ }}\nfn g() {{ q.recv().expect(\"x\"); }}\n")
        } else {
            format!("fn f() {{}} // x {p}\nfn g() {{ q.recv().expect(\"x\"); }}\n")
        };
        let findings = lint_source(PATH, &src);
        prop_assert_eq!(findings.len(), 1, "{:#?}", &findings);
        prop_assert_eq!(findings[0].rule, "unwrap-in-dispatcher");
        prop_assert_eq!(findings[0].line, 2);
    }

    /// A reasoned suppression silences exactly its own rule on the next
    /// line — and only that rule.
    #[test]
    fn reasoned_suppressions_silence_next_line(reason in "[a-zA-Z][a-zA-Z0-9 ]{9,40}") {
        let src = format!(
            "// wsd-lint: allow(raw-clock): {reason}\nlet t = std::time::Instant::now();\nlet u = std::time::Instant::now();\n"
        );
        let findings = lint_source(PATH, &src);
        prop_assert_eq!(findings.len(), 1, "{:#?}", &findings);
        prop_assert_eq!(findings[0].line, 3);
    }

    /// Newline counts survive stripping for arbitrary mixes of literals
    /// and comments, so finding line numbers always align.
    #[test]
    fn line_structure_is_preserved(parts in proptest::collection::vec(
        prop_oneof![
            Just("let a = 1;".to_string()),
            "let s = \"[a-z ]{0,10}\";".prop_map(|s| s),
            Just("// comment Instant::now".to_string()),
            Just("/* block\n   spanning */ let b = 2;".to_string()),
            Just("let c = '\\''; let d = 'x';".to_string()),
        ],
        0..8,
    )) {
        let src = parts.join("\n");
        let stripped = strip(&src);
        prop_assert_eq!(stripped.code.lines().count(), src.lines().count());
        prop_assert_eq!(
            stripped.code.chars().filter(|c| *c == '\n').count(),
            src.chars().filter(|c| *c == '\n').count()
        );
    }

    /// Char literals (including escaped quotes) never swallow following
    /// code.
    #[test]
    fn char_literals_do_not_swallow_code(c in prop_oneof![
        Just("'x'"), Just("'\\''"), Just("'\"'"), Just("'\\\\'"), Just("b'q'"),
    ]) {
        let src = format!("fn f() {{ let q = {c}; std::thread::spawn(|| {{}}); }}\n");
        let findings = lint_source(PATH, &src);
        prop_assert_eq!(findings.len(), 1, "{c}: {:#?}", &findings);
        prop_assert_eq!(findings[0].rule, "raw-thread-spawn");
    }
}
