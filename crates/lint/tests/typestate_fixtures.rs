//! End-to-end coverage for the v4 engines (typestate automata and the
//! blocking wait-for graph): every seeded violation must be caught
//! with the expected state/cycle witness, and the known-good twins —
//! the same shapes done right — must produce zero findings.

use std::path::PathBuf;

use wsd_lint::analyze_workspace;
use wsd_lint::rules::Finding;
use wsd_lint::sarif;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name)
}

fn by_rule<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn seeded_typestate_violations_are_all_caught_exactly() {
    let wa = analyze_workspace(&fixture_root("typestate_seeded"), false).expect("walk fixture");

    // WAL: one fall-through leak, one early-return leak; the commit on
    // the racy function's long path must not mask the short one.
    let wal = by_rule(&wa.findings, "wal-ack-before-durable");
    assert_eq!(wal.len(), 2, "{:#?}", wa.findings);
    for f in &wal {
        assert_eq!(f.file, "crates/store/src/walbox.rs");
        assert!(f.excerpt.contains("appended but not committed"), "{f:#?}");
        assert_eq!(f.flow.len(), 2, "{f:#?}");
    }
    assert!(wal.iter().any(|f| f.excerpt.contains("deposit_fast`")), "{wal:#?}");
    assert!(wal.iter().any(|f| f.excerpt.contains("deposit_racy`")), "{wal:#?}");

    // Scratch guard: binding-tracked machine, error-row violation.
    let scratch = by_rule(&wa.findings, "scratch-use-after-take");
    assert_eq!(scratch.len(), 1, "{:#?}", wa.findings);
    assert_eq!(scratch[0].file, "crates/soap/src/scratch_enc.rs");
    assert!(scratch[0].excerpt.contains("`guard`"), "{scratch:#?}");
    assert!(scratch[0].excerpt.contains("take_out"), "{scratch:#?}");

    // Reactor accounting: the !keep fall-through leaks the conn.
    let reactor = by_rule(&wa.findings, "reactor-conn-accounting");
    assert_eq!(reactor.len(), 1, "{:#?}", wa.findings);
    assert_eq!(reactor[0].file, "crates/concurrent/src/reactor.rs");
    assert!(reactor[0].excerpt.contains("reinsert`"), "{reactor:#?}");

    // Fleet handoff: claimed but never completed on the failure path.
    let fleet = by_rule(&wa.findings, "fleet-handoff-completion");
    assert_eq!(fleet.len(), 1, "{:#?}", wa.findings);
    assert_eq!(fleet[0].file, "crates/core/src/handoff.rs");
    assert!(fleet[0].excerpt.contains("adopt`"), "{fleet:#?}");

    // Nothing else fires on the seeded tree.
    assert_eq!(wa.findings.len(), 5, "{:#?}", wa.findings);
}

#[test]
fn known_good_typestate_twin_has_zero_findings() {
    let wa =
        analyze_workspace(&fixture_root("typestate_known_good"), false).expect("walk fixture");
    assert!(wa.findings.is_empty(), "{:#?}", wa.findings);
}

#[test]
fn seeded_waitgraph_violations_are_all_caught_exactly() {
    let wa = analyze_workspace(&fixture_root("waitgraph_seeded"), false).expect("walk fixture");

    // The two-node cycle: hub.state -> jobs (push under lock) and
    // jobs -> hub.state (pop then acquire).
    let cycle = by_rule(&wa.findings, "blocking-cycle");
    assert_eq!(cycle.len(), 1, "{:#?}", wa.findings);
    assert_eq!(cycle[0].file, "crates/core/src/rt/hub.rs");
    assert!(cycle[0].excerpt.contains("potential blocking cycle"), "{cycle:#?}");
    assert!(cycle[0].excerpt.contains("hub.state"), "{cycle:#?}");
    assert!(cycle[0].excerpt.contains("jobs"), "{cycle:#?}");
    // The witness chain names both halves of the wait.
    let w = cycle[0].witness.as_deref().unwrap_or("");
    assert!(w.contains("blocks on"), "{w}");
    assert!(w.contains("acquires"), "{w}");
    assert_eq!(cycle[0].flow.len(), 2, "{cycle:#?}");

    // `inbox` is popped but never closed; `jobs` has a close and must
    // not be reported.
    let live = by_rule(&wa.findings, "queue-pop-no-close");
    assert_eq!(live.len(), 1, "{:#?}", wa.findings);
    assert_eq!(live[0].file, "crates/core/src/rt/pump.rs");
    assert!(live[0].excerpt.contains("`inbox`"), "{live:#?}");

    assert_eq!(wa.findings.len(), 2, "{:#?}", wa.findings);
}

#[test]
fn known_good_waitgraph_twin_has_zero_findings() {
    let wa =
        analyze_workspace(&fixture_root("waitgraph_known_good"), false).expect("walk fixture");
    assert!(wa.findings.is_empty(), "{:#?}", wa.findings);
}

#[test]
fn sarif_code_flows_surface_the_typestate_path() {
    let wa = analyze_workspace(&fixture_root("typestate_seeded"), false).expect("walk fixture");
    let doc = sarif::render(&wa.findings);
    assert!(doc.contains("\"codeFlows\""), "typestate findings must emit codeFlows");
    // The flow runs enter-state -> exit, in that order.
    let start = doc.find("machine enters non-accepting state").expect("enter step");
    let end = doc.rfind("path exits with the machine still in").expect("exit step");
    assert!(start < end);
}
