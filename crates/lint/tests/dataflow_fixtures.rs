//! End-to-end coverage for the dataflow layer (taint, gauge balance,
//! suppression liveness): every seeded violation in `dataflow_seeded`
//! must be caught with the expected flow, and the `dataflow_known_good`
//! twin — same shapes, done right — must produce zero findings (no
//! false positives).

use std::path::PathBuf;

use wsd_lint::analyze_workspace;
use wsd_lint::rules::Finding;
use wsd_lint::sarif;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name)
}

fn by_rule<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn seeded_dataflow_violations_are_all_caught_exactly() {
    let wa = analyze_workspace(&fixture_root("dataflow_seeded"), false).expect("walk fixture");

    let taint = by_rule(&wa.findings, "unvalidated-envelope-to-sink");
    assert_eq!(taint.len(), 2, "{:#?}", wa.findings);
    // Direct flow: frame tainted by try_read reaches the append.
    assert!(
        taint.iter().any(|f| {
            f.file == "crates/store/src/ingest.rs"
                && f.excerpt.contains("`frame`")
                && f.excerpt.contains("try_read")
        }),
        "{taint:#?}"
    );
    // Interprocedural flow: `store` is sink-like through its summary.
    assert!(
        taint.iter().any(|f| f.excerpt.contains("`raw`") && f.excerpt.contains("`store`")),
        "{taint:#?}"
    );
    // Every taint finding carries a source -> sink code flow.
    for f in &taint {
        assert!(f.flow.len() >= 2, "{f:#?}");
        assert!(f.flow.first().unwrap().message.contains("tainted"), "{f:#?}");
    }

    let gauge = by_rule(&wa.findings, "gauge-balance");
    assert_eq!(gauge.len(), 2, "{:#?}", wa.findings);
    for f in &gauge {
        assert_eq!(f.file, "crates/concurrent/src/worker.rs");
        assert!(f.excerpt.contains("`active`"), "{f:#?}");
        assert!(f.flow.len() == 2, "{f:#?}");
    }
    // One leak on the early return, one on the fall-through end.
    assert!(gauge.iter().any(|f| f.excerpt.contains("`return`")), "{gauge:#?}");
    assert!(gauge.iter().any(|f| f.excerpt.contains("fall-through end")), "{gauge:#?}");

    let stale = by_rule(&wa.findings, "unused-suppression");
    assert_eq!(stale.len(), 1, "{:#?}", wa.findings);
    assert_eq!(stale[0].file, "crates/store/src/stale.rs");
    assert!(stale[0].excerpt.contains("allow(raw-clock)"), "{stale:#?}");

    // Nothing else fires on the seeded tree.
    assert_eq!(wa.findings.len(), 5, "{:#?}", wa.findings);
}

#[test]
fn known_good_dataflow_twin_has_zero_findings() {
    let wa =
        analyze_workspace(&fixture_root("dataflow_known_good"), false).expect("walk fixture");
    assert!(wa.findings.is_empty(), "{:#?}", wa.findings);
}

#[test]
fn sarif_code_flows_surface_the_taint_path() {
    let wa = analyze_workspace(&fixture_root("dataflow_seeded"), false).expect("walk fixture");
    let doc = sarif::render(&wa.findings);
    assert!(doc.contains("\"codeFlows\""), "dataflow findings must emit codeFlows");
    assert!(doc.contains("\"threadFlows\""));
    // The taint flow names both endpoints of the path.
    let start = doc.find("tainted by `try_read`").expect("source step in codeFlow");
    let end = doc.rfind("unsanitized").expect("sink step in codeFlow");
    assert!(start < end);
}
