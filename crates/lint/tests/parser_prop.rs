//! Property tests: item spans recovered by the parser must round-trip
//! through the lexer — every `fn` body span must open on `{` and close
//! on `}` in the blanked code, line numbers must point at the real
//! signature, and strings/comments generated around items must never
//! shift or fake an item.

use proptest::prelude::*;
use wsd_lint::lexer::strip;
use wsd_lint::parser::parse;

/// A generated item: an optional doc/attr prelude, a fn with some
/// filler statements, possibly wrapped in a mod or impl.
fn item() -> impl Strategy<Value = String> {
    let name = "[a-z][a-z0-9_]{0,8}";
    let filler = prop_oneof![
        Just("let a = 1;".to_string()),
        Just("// fn fake_in_comment() {".to_string()),
        Just("let s = \"fn fake_in_string() {\";".to_string()),
        Just("call(|| { nested(); });".to_string()),
        Just("if x { y(); } else { z(); }".to_string()),
    ];
    (name, proptest::collection::vec(filler, 0..4), any::<u8>()).prop_map(
        |(name, fillers, shape)| {
            let body = fillers.join("\n    ");
            let f = format!("fn {name}() {{\n    {body}\n}}");
            match shape % 4 {
                0 => f,
                1 => format!("mod m {{\n{f}\n}}"),
                2 => format!("struct S;\nimpl S {{\n{f}\n}}"),
                _ => format!("#[cfg(test)]\nmod tests {{\n{f}\n}}"),
            }
        },
    )
}

proptest! {
    /// Every parsed fn body span lands on a brace pair in the blanked
    /// code, and the blanked code has the same length and line
    /// structure as the original — so spans from the parser can index
    /// the original source.
    #[test]
    fn fn_body_spans_round_trip_through_the_lexer(items in proptest::collection::vec(item(), 1..4)) {
        let src = items.join("\n\n");
        let parsed = parse(&src);
        let stripped = strip(&src);
        prop_assert_eq!(parsed.stripped.code.as_str(), stripped.code.as_str());
        prop_assert_eq!(
            stripped.code.chars().filter(|c| *c == '\n').count(),
            src.chars().filter(|c| *c == '\n').count()
        );
        for f in &parsed.fns {
            let (s, e) = f.body.expect("generated fns all have bodies");
            prop_assert!(s < e && e <= stripped.code.len());
            prop_assert_eq!(&stripped.code[s..s + 1], "{", "span must open on a brace");
            prop_assert_eq!(&stripped.code[e - 1..e], "}", "span must close on a brace");
            // Brace balance inside the span is zero.
            let open = stripped.code[s..e].chars().filter(|c| *c == '{').count();
            let close = stripped.code[s..e].chars().filter(|c| *c == '}').count();
            prop_assert_eq!(open, close, "body span is brace-balanced");
            // The signature line of the *original* source declares the fn.
            let sig = src.lines().nth(f.sig_line - 1).unwrap_or("");
            prop_assert!(
                sig.contains("fn "),
                "sig_line {} must hold the declaration, got {:?}",
                f.sig_line,
                sig
            );
            prop_assert!(f.end_line >= f.sig_line);
        }
    }

    /// Items seen by the parser are exactly the generated ones — fakes
    /// inside strings and comments never materialise.
    #[test]
    fn strings_and_comments_never_fake_items(items in proptest::collection::vec(item(), 1..4)) {
        let src = items.join("\n\n");
        let parsed = parse(&src);
        for f in &parsed.fns {
            prop_assert!(
                !f.name.starts_with("fake_in_"),
                "lexer leak: {} parsed as an item",
                f.name
            );
        }
        // Each generated top fn appears exactly once.
        prop_assert_eq!(
            parsed.fns.iter().filter(|f| !f.name.starts_with("fake_in_")).count(),
            items.len()
        );
    }

    /// `#[cfg(test)] mod` contents are marked test down to every line of
    /// every nested item; fns outside stay unmarked.
    #[test]
    fn cfg_test_marking_is_span_exact(inner in item()) {
        let src = format!(
            "fn outer() {{\n    let a = 1;\n}}\n\n#[cfg(test)]\nmod tests {{\n{inner}\n}}\n"
        );
        let parsed = parse(&src);
        let outer = parsed.fns.iter().find(|f| f.name == "outer").unwrap();
        prop_assert!(!outer.is_test);
        prop_assert!(!parsed.is_test_line(outer.sig_line));
        for f in parsed.fns.iter().filter(|f| f.name != "outer") {
            prop_assert!(f.is_test, "{} must be test collateral", f.name);
            for line in f.sig_line..=f.end_line {
                prop_assert!(parsed.is_test_line(line), "line {line} of {}", f.name);
            }
        }
    }
}
