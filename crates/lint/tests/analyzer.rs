//! End-to-end coverage for the analyzer: seeded-violation fixtures must
//! all be caught, known-good fixtures must produce zero findings, and the
//! live workspace must be clean against the checked-in (empty) baseline.

use std::collections::BTreeMap;

use wsd_lint::rules::Finding;
use wsd_lint::{baseline, lint_source, lint_workspace, suppressions_in};

const SEEDED: &str = include_str!("fixtures/seeded_violations.rs");
const KNOWN_GOOD: &str = include_str!("fixtures/known_good.rs");

/// The fixture is linted as if it lived on a dispatcher serve path, so
/// every rule is in scope.
const DISPATCHER_PATH: &str = "crates/core/src/fixture.rs";

fn count_rule(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn every_seeded_violation_is_caught() {
    let findings = lint_source(DISPATCHER_PATH, SEEDED);
    assert_eq!(count_rule(&findings, "raw-thread-spawn"), 2, "{findings:#?}");
    // Three raw-clock hits: two seeded directly, one under a reasonless
    // (therefore inoperative) suppression.
    assert_eq!(count_rule(&findings, "raw-clock"), 3, "{findings:#?}");
    assert_eq!(count_rule(&findings, "std-sync-primitive"), 1, "{findings:#?}");
    assert_eq!(count_rule(&findings, "unwrap-in-dispatcher"), 2, "{findings:#?}");
    assert_eq!(
        count_rule(&findings, "unbounded-queue-at-serve-site"),
        2,
        "{findings:#?}"
    );
    assert_eq!(count_rule(&findings, "raw-file-io"), 2, "{findings:#?}");
    // One reasonless suppression + one unknown-rule suppression.
    assert_eq!(count_rule(&findings, "bad-suppression"), 2, "{findings:#?}");
    assert_eq!(findings.len(), 14);
}

#[test]
fn seeded_findings_carry_line_and_excerpt() {
    let findings = lint_source(DISPATCHER_PATH, SEEDED);
    let spawn = findings
        .iter()
        .find(|f| f.rule == "raw-thread-spawn")
        .expect("spawn finding");
    assert!(spawn.line > 0);
    assert!(
        SEEDED.lines().nth(spawn.line - 1).unwrap().contains("thread::spawn"),
        "excerpt line must match the source line"
    );
    assert!(spawn.excerpt.contains("thread::spawn"));
}

#[test]
fn known_good_fixture_has_zero_findings() {
    let findings = lint_source(DISPATCHER_PATH, KNOWN_GOOD);
    assert!(findings.is_empty(), "false positives: {findings:#?}");
}

#[test]
fn known_good_fixture_suppressions_all_carry_reasons() {
    let sups = suppressions_in(KNOWN_GOOD);
    assert_eq!(sups.len(), 3);
    for (line, rule, reason) in sups {
        assert!(!reason.is_empty(), "suppression of {rule} at {line} lacks a reason");
    }
}

#[test]
fn fixtures_under_their_real_path_are_exempt() {
    // The workspace walk sees the fixtures under tests/fixtures/; the
    // test-collateral exemption must keep their seeded violations out of
    // the real lint run.
    let findings = lint_source("crates/lint/tests/fixtures/seeded_violations.rs", SEEDED);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn workspace_is_clean_against_checked_in_baseline() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    let (findings, _sups) = lint_workspace(root).expect("walk workspace");
    let base_text = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("lint-baseline.json is checked in");
    let base = baseline::parse(&base_text).expect("baseline parses");
    // Acceptance: the baseline holds no raw-clock / raw-thread-spawn debt
    // for crates/core or crates/concurrent.
    for (key, _) in base.iter() {
        let tolerated_debt = (key.starts_with("crates/core/")
            || key.starts_with("crates/concurrent/"))
            && (key.ends_with("|raw-clock") || key.ends_with("|raw-thread-spawn"));
        assert!(!tolerated_debt, "forbidden baseline debt: {key}");
    }
    let report = baseline::compare(&findings, &base);
    assert!(
        report.new_findings.is_empty(),
        "workspace has findings above baseline: {:#?}",
        report.new_findings
    );
}

#[test]
fn every_workspace_suppression_carries_a_reason() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    let mut reasons: BTreeMap<String, usize> = BTreeMap::new();
    for (rel, abs) in wsd_lint::walk::rust_files(root).expect("walk") {
        if rel.split('/').any(|s| s == "tests" || s == "fixtures" || s == "benches") {
            continue;
        }
        let Ok(src) = std::fs::read_to_string(&abs) else {
            continue;
        };
        for (line, rule, reason) in suppressions_in(&src) {
            assert!(
                reason.len() >= 10,
                "{rel}:{line}: suppression of {rule} has a trivial reason: {reason:?}"
            );
            *reasons.entry(rule).or_default() += 1;
        }
    }
    // The satellite cleanups left a known set of reasoned suppressions;
    // at minimum the condvar-deadline and janitor-thread ones exist.
    assert!(reasons.get("raw-clock").copied().unwrap_or(0) >= 3, "{reasons:?}");
    assert!(reasons.get("raw-thread-spawn").copied().unwrap_or(0) >= 2, "{reasons:?}");
}
