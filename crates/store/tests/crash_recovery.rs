//! Crash-recovery property sweep: 250 seeded kill points.
//!
//! Each seed runs a random mailbox workload (create / deposit / fetch /
//! destroy / expire, with seed-chosen segment sizes, memory budgets and
//! quotas so rotation, GC and spill all land in the mix) against a
//! [`MemStorage`] "disk", then crashes it:
//!
//! * every *completed* operation is durable (the store commits before
//!   returning), so the synced prefix survives;
//! * with some seeds, a deposit is caught *mid-write*: a partial frame
//!   of its record is appended unsynced, and the crash keeps a
//!   seed-chosen prefix of those bytes — the torn tail recovery must
//!   CRC-detect and truncate.
//!
//! After reopening, the invariants of the durability contract are
//! asserted against an oracle:
//!
//! 1. zero acknowledged deposits lost — every body whose `deposit`
//!    returned `Ok` and was not yet fetched or destroyed comes back,
//!    exactly once and in deposit order;
//! 2. zero double deliveries — nothing a pre-crash `fetch` returned is
//!    ever handed out again (also checked across a *second* restart);
//! 3. nothing fabricated — every recovered body is one the workload
//!    actually deposited (completed or mid-write), never a CRC-damaged
//!    hybrid;
//! 4. destroyed mailboxes stay destroyed.

use std::collections::{HashMap, HashSet, VecDeque};

use wsd_store::record::frame;
use wsd_store::{DurableMsgBox, MemStorage, Op, StoreConfig, StoreError, SyncMode, WalConfig};
use wsd_telemetry::Scope;

/// Deterministic xorshift64* so each seed replays bit-identically.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

struct Oracle {
    /// Live boxes: id -> (key, pending acked bodies in deposit order).
    boxes: HashMap<String, (String, VecDeque<String>)>,
    /// Bodies some completed fetch already returned.
    delivered: HashSet<String>,
    /// Bodies that may legitimately appear 0 or 1 times after recovery:
    /// finite-TTL deposits and the mid-write partial record.
    maybe: HashSet<String>,
    /// Bodies that must never reappear (their box was destroyed).
    destroyed_bodies: HashSet<String>,
    destroyed_boxes: Vec<(String, String)>,
}

fn config_for(rng: &mut Rng) -> StoreConfig {
    StoreConfig {
        wal: WalConfig {
            // Small segments force rotation/checkpoint/GC under load.
            segment_bytes: [256, 1024, 1 << 20][rng.below(3) as usize],
            sync: SyncMode::Always,
        },
        // 0 = everything spills; 64 = mixed; huge = everything cached.
        memory_budget_bytes: [0, 64, u64::MAX][rng.below(3) as usize],
        quota_bytes_per_tenant: u64::MAX,
    }
}

fn open(mem: &MemStorage, cfg: &StoreConfig, now: u64) -> DurableMsgBox {
    DurableMsgBox::open(cfg.clone(), Box::new(mem.clone()), &Scope::noop(), now)
        .expect("recovery must repair, not fail")
        .0
}

fn run_seed(seed: u64) {
    let mut rng = Rng::new(seed);
    let cfg = config_for(&mut rng);
    let mem = MemStorage::new();
    let store = open(&mem, &cfg, 0);

    let mut oracle = Oracle {
        boxes: HashMap::new(),
        delivered: HashSet::new(),
        maybe: HashSet::new(),
        destroyed_bodies: HashSet::new(),
        destroyed_boxes: Vec::new(),
    };
    let mut msg_no = 0u64;
    let mut box_no = 0u64;
    let mut now = 0u64;
    let n_ops = 5 + rng.below(36);
    for _ in 0..n_ops {
        now += 1;
        let ids: Vec<String> = oracle.boxes.keys().cloned().collect();
        match rng.below(10) {
            // create (always, if none exist yet)
            0..=1 if ids.len() < 4 => {
                let id = format!("mbox-{seed}-{box_no}");
                let key = format!("key-{seed}-{box_no}");
                box_no += 1;
                store.create(&id, &key, "t", now).unwrap();
                oracle.boxes.insert(id, (key, VecDeque::new()));
            }
            // deposit
            2..=6 if !ids.is_empty() => {
                let id = &ids[rng.below(ids.len() as u64) as usize];
                let body = format!("msg-{seed}-{msg_no}");
                msg_no += 1;
                let finite_ttl = rng.below(8) == 0;
                let expires = if finite_ttl { now + 3 } else { u64::MAX };
                store.deposit(id, body.clone(), now, expires).unwrap();
                if finite_ttl {
                    // May expire before the post-crash sweep reads it.
                    oracle.maybe.insert(body);
                } else {
                    oracle.boxes.get_mut(id).unwrap().1.push_back(body);
                }
            }
            // fetch a few
            7..=8 if !ids.is_empty() => {
                let id = &ids[rng.below(ids.len() as u64) as usize];
                let (key, pending) = oracle.boxes.get_mut(id).unwrap();
                let max = 1 + rng.below(4) as usize;
                let got = store.fetch(id, key, max, now).unwrap();
                for m in got {
                    if let Some(front) = pending.front() {
                        if *front == m.body {
                            pending.pop_front();
                        }
                    }
                    assert!(
                        oracle.delivered.insert(m.body.clone()),
                        "seed {seed}: {} delivered twice pre-crash",
                        m.body
                    );
                    oracle.maybe.remove(&m.body);
                }
            }
            // destroy, rarely
            9 if ids.len() > 1 => {
                let id = ids[rng.below(ids.len() as u64) as usize].clone();
                let (key, pending) = oracle.boxes.remove(&id).unwrap();
                store.destroy(&id, &key).unwrap();
                oracle.destroyed_bodies.extend(pending);
                oracle.destroyed_boxes.push((id, key));
            }
            _ => {}
        }
    }

    // The kill point: maybe a deposit is caught mid-write (its frame
    // partially appended, unsynced), then the plug is pulled and a
    // seeded slice of unsynced bytes survives.
    let cur_seg = store.wal().current_segment();
    drop(store);
    if rng.below(2) == 0 && !oracle.boxes.is_empty() {
        let ids: Vec<&String> = oracle.boxes.keys().collect();
        let id = ids[rng.below(ids.len() as u64) as usize];
        let body = format!("partial-{seed}");
        let framed = frame(
            &Op::Deposit {
                box_id: id.clone(),
                received_at: now,
                expires_at: u64::MAX,
                body: body.clone(),
            }
            .encode_payload(),
        );
        let cut = 1 + rng.below(framed.len() as u64) as usize;
        let mut disk = mem.clone();
        wsd_store::Storage::append(&mut disk, cur_seg, &framed[..cut]).unwrap();
        if cut == framed.len() {
            oracle.maybe.insert(body);
        }
        // If cut < len the tail is torn: recovery must truncate it and
        // the body must NOT appear (it is not in `maybe`).
    }
    let crash_at = rng.next();
    mem.crash(|tail| (crash_at % (tail as u64 + 1)) as usize);

    // Restart and sweep everything.
    now += 10;
    let store = open(&mem, &cfg, now);
    let mut seen_after: HashSet<String> = HashSet::new();
    for (id, (key, pending)) in &oracle.boxes {
        let got = store.fetch(id, key, usize::MAX, now).unwrap();
        let bodies: Vec<String> = got.into_iter().map(|m| m.body).collect();
        for b in &bodies {
            assert!(
                !oracle.delivered.contains(b),
                "seed {seed}: double delivery of {b}"
            );
            assert!(
                !oracle.destroyed_bodies.contains(b),
                "seed {seed}: {b} came back from a destroyed box"
            );
            assert!(
                seen_after.insert(b.clone()),
                "seed {seed}: {b} delivered twice post-recovery"
            );
            let legit = b.starts_with(&format!("msg-{seed}-")) || oracle.maybe.contains(b);
            assert!(legit, "seed {seed}: fabricated body {b}");
        }
        // Acked-but-unfetched bodies survive, in deposit order.
        let must: Vec<&String> = pending.iter().collect();
        let recovered: Vec<&String> = bodies
            .iter()
            .filter(|b| pending.contains(*b))
            .collect();
        assert_eq!(
            recovered, must,
            "seed {seed}: acked messages of {id} lost or reordered"
        );
    }
    for (id, _) in &oracle.destroyed_boxes {
        assert!(!store.exists(id), "seed {seed}: destroyed box {id} revived");
    }

    // Second restart: the post-crash sweep's acks are durable too, so
    // every mailbox must now be empty — nothing is delivered twice.
    drop(store);
    let store = open(&mem, &cfg, now);
    for (id, (key, _)) in &oracle.boxes {
        let got = store.fetch(id, key, usize::MAX, now).unwrap();
        assert!(
            got.is_empty(),
            "seed {seed}: {id} re-delivered after second restart"
        );
    }
}

#[test]
fn crash_recovery_property_over_250_seeds() {
    for seed in 0..250 {
        run_seed(seed);
    }
}

/// The mid-fetch window: an ack can be durable while the response is
/// lost. That batch is gone (at-most-once pickup, by design), but the
/// store itself must recover cleanly and never double-deliver.
#[test]
fn ack_durable_but_response_lost_is_at_most_once() {
    let mem = MemStorage::new();
    let cfg = StoreConfig {
        wal: WalConfig {
            sync: SyncMode::Always,
            ..WalConfig::default()
        },
        ..StoreConfig::default()
    };
    let store = open(&mem, &cfg, 0);
    store.create("mbox-1", "key-1", "t", 0).unwrap();
    store.deposit("mbox-1", "one".into(), 1, u64::MAX).unwrap();
    store.deposit("mbox-1", "two".into(), 2, u64::MAX).unwrap();
    // The consumer fetched "one" but the process died before the
    // response left the machine: the durable ack wins.
    store.fetch("mbox-1", "key-1", 1, 3).unwrap();
    drop(store);
    let store = open(&mem, &cfg, 4);
    let got = store.fetch("mbox-1", "key-1", usize::MAX, 4).unwrap();
    let bodies: Vec<&str> = got.iter().map(|m| m.body.as_str()).collect();
    assert_eq!(bodies, vec!["two"]);
}

#[test]
fn quota_survives_restart() {
    let mem = MemStorage::new();
    let cfg = StoreConfig {
        wal: WalConfig {
            sync: SyncMode::Always,
            ..WalConfig::default()
        },
        quota_bytes_per_tenant: 6,
        ..StoreConfig::default()
    };
    let store = open(&mem, &cfg, 0);
    store.create("mbox-1", "key-1", "acme", 0).unwrap();
    store.deposit("mbox-1", "12345".into(), 1, u64::MAX).unwrap();
    drop(store);
    // Replay rebuilds the tenant accounting: still only 1 spare byte.
    let store = open(&mem, &cfg, 2);
    assert_eq!(store.tenant_bytes("acme"), 5);
    assert_eq!(
        store.deposit("mbox-1", "67".into(), 3, u64::MAX),
        Err(StoreError::QuotaExceeded)
    );
    store.deposit("mbox-1", "6".into(), 3, u64::MAX).unwrap();
}
