//! Real-process crash smoke: SIGKILL a writer mid-deposit, recover,
//! assert the durability contract on a real filesystem WAL.
//!
//! The seeded crash-recovery property test covers hundreds of kill
//! points deterministically on [`MemStorage`]; this binary covers the
//! one thing it can't — an actual `kill -9` against actual files and
//! fsyncs. `scripts/verify.sh durability-smoke` runs it.
//!
//! Two modes:
//!
//! * `durability_smoke writer <dir>` — opens a [`DurableMsgBox`] over
//!   `<dir>`, creates a mailbox (printing `box <id> <key>`), then
//!   deposits forever, printing `acked <body>` only *after* each
//!   deposit returns (i.e. is durable). Runs until killed.
//! * `durability_smoke <dir>` — spawns itself as the writer, waits for
//!   a few acks, SIGKILLs it, reopens the store in-process and asserts
//!   every acked message is fetched exactly once. Repeats for several
//!   rounds, reusing the same directory so recovery also chews on the
//!   previous rounds' acks and torn tails.

use std::io::BufRead;
use std::process::{Command, Stdio};

use wsd_store::{DurableMsgBox, FsStorage, StoreConfig, SyncMode, WalConfig};
use wsd_telemetry::Scope;

fn open_store(dir: &str, now: u64) -> DurableMsgBox {
    let config = StoreConfig {
        wal: WalConfig {
            segment_bytes: 16 * 1024, // rotate often: exercise checkpoints
            sync: SyncMode::GroupCommit {
                flush_batch: 4,
                flush_interval: std::time::Duration::from_millis(1),
            },
        },
        memory_budget_bytes: 1024, // force spill too
        quota_bytes_per_tenant: u64::MAX,
    };
    let storage = FsStorage::open(dir).expect("open wal dir");
    let (store, report) =
        DurableMsgBox::open(config, Box::new(storage), &Scope::noop(), now).expect("recovery");
    if report.truncated_bytes > 0 {
        eprintln!(
            "recovered {} records, truncated {} torn bytes",
            report.records, report.truncated_bytes
        );
    }
    store
}

fn writer(dir: &str) -> ! {
    let store = open_store(dir, 0);
    let (id, key) = ("mbox-smoke".to_string(), "key-smoke".to_string());
    if !store.exists(&id) {
        store.create(&id, &key, "smoke", 0).expect("create box");
    }
    println!("box {id} {key}");
    // Start numbering after anything a previous round left behind so
    // bodies stay unique across rounds.
    let start = store.len(&id, 0).expect("len") as u64 * 1_000;
    for i in start.. {
        let body = format!("msg-{i:08}");
        match store.deposit(&id, body.clone(), i, u64::MAX) {
            Ok(()) => println!("acked {body}"),
            Err(e) => panic!("deposit failed: {e}"),
        }
    }
    unreachable!("deposit loop never exits")
}

fn run_round(exe: &str, dir: &str, round: u32) {
    let mut child = Command::new(exe)
        .args(["writer", dir])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn writer");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let header = lines
        .next()
        .expect("writer printed a box line")
        .expect("readable stdout");
    let mut parts = header.split_whitespace();
    assert_eq!(parts.next(), Some("box"));
    let id = parts.next().expect("box id").to_string();
    let key = parts.next().expect("box key").to_string();

    // Let some deposits become durable, then pull the plug. Varying the
    // count moves the kill point relative to group-commit boundaries.
    let want = 10 + round * 7;
    let mut acked = Vec::new();
    for line in lines.by_ref() {
        let line = line.expect("readable stdout");
        if let Some(body) = line.strip_prefix("acked ") {
            acked.push(body.to_string());
            if acked.len() as u32 >= want {
                break;
            }
        }
    }
    child.kill().expect("SIGKILL writer"); // SIGKILL on unix
    child.wait().expect("reap writer");

    let store = open_store(dir, 0);
    let got = store
        .fetch(&id, &key, usize::MAX, 0)
        .expect("fetch after recovery");
    let bodies: Vec<&str> = got.iter().map(|m| m.body.as_str()).collect();
    for body in &acked {
        let copies = bodies.iter().filter(|b| *b == body).count();
        assert_eq!(copies, 1, "round {round}: acked {body} found {copies} times");
    }
    let unique: std::collections::HashSet<&&str> = bodies.iter().collect();
    assert_eq!(unique.len(), bodies.len(), "round {round}: duplicate delivery");
    println!(
        "round {round}: {} acked, {} recovered (unacked tail may add more) — ok",
        acked.len(),
        bodies.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("writer") => writer(args.get(2).expect("writer needs a dir")),
        Some(dir) => {
            for round in 0..3 {
                run_round(&args[0], dir, round);
            }
            println!("durability smoke passed");
        }
        None => {
            eprintln!("usage: durability_smoke <wal-dir> | durability_smoke writer <wal-dir>");
            std::process::exit(2);
        }
    }
}
