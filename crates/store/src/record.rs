//! WAL record framing and the mailbox operation payloads.
//!
//! On-"disk" framing (all integers little-endian):
//!
//! ```text
//! record  := [len: u32][crc: u32][payload: len bytes]
//! payload := [op: u8][op-specific fields]
//! ```
//!
//! `crc` is the CRC-32 of the payload bytes. A record whose header is
//! incomplete, whose `len` overruns the segment, or whose CRC mismatches
//! is — at the log tail — a torn write from a crash mid-append, and
//! recovery truncates the segment there. Strings are `[u32 len][bytes]`;
//! the deposit body is always the *last* field so spill reads can fetch
//! it straight from the segment by offset without re-decoding.

use crate::crc::crc32;

/// Framing header size: `len` + `crc`.
pub const HEADER_BYTES: u64 = 8;

/// One decoded mailbox operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// A mailbox came into existence.
    Create {
        /// Mailbox id.
        id: String,
        /// Fetch/destroy access key.
        key: String,
        /// Quota accounting bucket.
        tenant: String,
        /// Creation time (µs, caller clock).
        created_at: u64,
    },
    /// A message was appended to a mailbox. The body is the final field
    /// of the payload; [`Record::body_offset`] locates it for spill
    /// reads.
    Deposit {
        /// Destination mailbox id.
        box_id: String,
        /// Deposit time (µs).
        received_at: u64,
        /// Drop-dead time (µs).
        expires_at: u64,
        /// Serialized envelope.
        body: String,
    },
    /// Every message of `box_id` with LSN ≤ `upto_lsn` has been picked
    /// up (fetch is FIFO, so a prefix ack captures exactly the drained
    /// messages). Idempotent on replay.
    Ack {
        /// Acked mailbox id.
        box_id: String,
        /// Highest acked deposit LSN.
        upto_lsn: u64,
    },
    /// The mailbox and everything in it is gone.
    Destroy {
        /// Destroyed mailbox id.
        box_id: String,
    },
    /// Segment-head snapshot of all live mailbox *metadata* (never
    /// message bodies): `(id, key, tenant, created_at)` per box. Written
    /// as the first record of every segment after the first, so any
    /// older segment whose deposits are all acked can be deleted without
    /// losing box existence.
    Checkpoint {
        /// Live mailboxes at rotation time.
        boxes: Vec<(String, String, String, u64)>,
    },
}

const OP_CREATE: u8 = 1;
const OP_DEPOSIT: u8 = 2;
const OP_ACK: u8 = 3;
const OP_DESTROY: u8 = 4;
const OP_CHECKPOINT: u8 = 5;

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Reader<'a> {
    fn u64(&mut self) -> Option<u64> {
        let end = self.i.checked_add(8)?;
        let v = u64::from_le_bytes(self.b.get(self.i..end)?.try_into().ok()?);
        self.i = end;
        Some(v)
    }

    fn str(&mut self) -> Option<String> {
        let end = self.i.checked_add(4)?;
        let n = u32::from_le_bytes(self.b.get(self.i..end)?.try_into().ok()?) as usize;
        self.i = end;
        let end = self.i.checked_add(n)?;
        let s = std::str::from_utf8(self.b.get(self.i..end)?).ok()?.to_string();
        self.i = end;
        Some(s)
    }
}

impl Op {
    /// Serializes the payload (everything after the framing header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Op::Create { id, key, tenant, created_at } => {
                out.push(OP_CREATE);
                put_str(&mut out, id);
                put_str(&mut out, key);
                put_str(&mut out, tenant);
                put_u64(&mut out, *created_at);
            }
            Op::Deposit { box_id, received_at, expires_at, body } => {
                out.push(OP_DEPOSIT);
                put_str(&mut out, box_id);
                put_u64(&mut out, *received_at);
                put_u64(&mut out, *expires_at);
                put_str(&mut out, body);
            }
            Op::Ack { box_id, upto_lsn } => {
                out.push(OP_ACK);
                put_str(&mut out, box_id);
                put_u64(&mut out, *upto_lsn);
            }
            Op::Destroy { box_id } => {
                out.push(OP_DESTROY);
                put_str(&mut out, box_id);
            }
            Op::Checkpoint { boxes } => {
                out.push(OP_CHECKPOINT);
                put_u64(&mut out, boxes.len() as u64);
                for (id, key, tenant, created_at) in boxes {
                    put_str(&mut out, id);
                    put_str(&mut out, key);
                    put_str(&mut out, tenant);
                    put_u64(&mut out, *created_at);
                }
            }
        }
        out
    }

    /// Decodes a payload. `None` on any malformation (recovery treats
    /// that as corruption).
    pub fn decode_payload(payload: &[u8]) -> Option<Op> {
        let (&op, rest) = payload.split_first()?;
        let mut r = Reader { b: rest, i: 0 };
        let decoded = match op {
            OP_CREATE => Op::Create {
                id: r.str()?,
                key: r.str()?,
                tenant: r.str()?,
                created_at: r.u64()?,
            },
            OP_DEPOSIT => Op::Deposit {
                box_id: r.str()?,
                received_at: r.u64()?,
                expires_at: r.u64()?,
                body: r.str()?,
            },
            OP_ACK => Op::Ack {
                box_id: r.str()?,
                upto_lsn: r.u64()?,
            },
            OP_DESTROY => Op::Destroy { box_id: r.str()? },
            OP_CHECKPOINT => {
                let n = r.u64()? as usize;
                // Cap pathological counts before allocating.
                if n > rest.len() {
                    return None;
                }
                let mut boxes = Vec::with_capacity(n);
                for _ in 0..n {
                    boxes.push((r.str()?, r.str()?, r.str()?, r.u64()?));
                }
                Op::Checkpoint { boxes }
            }
            _ => return None,
        };
        if r.i != rest.len() {
            return None; // trailing garbage
        }
        Some(decoded)
    }

    /// Offset of a deposit body *within the payload* — the body is the
    /// last field, prefixed by its u32 length.
    pub fn deposit_body_offset(box_id: &str) -> u64 {
        // op byte + (len + box_id) + received_at + expires_at + body len prefix
        1 + 4 + box_id.len() as u64 + 8 + 8 + 4
    }
}

/// Frames a payload into a full record (header + payload).
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + HEADER_BYTES as usize);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Outcome of reading one record at an offset.
pub enum ReadRecord {
    /// A complete, checksum-valid record: the payload and the offset
    /// just past it.
    Ok {
        /// Decoded-payload bytes.
        payload: Vec<u8>,
        /// Offset of the next record.
        next: u64,
    },
    /// Clean end of segment (offset == segment length).
    End,
    /// Incomplete header/payload or CRC mismatch starting at this
    /// offset: a torn tail.
    Torn,
}

/// Reads the record starting at `off` in `seg`.
pub fn read_record(seg: &[u8], off: u64) -> ReadRecord {
    let off = off as usize;
    if off == seg.len() {
        return ReadRecord::End;
    }
    if off + HEADER_BYTES as usize > seg.len() {
        return ReadRecord::Torn;
    }
    let len = u32::from_le_bytes(seg[off..off + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(seg[off + 4..off + 8].try_into().unwrap());
    let start = off + HEADER_BYTES as usize;
    let Some(end) = start.checked_add(len) else {
        return ReadRecord::Torn;
    };
    if end > seg.len() {
        return ReadRecord::Torn;
    }
    let payload = &seg[start..end];
    if crc32(payload) != crc {
        return ReadRecord::Torn;
    }
    ReadRecord::Ok {
        payload: payload.to_vec(),
        next: end as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(op: Op) {
        let payload = op.encode_payload();
        assert_eq!(Op::decode_payload(&payload), Some(op));
    }

    #[test]
    fn all_ops_round_trip() {
        round_trip(Op::Create {
            id: "mbox-1".into(),
            key: "key-1".into(),
            tenant: "acme".into(),
            created_at: 42,
        });
        round_trip(Op::Deposit {
            box_id: "mbox-1".into(),
            received_at: 10,
            expires_at: 99,
            body: "<env>payload</env>".into(),
        });
        round_trip(Op::Ack { box_id: "mbox-1".into(), upto_lsn: 7 });
        round_trip(Op::Destroy { box_id: "mbox-1".into() });
        round_trip(Op::Checkpoint {
            boxes: vec![
                ("a".into(), "ka".into(), "t1".into(), 1),
                ("b".into(), "kb".into(), "t2".into(), 2),
            ],
        });
    }

    #[test]
    fn deposit_body_offset_locates_the_body() {
        let op = Op::Deposit {
            box_id: "mbox-xyz".into(),
            received_at: 5,
            expires_at: 6,
            body: "THE-BODY".into(),
        };
        let payload = op.encode_payload();
        let off = Op::deposit_body_offset("mbox-xyz") as usize;
        assert_eq!(&payload[off..off + 8], b"THE-BODY");
        assert_eq!(payload.len(), off + 8);
    }

    #[test]
    fn framed_record_reads_back() {
        let payload = Op::Destroy { box_id: "m".into() }.encode_payload();
        let rec = frame(&payload);
        match read_record(&rec, 0) {
            ReadRecord::Ok { payload: p, next } => {
                assert_eq!(p, payload);
                assert_eq!(next, rec.len() as u64);
            }
            _ => panic!("expected Ok"),
        }
        match read_record(&rec, rec.len() as u64) {
            ReadRecord::End => {}
            _ => panic!("expected End"),
        }
    }

    #[test]
    fn truncated_and_corrupted_records_are_torn() {
        let payload = Op::Destroy { box_id: "mbox".into() }.encode_payload();
        let rec = frame(&payload);
        // Any strict prefix is torn.
        for cut in 1..rec.len() {
            match read_record(&rec[..cut], 0) {
                ReadRecord::Torn => {}
                _ => panic!("prefix of {cut} bytes must be torn"),
            }
        }
        // A flipped payload bit fails the CRC.
        let mut bad = rec.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        match read_record(&bad, 0) {
            ReadRecord::Torn => {}
            _ => panic!("corrupt record must be torn"),
        }
        // Malformed decode is rejected.
        assert_eq!(Op::decode_payload(&[99, 0, 0]), None);
        assert_eq!(Op::decode_payload(&[]), None);
    }
}
