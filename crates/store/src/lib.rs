//! # wsd-store
//!
//! WAL-backed durable storage for the WS-MsgBox mailboxes (ROADMAP
//! item 3). The paper's store-and-forward mailboxes are memory-only:
//! a dispatcher crash silently drops every queued message, and fig6's
//! client wall is wherever resident mailbox bytes exhaust RAM. This
//! crate removes both limits:
//!
//! * [`Wal`] — a segment-file write-ahead log: length-prefixed,
//!   CRC-32-checked records; leader-based **group commit** (one fsync
//!   covers every pending append); recovery replay with torn-tail
//!   truncation; checkpoint-at-rotation plus segment GC once a
//!   segment's deposits are all acked or expired.
//! * [`DurableMsgBox`] — WS-MsgBox semantics (create / deposit / fetch
//!   / destroy, access keys, TTL expiry) where every acknowledgement is
//!   backed by a durable record, message bodies **spill to disk** past
//!   a configurable memory budget, and per-tenant byte quotas bound the
//!   disk side.
//! * [`Storage`] — the segment-store abstraction: [`FsStorage`] (real
//!   files, real fsync) for the threaded runtime, [`MemStorage`] (a
//!   deterministic "disk" with an explicit seeded crash model) for the
//!   simulation backend and the crash-recovery property sweep.
//!
//! Durability contract, in two invariants the crash harnesses assert:
//!
//! 1. **No acknowledged deposit is lost** — if `deposit` returned `Ok`,
//!    the message is delivered by some fetch after any crash/restart
//!    (until it expires).
//! 2. **No message is delivered twice** — `fetch` makes its covering
//!    ack durable before handing messages back, so recovery never
//!    replays a message a consumer has already seen.

pub mod crc;
pub mod msgbox;
pub mod record;
pub mod storage;
pub mod wal;

pub use msgbox::{DurableMsgBox, FetchedMessage, StoreConfig, StoreError};
pub use record::Op;
pub use storage::{FsStorage, MemStorage, Storage};
pub use wal::{AppendInfo, RecoveryReport, SyncMode, Wal, WalConfig};
