//! Segment storage backends for the WAL.
//!
//! [`FsStorage`] is the real thing: one file per segment under a
//! directory, buffered appends made durable by `sync()` (fsync). The
//! durability contract every backend honors: bytes before the last
//! `sync()` survive a crash; bytes after it may survive wholly,
//! partially, or not at all — which is exactly what recovery's torn-tail
//! truncation handles.
//!
//! [`MemStorage`] models that contract deterministically, with an
//! explicit `crash(..)` that keeps the synced prefix plus a seeded slice
//! of the unsynced tail. It backs the in-sim durable mailbox (virtual
//! "disk", no real I/O — netsim charges the latency) and the seeded
//! crash-recovery sweep, where real SIGKILL per seed would be far too
//! slow; the real-process kill path is covered by the
//! `durability_smoke` binary on `FsStorage`.

use std::collections::BTreeMap;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;

/// A segment store: append-only numbered segments with explicit sync.
///
/// All offsets are byte offsets from the segment start. Implementations
/// are used under the WAL's lock, so they need no internal ordering
/// guarantees beyond `Send`.
pub trait Storage: Send {
    /// Base LSNs of existing segments, ascending.
    fn list_segments(&self) -> io::Result<Vec<u64>>;
    /// Creates an empty segment for `base`.
    fn create_segment(&mut self, base: u64) -> io::Result<()>;
    /// Appends bytes to a segment (buffered; durable only after
    /// [`Storage::sync`]).
    fn append(&mut self, base: u64, bytes: &[u8]) -> io::Result<()>;
    /// Makes every appended byte of `base` durable.
    fn sync(&mut self, base: u64) -> io::Result<()>;
    /// Reads a whole segment.
    fn read_segment(&mut self, base: u64) -> io::Result<Vec<u8>>;
    /// Reads `len` bytes at `off` (for spilled message bodies).
    fn read_at(&mut self, base: u64, off: u64, len: u64) -> io::Result<Vec<u8>>;
    /// Truncates a segment to `len` bytes (torn-tail repair).
    fn truncate(&mut self, base: u64, len: u64) -> io::Result<()>;
    /// Deletes a segment (checkpoint GC).
    fn delete_segment(&mut self, base: u64) -> io::Result<()>;
}

fn segment_file_name(base: u64) -> String {
    format!("{base:020}.wal")
}

/// Directory-of-files storage. Keeps the head segment's write handle
/// open; reads reopen on demand.
pub struct FsStorage {
    dir: PathBuf,
    /// Open append handle for the segment being written.
    head: Option<(u64, std::fs::File)>,
}

impl FsStorage {
    /// Opens (creating if needed) a WAL directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<FsStorage> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FsStorage { dir, head: None })
    }

    fn path(&self, base: u64) -> PathBuf {
        self.dir.join(segment_file_name(base))
    }

    fn head_file(&mut self, base: u64) -> io::Result<&mut std::fs::File> {
        let reopen = !matches!(self.head, Some((b, _)) if b == base);
        if reopen {
            let f = std::fs::OpenOptions::new()
                .append(true)
                .open(self.path(base))?;
            self.head = Some((base, f));
        }
        Ok(&mut self.head.as_mut().expect("head just set").1)
    }
}

impl Storage for FsStorage {
    fn list_segments(&self) -> io::Result<Vec<u64>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".wal") {
                if let Ok(base) = stem.parse::<u64>() {
                    out.push(base);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn create_segment(&mut self, base: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(self.path(base))?;
        self.head = Some((base, f));
        Ok(())
    }

    fn append(&mut self, base: u64, bytes: &[u8]) -> io::Result<()> {
        self.head_file(base)?.write_all(bytes)
    }

    fn sync(&mut self, base: u64) -> io::Result<()> {
        self.head_file(base)?.sync_data()
    }

    fn read_segment(&mut self, base: u64) -> io::Result<Vec<u8>> {
        std::fs::read(self.path(base))
    }

    fn read_at(&mut self, base: u64, off: u64, len: u64) -> io::Result<Vec<u8>> {
        let mut f = std::fs::File::open(self.path(base))?;
        f.seek(SeekFrom::Start(off))?;
        let mut buf = vec![0u8; len as usize];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn truncate(&mut self, base: u64, len: u64) -> io::Result<()> {
        // Drop the append handle first: its cursor is past the cut.
        self.head = None;
        let f = std::fs::OpenOptions::new().write(true).open(self.path(base))?;
        f.set_len(len)?;
        f.sync_data()
    }

    fn delete_segment(&mut self, base: u64) -> io::Result<()> {
        if matches!(self.head, Some((b, _)) if b == base) {
            self.head = None;
        }
        std::fs::remove_file(self.path(base))
    }
}

#[derive(Default)]
struct MemSegment {
    bytes: Vec<u8>,
    synced_len: usize,
}

#[derive(Default)]
struct MemInner {
    segments: BTreeMap<u64, MemSegment>,
}

/// Deterministic in-memory storage with an explicit crash model.
///
/// Cloning shares the underlying "disk", so a harness can keep a handle,
/// crash it, and reopen a fresh WAL over the surviving bytes.
#[derive(Clone, Default)]
pub struct MemStorage {
    inner: Arc<Mutex<MemInner>>,
}

impl MemStorage {
    /// An empty in-memory disk.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }

    /// Simulates a kill: synced bytes survive; of each segment's
    /// unsynced tail, a prefix chosen by `keep_unsynced` (given the tail
    /// length, returns how many of those bytes "made it to disk")
    /// survives — possibly slicing a record in half, which is the torn
    /// tail recovery must truncate.
    pub fn crash(&self, mut keep_unsynced: impl FnMut(usize) -> usize) {
        let mut inner = self.inner.lock();
        for seg in inner.segments.values_mut() {
            let tail = seg.bytes.len() - seg.synced_len;
            let keep = keep_unsynced(tail).min(tail);
            seg.bytes.truncate(seg.synced_len + keep);
            seg.synced_len = seg.bytes.len();
        }
    }

    /// Total bytes currently on the simulated disk.
    pub fn disk_bytes(&self) -> u64 {
        self.inner.lock().segments.values().map(|s| s.bytes.len() as u64).sum()
    }
}

impl Storage for MemStorage {
    fn list_segments(&self) -> io::Result<Vec<u64>> {
        Ok(self.inner.lock().segments.keys().copied().collect())
    }

    fn create_segment(&mut self, base: u64) -> io::Result<()> {
        self.inner.lock().segments.insert(base, MemSegment::default());
        Ok(())
    }

    fn append(&mut self, base: u64, bytes: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock();
        let seg = inner
            .segments
            .get_mut(&base)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such segment"))?;
        seg.bytes.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self, base: u64) -> io::Result<()> {
        let mut inner = self.inner.lock();
        let seg = inner
            .segments
            .get_mut(&base)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such segment"))?;
        seg.synced_len = seg.bytes.len();
        Ok(())
    }

    fn read_segment(&mut self, base: u64) -> io::Result<Vec<u8>> {
        let inner = self.inner.lock();
        inner
            .segments
            .get(&base)
            .map(|s| s.bytes.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such segment"))
    }

    fn read_at(&mut self, base: u64, off: u64, len: u64) -> io::Result<Vec<u8>> {
        let inner = self.inner.lock();
        let seg = inner
            .segments
            .get(&base)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such segment"))?;
        let start = off as usize;
        let end = start + len as usize;
        seg.bytes
            .get(start..end)
            .map(<[u8]>::to_vec)
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "short read"))
    }

    fn truncate(&mut self, base: u64, len: u64) -> io::Result<()> {
        let mut inner = self.inner.lock();
        let seg = inner
            .segments
            .get_mut(&base)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such segment"))?;
        seg.bytes.truncate(len as usize);
        seg.synced_len = seg.synced_len.min(len as usize);
        Ok(())
    }

    fn delete_segment(&mut self, base: u64) -> io::Result<()> {
        self.inner.lock().segments.remove(&base);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(storage: &mut dyn Storage) {
        storage.create_segment(0).unwrap();
        storage.append(0, b"hello ").unwrap();
        storage.append(0, b"world").unwrap();
        storage.sync(0).unwrap();
        assert_eq!(storage.read_segment(0).unwrap(), b"hello world");
        assert_eq!(storage.read_at(0, 6, 5).unwrap(), b"world");
        storage.truncate(0, 5).unwrap();
        assert_eq!(storage.read_segment(0).unwrap(), b"hello");
        storage.create_segment(100).unwrap();
        assert_eq!(storage.list_segments().unwrap(), vec![0, 100]);
        storage.delete_segment(0).unwrap();
        assert_eq!(storage.list_segments().unwrap(), vec![100]);
    }

    #[test]
    fn mem_storage_round_trip() {
        exercise(&mut MemStorage::new());
    }

    #[test]
    fn fs_storage_round_trip() {
        let dir = std::env::temp_dir().join(format!("wsd-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        exercise(&mut FsStorage::open(&dir).unwrap());
        // Reopen sees what was written.
        let mut reopened = FsStorage::open(&dir).unwrap();
        assert_eq!(reopened.list_segments().unwrap(), vec![100]);
        assert_eq!(reopened.read_segment(100).unwrap(), b"");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_crash_keeps_synced_prefix_and_seeded_tail_slice() {
        let mem = MemStorage::new();
        {
            let storage: &mut dyn Storage = &mut mem.clone();
            storage.create_segment(0).unwrap();
            storage.append(0, b"durable|").unwrap();
            storage.sync(0).unwrap();
            storage.append(0, b"buffered-tail").unwrap();
        }
        mem.crash(|tail| tail / 2); // keep 6 of 13 unsynced bytes
        let mut survivor = mem.clone();
        let bytes = Storage::read_segment(&mut survivor, 0).unwrap();
        assert_eq!(bytes, b"durable|buffer");
    }
}
