//! The durable mailbox: WS-MsgBox semantics on top of the WAL.
//!
//! Every state change is a WAL record appended *before* the caller sees
//! success, so "acknowledged" means "survives a crash":
//!
//! * `create` / `destroy` are durable before they return;
//! * `deposit` appends, enqueues, then group-commits — the 202 to the
//!   depositor is not sent until the record is fsynced;
//! * `fetch` appends an `Ack` covering the drained prefix and makes it
//!   durable **before** returning the messages, so a crash can never
//!   re-deliver a message some consumer already received (at-most-once
//!   pickup; a message is only "delivered" once fetch returns).
//!
//! Mailbox depth is bounded by disk, not RAM: message bodies are cached
//! in memory only up to `memory_budget_bytes`; beyond that a message is
//! a 48-byte reference and its body is read back from the segment file
//! on fetch (`spilled_bytes` gauge tracks how much lives only on disk).
//! Per-tenant byte quotas bound the disk side; expiry (`expires_at`,
//! supplied by the caller's clock) is the retention policy.
//!
//! Lock order: `store.msgbox` → `wal.inner` (audited by
//! `OrderedMutex`). Group-commit waits happen *outside* the mailbox
//! lock so depositors to other boxes aren't serialized behind an fsync.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::io;

use wsd_concurrent::OrderedMutex;
use wsd_telemetry::{Counter, Gauge, Scope};

use crate::record::Op;
use crate::storage::Storage;
use crate::wal::{AppendInfo, RecoveryReport, Wal, WalConfig};

/// Durable-store tuning.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// WAL knobs (segment size, sync policy).
    pub wal: WalConfig,
    /// Total message-body bytes kept cached in RAM; beyond this,
    /// deposits spill (body re-read from the segment on fetch).
    pub memory_budget_bytes: u64,
    /// Queued-body byte cap per tenant; deposits past it are rejected.
    pub quota_bytes_per_tenant: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            wal: WalConfig::default(),
            memory_budget_bytes: 64 * 1024 * 1024,
            quota_bytes_per_tenant: u64::MAX,
        }
    }
}

/// Durable-store errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// No mailbox with that id (or it was destroyed).
    NoSuchBox,
    /// Wrong access key.
    WrongKey,
    /// The tenant's queued bytes would exceed its quota.
    QuotaExceeded,
    /// The log or segment store failed.
    Io(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NoSuchBox => f.write_str("no such mailbox"),
            StoreError::WrongKey => f.write_str("wrong mailbox access key"),
            StoreError::QuotaExceeded => f.write_str("tenant byte quota exceeded"),
            StoreError::Io(e) => write!(f, "store i/o: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// A message handed back by [`DurableMsgBox::fetch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchedMessage {
    /// The serialized envelope.
    pub body: String,
    /// Deposit time (µs, caller's clock).
    pub received_at: u64,
    /// Drop-dead time (µs).
    pub expires_at: u64,
}

/// A queued message: where its body lives in the log, plus the cached
/// copy if it fit the memory budget.
struct MsgRef {
    lsn: u64,
    seg_base: u64,
    body_off: u64,
    body_len: u64,
    received_at: u64,
    expires_at: u64,
    cached: Option<String>,
}

struct BoxState {
    key: String,
    tenant: String,
    created_at: u64,
    queue: VecDeque<MsgRef>,
}

#[derive(Default)]
struct Inner {
    boxes: HashMap<String, BoxState>,
    /// Live (queued, unexpired) body bytes per tenant.
    tenant_bytes: HashMap<String, u64>,
    /// Cached body bytes in RAM.
    resident_bytes: u64,
    /// Spilled body bytes (on disk only).
    spilled_bytes: u64,
    /// Live deposit count per segment; a sealed segment at zero is
    /// garbage.
    live_per_segment: HashMap<u64, u64>,
    /// Segments no longer being appended to.
    sealed_segments: BTreeSet<u64>,
}

struct BoxMetrics {
    resident_gauge: Gauge,
    spilled_gauge: Gauge,
    quota_rejections: Counter,
}

/// The WAL-backed mailbox store. Same semantics as the in-memory
/// `MsgBoxStore` (ids and keys are supplied by the caller so the two
/// backends mint identical addresses), plus crash durability, spill,
/// and quotas.
pub struct DurableMsgBox {
    config: StoreConfig,
    wal: Wal,
    inner: OrderedMutex<Inner>,
    metrics: BoxMetrics,
}

impl DurableMsgBox {
    /// Opens the store over `storage`, replaying any existing log.
    /// Messages already expired at `now` are dropped during replay.
    pub fn open(
        config: StoreConfig,
        storage: Box<dyn Storage>,
        scope: &Scope,
        now: u64,
    ) -> io::Result<(DurableMsgBox, RecoveryReport)> {
        let mut inner = Inner::default();
        let budget = config.memory_budget_bytes;
        let (wal, report) = Wal::open(config.wal.clone(), storage, scope, |info, op| {
            replay_op(&mut inner, info, op, now, budget);
        })?;
        // Everything but the segment being appended to is sealed.
        let cur = wal.current_segment();
        inner.sealed_segments.retain(|&b| b != cur);
        let metrics = BoxMetrics {
            resident_gauge: scope.gauge("resident_bytes"),
            spilled_gauge: scope.gauge("spilled_bytes"),
            quota_rejections: scope.counter("quota_rejections"),
        };
        metrics.resident_gauge.set(inner.resident_bytes as i64);
        metrics.spilled_gauge.set(inner.spilled_bytes as i64);
        let store = DurableMsgBox {
            config,
            wal,
            inner: OrderedMutex::new("store.msgbox", inner),
            metrics,
        };
        // Segments whose deposits were all acked before the crash are
        // reclaimable immediately.
        store.gc().map_err(io::Error::other)?;
        Ok((store, report))
    }

    /// Registers a mailbox under caller-minted `id`/`key`. Durable
    /// before returning.
    pub fn create(&self, id: &str, key: &str, tenant: &str, now: u64) -> Result<(), StoreError> {
        // Insert and append under one lock so a concurrent rotation's
        // checkpoint can never order itself between them and miss the
        // box.
        let lsn = {
            let mut inner = self.inner.lock();
            inner.boxes.insert(
                id.to_string(),
                BoxState {
                    key: key.to_string(),
                    tenant: tenant.to_string(),
                    created_at: now,
                    queue: VecDeque::new(),
                },
            );
            self.wal
                .append(&Op::Create {
                    id: id.to_string(),
                    key: key.to_string(),
                    tenant: tenant.to_string(),
                    created_at: now,
                })?
                .lsn
        };
        self.wal.commit(lsn)?;
        Ok(())
    }

    /// Deposits a message; returns only once the record is durable
    /// (group commit amortizes the fsync across concurrent depositors).
    pub fn deposit(
        &self,
        box_id: &str,
        body: String,
        now: u64,
        expires_at: u64,
    ) -> Result<(), StoreError> {
        let body_len = body.len() as u64;
        let lsn = {
            let mut inner = self.inner.lock();
            let Some(tenant) = inner.boxes.get(box_id).map(|b| b.tenant.clone()) else {
                return Err(StoreError::NoSuchBox);
            };
            let used = inner.tenant_bytes.get(&tenant).copied().unwrap_or(0);
            if used.saturating_add(body_len) > self.config.quota_bytes_per_tenant {
                self.metrics.quota_rejections.inc();
                return Err(StoreError::QuotaExceeded);
            }
            if self.wal.needs_rotation() {
                let snapshot = boxes_snapshot(&inner);
                let old = self.wal.current_segment();
                self.wal.rotate(snapshot)?;
                inner.sealed_segments.insert(old);
            }
            let info = self.wal.append(&Op::Deposit {
                box_id: box_id.to_string(),
                received_at: now,
                expires_at,
                body: body.clone(),
            })?;
            let cached = if inner.resident_bytes + body_len <= self.config.memory_budget_bytes {
                inner.resident_bytes += body_len;
                Some(body)
            } else {
                inner.spilled_bytes += body_len;
                None
            };
            self.metrics.resident_gauge.set(inner.resident_bytes as i64);
            self.metrics.spilled_gauge.set(inner.spilled_bytes as i64);
            *inner.tenant_bytes.entry(tenant).or_insert(0) += body_len;
            *inner.live_per_segment.entry(info.seg_base).or_insert(0) += 1;
            let mbox = inner.boxes.get_mut(box_id).expect("checked above");
            mbox.queue.push_back(MsgRef {
                lsn: info.lsn,
                seg_base: info.seg_base,
                body_off: info.payload_off + Op::deposit_body_offset(box_id),
                body_len,
                received_at: now,
                expires_at,
                cached,
            });
            info.lsn
        };
        // Fsync wait happens outside the mailbox lock.
        self.wal.commit(lsn)?;
        self.gc()?;
        Ok(())
    }

    /// Fetches up to `max` messages in arrival order. The covering ack
    /// is durable before the messages are returned: after a crash,
    /// nothing a consumer has seen is ever handed out again.
    pub fn fetch(
        &self,
        id: &str,
        key: &str,
        max: usize,
        now: u64,
    ) -> Result<Vec<FetchedMessage>, StoreError> {
        let (out, ack_lsn) = {
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            let Some(mbox) = inner.boxes.get_mut(id) else {
                return Err(StoreError::NoSuchBox);
            };
            if mbox.key != key {
                return Err(StoreError::WrongKey);
            }
            prune_box(
                mbox,
                now,
                &mut inner.tenant_bytes,
                &mut inner.resident_bytes,
                &mut inner.spilled_bytes,
                &mut inner.live_per_segment,
            );
            let n = max.min(mbox.queue.len());
            if n == 0 {
                self.update_gauges(inner);
                return Ok(Vec::new());
            }
            let tenant = mbox.tenant.clone();
            let mut out = Vec::with_capacity(n);
            let mut upto = 0;
            for m in mbox.queue.drain(..n) {
                let body = match m.cached {
                    Some(b) => {
                        inner.resident_bytes -= m.body_len;
                        b
                    }
                    None => {
                        inner.spilled_bytes -= m.body_len;
                        let bytes = self.wal.read_at(m.seg_base, m.body_off, m.body_len)?;
                        String::from_utf8(bytes)
                            .map_err(|_| StoreError::Io("spilled body not utf-8".into()))?
                    }
                };
                debit(&mut inner.tenant_bytes, &tenant, m.body_len);
                release_live(&mut inner.live_per_segment, m.seg_base);
                upto = m.lsn;
                out.push(FetchedMessage {
                    body,
                    received_at: m.received_at,
                    expires_at: m.expires_at,
                });
            }
            self.update_gauges(inner);
            let info = self.wal.append(&Op::Ack {
                box_id: id.to_string(),
                upto_lsn: upto,
            })?;
            (out, info.lsn)
        };
        self.wal.commit(ack_lsn)?;
        self.gc()?;
        Ok(out)
    }

    /// Number of messages waiting (after expiry pruning).
    pub fn len(&self, id: &str, now: u64) -> Result<usize, StoreError> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let Some(mbox) = inner.boxes.get_mut(id) else {
            return Err(StoreError::NoSuchBox);
        };
        prune_box(
            mbox,
            now,
            &mut inner.tenant_bytes,
            &mut inner.resident_bytes,
            &mut inner.spilled_bytes,
            &mut inner.live_per_segment,
        );
        Ok(mbox.queue.len())
    }

    /// Destroys a mailbox and everything queued in it. Durable before
    /// returning.
    pub fn destroy(&self, id: &str, key: &str) -> Result<(), StoreError> {
        let lsn = {
            let mut inner = self.inner.lock();
            let inner = &mut *inner;
            let Some(mbox) = inner.boxes.get(id) else {
                return Err(StoreError::NoSuchBox);
            };
            if mbox.key != key {
                return Err(StoreError::WrongKey);
            }
            let mbox = inner.boxes.remove(id).expect("checked above");
            for m in &mbox.queue {
                match m.cached {
                    Some(_) => inner.resident_bytes -= m.body_len,
                    None => inner.spilled_bytes -= m.body_len,
                }
                debit(&mut inner.tenant_bytes, &mbox.tenant, m.body_len);
                release_live(&mut inner.live_per_segment, m.seg_base);
            }
            self.update_gauges(inner);
            self.wal.append(&Op::Destroy { box_id: id.to_string() })?.lsn
        };
        self.wal.commit(lsn)?;
        self.gc()?;
        Ok(())
    }

    /// Whether a mailbox exists.
    pub fn exists(&self, id: &str) -> bool {
        self.inner.lock().boxes.contains_key(id)
    }

    /// Number of live mailboxes.
    pub fn box_count(&self) -> usize {
        self.inner.lock().boxes.len()
    }

    /// Drops expired messages everywhere; returns how many were
    /// dropped. (Expiry is the retention policy: no record is written —
    /// replay re-applies the same cutoff.)
    pub fn expire_all(&self, now: u64) -> usize {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let mut dropped = 0;
        for mbox in inner.boxes.values_mut() {
            let before = mbox.queue.len();
            prune_box(
                mbox,
                now,
                &mut inner.tenant_bytes,
                &mut inner.resident_bytes,
                &mut inner.spilled_bytes,
                &mut inner.live_per_segment,
            );
            dropped += before - mbox.queue.len();
        }
        self.update_gauges(inner);
        dropped
    }

    /// Age of a mailbox in µs, if it exists.
    pub fn age(&self, id: &str, now: u64) -> Option<u64> {
        self.inner
            .lock()
            .boxes
            .get(id)
            .map(|m| now.saturating_sub(m.created_at))
    }

    /// Body bytes living only on disk right now.
    pub fn spilled_bytes(&self) -> u64 {
        self.inner.lock().spilled_bytes
    }

    /// Body bytes cached in RAM right now.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().resident_bytes
    }

    /// Queued body bytes charged to `tenant`.
    pub fn tenant_bytes(&self, tenant: &str) -> u64 {
        self.inner.lock().tenant_bytes.get(tenant).copied().unwrap_or(0)
    }

    /// The underlying log (fsync/byte counters feed the sim's disk
    /// model).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    fn update_gauges(&self, inner: &Inner) {
        self.metrics.resident_gauge.set(inner.resident_bytes as i64);
        self.metrics.spilled_gauge.set(inner.spilled_bytes as i64);
    }

    /// Deletes the longest *prefix* of sealed segments with no live
    /// deposits. Prefix-only matters: a later segment can hold the Ack
    /// or Destroy records that neutralize an earlier one, so a segment
    /// is only deletable once everything before it is too — otherwise
    /// replay would revive acked messages or destroyed boxes. Called
    /// only after a commit, so every ack that emptied a segment is
    /// already durable.
    fn gc(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let mut dead: Vec<u64> = Vec::new();
        for &base in inner.sealed_segments.iter() {
            if inner.live_per_segment.get(&base).copied().unwrap_or(0) == 0 {
                dead.push(base);
            } else {
                break;
            }
        }
        for base in dead {
            self.wal.delete_segment(base)?;
            inner.sealed_segments.remove(&base);
            inner.live_per_segment.remove(&base);
        }
        Ok(())
    }
}

fn boxes_snapshot(inner: &Inner) -> Vec<(String, String, String, u64)> {
    let mut snapshot: Vec<_> = inner
        .boxes
        .iter()
        .map(|(id, b)| (id.clone(), b.key.clone(), b.tenant.clone(), b.created_at))
        .collect();
    snapshot.sort();
    snapshot
}

fn debit(tenant_bytes: &mut HashMap<String, u64>, tenant: &str, n: u64) {
    if let Some(v) = tenant_bytes.get_mut(tenant) {
        *v = v.saturating_sub(n);
    }
}

fn release_live(live: &mut HashMap<u64, u64>, seg: u64) {
    if let Some(v) = live.get_mut(&seg) {
        *v = v.saturating_sub(1);
    }
}

fn prune_box(
    mbox: &mut BoxState,
    now: u64,
    tenant_bytes: &mut HashMap<String, u64>,
    resident: &mut u64,
    spilled: &mut u64,
    live: &mut HashMap<u64, u64>,
) {
    mbox.queue.retain(|m| {
        let keep = m.expires_at > now;
        if !keep {
            match m.cached {
                Some(_) => *resident -= m.body_len,
                None => *spilled -= m.body_len,
            }
            debit(tenant_bytes, &mbox.tenant, m.body_len);
            release_live(live, m.seg_base);
        }
        keep
    });
}

fn replay_op(inner: &mut Inner, info: AppendInfo, op: Op, now: u64, memory_budget: u64) {
    inner.sealed_segments.insert(info.seg_base);
    match op {
        Op::Create { id, key, tenant, created_at } => {
            inner.boxes.entry(id).or_insert(BoxState {
                key,
                tenant,
                created_at,
                queue: VecDeque::new(),
            });
        }
        Op::Checkpoint { boxes } => {
            // A checkpoint is the authoritative set of live boxes at
            // rotation time: a replayed box missing from it was
            // destroyed in a segment that GC has since deleted, so it
            // (and its accounting) goes away here.
            let live: std::collections::HashSet<&String> =
                boxes.iter().map(|(id, ..)| id).collect();
            let dead: Vec<String> = inner
                .boxes
                .keys()
                .filter(|id| !live.contains(id))
                .cloned()
                .collect();
            for id in dead {
                drop_box(inner, &id);
            }
            for (id, key, tenant, created_at) in boxes {
                inner.boxes.entry(id).or_insert(BoxState {
                    key,
                    tenant,
                    created_at,
                    queue: VecDeque::new(),
                });
            }
        }
        Op::Deposit { box_id, received_at, expires_at, body } => {
            if expires_at <= now {
                return; // retention: already expired, don't resurrect
            }
            let body_off = info.payload_off + Op::deposit_body_offset(&box_id);
            let Some(mbox) = inner.boxes.get_mut(&box_id) else {
                return; // destroyed later in the log, or never created
            };
            let body_len = body.len() as u64;
            let cached = if inner.resident_bytes + body_len <= memory_budget {
                inner.resident_bytes += body_len;
                Some(body)
            } else {
                inner.spilled_bytes += body_len;
                None
            };
            *inner.tenant_bytes.entry(mbox.tenant.clone()).or_insert(0) += body_len;
            *inner.live_per_segment.entry(info.seg_base).or_insert(0) += 1;
            mbox.queue.push_back(MsgRef {
                lsn: info.lsn,
                seg_base: info.seg_base,
                body_off,
                body_len,
                received_at,
                expires_at,
                cached,
            });
        }
        Op::Ack { box_id, upto_lsn } => {
            let Some(mbox) = inner.boxes.get_mut(&box_id) else {
                return;
            };
            let tenant = mbox.tenant.clone();
            while mbox.queue.front().is_some_and(|m| m.lsn <= upto_lsn) {
                let m = mbox.queue.pop_front().expect("front checked");
                match m.cached {
                    Some(_) => inner.resident_bytes -= m.body_len,
                    None => inner.spilled_bytes -= m.body_len,
                }
                debit(&mut inner.tenant_bytes, &tenant, m.body_len);
                release_live(&mut inner.live_per_segment, m.seg_base);
            }
        }
        Op::Destroy { box_id } => drop_box(inner, &box_id),
    }
}

/// Removes a box and unwinds all of its accounting (replay only).
fn drop_box(inner: &mut Inner, id: &str) {
    if let Some(mbox) = inner.boxes.remove(id) {
        for m in &mbox.queue {
            match m.cached {
                Some(_) => inner.resident_bytes -= m.body_len,
                None => inner.spilled_bytes -= m.body_len,
            }
            debit(&mut inner.tenant_bytes, &mbox.tenant, m.body_len);
            release_live(&mut inner.live_per_segment, m.seg_base);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use crate::wal::SyncMode;

    fn config() -> StoreConfig {
        StoreConfig {
            wal: WalConfig {
                sync: SyncMode::Always,
                ..WalConfig::default()
            },
            ..StoreConfig::default()
        }
    }

    fn open(mem: &MemStorage, cfg: StoreConfig, now: u64) -> DurableMsgBox {
        DurableMsgBox::open(cfg, Box::new(mem.clone()), &Scope::noop(), now)
            .unwrap()
            .0
    }

    #[test]
    fn create_deposit_fetch_destroy_cycle() {
        let mem = MemStorage::new();
        let s = open(&mem, config(), 0);
        s.create("mbox-1", "key-1", "t", 0).unwrap();
        s.deposit("mbox-1", "<m1/>".into(), 10, 1_000).unwrap();
        s.deposit("mbox-1", "<m2/>".into(), 20, 1_000).unwrap();
        assert_eq!(s.len("mbox-1", 30).unwrap(), 2);
        let got = s.fetch("mbox-1", "key-1", 10, 30).unwrap();
        assert_eq!(
            got.iter().map(|m| m.body.as_str()).collect::<Vec<_>>(),
            vec!["<m1/>", "<m2/>"]
        );
        assert_eq!(s.len("mbox-1", 30).unwrap(), 0);
        s.destroy("mbox-1", "key-1").unwrap();
        assert!(!s.exists("mbox-1"));
        assert_eq!(
            s.deposit("mbox-1", "x".into(), 40, 1_000),
            Err(StoreError::NoSuchBox)
        );
        assert_eq!(s.fetch("mbox-1", "bad", 1, 0), Err(StoreError::NoSuchBox));
    }

    #[test]
    fn wrong_key_rejected() {
        let mem = MemStorage::new();
        let s = open(&mem, config(), 0);
        s.create("mbox-1", "key-1", "t", 0).unwrap();
        assert_eq!(s.fetch("mbox-1", "bad", 1, 0), Err(StoreError::WrongKey));
        assert_eq!(s.destroy("mbox-1", "bad"), Err(StoreError::WrongKey));
        assert!(s.exists("mbox-1"));
    }

    #[test]
    fn restart_preserves_unfetched_messages_only() {
        let mem = MemStorage::new();
        {
            let s = open(&mem, config(), 0);
            s.create("mbox-1", "key-1", "t", 0).unwrap();
            s.deposit("mbox-1", "picked-up".into(), 1, 1_000).unwrap();
            s.deposit("mbox-1", "waiting".into(), 2, 1_000).unwrap();
            let got = s.fetch("mbox-1", "key-1", 1, 5).unwrap();
            assert_eq!(got[0].body, "picked-up");
        }
        // "Crash" (drop) and reopen over the same disk.
        let s = open(&mem, config(), 10);
        assert!(s.exists("mbox-1"));
        let got = s.fetch("mbox-1", "key-1", 10, 10).unwrap();
        // The acked message is not re-delivered; the waiting one is.
        assert_eq!(
            got.iter().map(|m| m.body.as_str()).collect::<Vec<_>>(),
            vec!["waiting"]
        );
    }

    #[test]
    fn spill_beyond_memory_budget_and_read_back() {
        let mem = MemStorage::new();
        let cfg = StoreConfig {
            memory_budget_bytes: 10,
            ..config()
        };
        let s = open(&mem, cfg.clone(), 0);
        s.create("mbox-1", "key-1", "t", 0).unwrap();
        s.deposit("mbox-1", "0123456789".into(), 0, 1_000).unwrap(); // fills budget
        s.deposit("mbox-1", "SPILLED-BODY".into(), 0, 1_000).unwrap();
        assert_eq!(s.resident_bytes(), 10);
        assert_eq!(s.spilled_bytes(), 12);
        let got = s.fetch("mbox-1", "key-1", 10, 1).unwrap();
        assert_eq!(got[1].body, "SPILLED-BODY");
        assert_eq!(s.spilled_bytes(), 0);
        assert_eq!(s.resident_bytes(), 0);

        // Spilled bodies also survive a restart.
        s.deposit("mbox-1", "0123456789".into(), 2, 1_000).unwrap();
        s.deposit("mbox-1", "SPILLED-TOO".into(), 2, 1_000).unwrap();
        drop(s);
        let s = open(&mem, cfg, 3);
        let got = s.fetch("mbox-1", "key-1", 10, 3).unwrap();
        assert_eq!(got[1].body, "SPILLED-TOO");
    }

    #[test]
    fn tenant_quota_rejects_and_frees_on_fetch() {
        let mem = MemStorage::new();
        let cfg = StoreConfig {
            quota_bytes_per_tenant: 8,
            ..config()
        };
        let s = open(&mem, cfg, 0);
        s.create("mbox-a", "ka", "acme", 0).unwrap();
        s.create("mbox-b", "kb", "acme", 0).unwrap();
        s.create("mbox-c", "kc", "other", 0).unwrap();
        s.deposit("mbox-a", "12345".into(), 0, 1_000).unwrap();
        // 5 + 5 > 8, same tenant even though a different box.
        assert_eq!(
            s.deposit("mbox-b", "67890".into(), 0, 1_000),
            Err(StoreError::QuotaExceeded)
        );
        // Another tenant is unaffected.
        s.deposit("mbox-c", "67890".into(), 0, 1_000).unwrap();
        // Draining frees the budget.
        s.fetch("mbox-a", "ka", 10, 1).unwrap();
        s.deposit("mbox-b", "67890".into(), 1, 1_000).unwrap();
        assert_eq!(s.tenant_bytes("acme"), 5);
    }

    #[test]
    fn expiry_is_retention_across_restart() {
        let mem = MemStorage::new();
        let s = open(&mem, config(), 0);
        s.create("mbox-1", "key-1", "t", 0).unwrap();
        s.deposit("mbox-1", "short-lived".into(), 0, 100).unwrap();
        s.deposit("mbox-1", "long-lived".into(), 0, 10_000).unwrap();
        assert_eq!(s.expire_all(100), 1);
        drop(s);
        // Reopen after the short TTL: only the long-lived one returns.
        let s = open(&mem, config(), 200);
        let got = s.fetch("mbox-1", "key-1", 10, 200).unwrap();
        assert_eq!(
            got.iter().map(|m| m.body.as_str()).collect::<Vec<_>>(),
            vec!["long-lived"]
        );
    }

    #[test]
    fn rotation_checkpoint_keeps_boxes_and_gc_bounds_disk() {
        let mem = MemStorage::new();
        let cfg = StoreConfig {
            wal: WalConfig {
                segment_bytes: 256, // rotate every few records
                sync: SyncMode::Always,
            },
            ..StoreConfig::default()
        };
        let s = open(&mem, cfg.clone(), 0);
        s.create("mbox-1", "key-1", "t", 0).unwrap();
        for i in 0..50 {
            s.deposit("mbox-1", format!("msg-{i:03}"), i, u64::MAX).unwrap();
            s.fetch("mbox-1", "key-1", 10, i).unwrap();
        }
        // Everything is drained, so GC must have kept the log to the
        // live segment (plus nothing else).
        let mut probe = mem.clone();
        assert_eq!(Storage::list_segments(&mut probe).unwrap().len(), 1);
        // The box itself survives restart via segment-head checkpoints.
        drop(s);
        let s = open(&mem, cfg, 100);
        assert!(s.exists("mbox-1"));
        s.deposit("mbox-1", "after".into(), 100, u64::MAX).unwrap();
        assert_eq!(s.fetch("mbox-1", "key-1", 10, 100).unwrap()[0].body, "after");
    }

    #[test]
    fn age_tracks_creation_time() {
        let mem = MemStorage::new();
        let s = open(&mem, config(), 0);
        s.create("mbox-1", "key-1", "t", 7).unwrap();
        assert_eq!(s.age("mbox-1", 17), Some(10));
        assert_eq!(s.age("nope", 17), None);
        assert_eq!(s.box_count(), 1);
    }
}
