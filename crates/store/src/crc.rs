//! CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant), table-driven.
//!
//! Hand-rolled because the build is offline: every WAL record carries a
//! checksum so recovery can tell a torn tail from a complete record.

/// Lazily built 256-entry lookup table for the reflected polynomial
/// `0xEDB88320`.
fn table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let a = crc32(b"hello wal record");
        let b = crc32(b"hello wal recorc");
        assert_ne!(a, b);
    }
}
