//! Segmented write-ahead log with leader-based group commit.
//!
//! LSNs are *positional*: records are numbered 1, 2, 3, … in append
//! order, a segment is named by the LSN of its first record, and replay
//! re-derives every record's LSN from its position — nothing is stored
//! twice, so the log can't disagree with itself.
//!
//! Group commit is leader-based rather than a background flusher thread
//! (which would trip the `raw-thread-spawn` lint and make the sim
//! nondeterministic): `append` buffers and syncs only when `flush_batch`
//! records are pending; `commit(lsn)` parks on a condvar for at most
//! `flush_interval` hoping another committer (or a batch-full append)
//! syncs first, and performs the fsync itself on timeout. Every fsync
//! covers all pending records, so N concurrent depositors cost one
//! fsync, not N — the `group_commit_batch` histogram shows the
//! amortization.
//!
//! Recovery (`Wal::open`) replays segments in base order. A torn tail —
//! incomplete header, short payload, or CRC mismatch — in the *last*
//! segment is the expected residue of a crash mid-append and is
//! truncated away; the same damage in an earlier segment means the disk
//! lied about a completed fsync and is reported as corruption.

use std::io;
use std::time::Duration;

use parking_lot::Condvar;
use wsd_concurrent::OrderedMutex;
use wsd_telemetry::{Counter, Histogram, Scope};

use crate::record::{frame, read_record, Op, ReadRecord, HEADER_BYTES};
use crate::storage::Storage;

/// When appended records become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Every append syncs before returning. Deterministic (no timing
    /// dependence), used by the simulation backend.
    Always,
    /// Batched fsync: sync when `flush_batch` records are pending, or
    /// when a committer has waited `flush_interval`.
    GroupCommit {
        /// Pending-record count that triggers an immediate sync.
        flush_batch: usize,
        /// Longest a `commit` waits for someone else's sync before
        /// performing its own.
        flush_interval: Duration,
    },
}

/// WAL tuning knobs.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Rotate to a fresh segment once the current one holds this many
    /// bytes.
    pub segment_bytes: u64,
    /// Durability policy.
    pub sync: SyncMode,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 8 * 1024 * 1024,
            sync: SyncMode::GroupCommit {
                flush_batch: 64,
                flush_interval: Duration::from_millis(2),
            },
        }
    }
}

/// Where an appended record landed.
#[derive(Debug, Clone, Copy)]
pub struct AppendInfo {
    /// The record's log sequence number.
    pub lsn: u64,
    /// Base LSN of the segment holding it.
    pub seg_base: u64,
    /// Byte offset of the record *payload* within that segment.
    pub payload_off: u64,
    /// Payload length in bytes.
    pub payload_len: u64,
}

/// What recovery found and repaired.
#[derive(Debug, Default, Clone, Copy)]
pub struct RecoveryReport {
    /// Segments scanned.
    pub segments: usize,
    /// Complete records replayed.
    pub records: u64,
    /// Torn-tail bytes truncated from the last segment.
    pub truncated_bytes: u64,
}

struct WalInner {
    storage: Box<dyn Storage>,
    /// Base LSN of the segment being appended to.
    cur_base: u64,
    /// Bytes in the current segment, including not-yet-synced ones.
    cur_len: u64,
    /// LSN the next append will get.
    next_lsn: u64,
    /// Highest LSN known durable.
    synced_lsn: u64,
    /// Records appended since the last sync.
    pending: usize,
}

struct WalMetrics {
    appends: Counter,
    wal_bytes: Counter,
    fsyncs: Counter,
    group_commit_batch: Histogram,
    recovery_replayed: Counter,
    segments_deleted: Counter,
    checkpoints: Counter,
}

/// The write-ahead log. All mutation goes through one audited lock
/// (class `wal.inner`); `commit` parks on a condvar while waiting for a
/// group sync, so depositors don't serialize on the fsync itself.
pub struct Wal {
    config: WalConfig,
    inner: OrderedMutex<WalInner>,
    synced: Condvar,
    metrics: WalMetrics,
}

impl Wal {
    /// Opens the log over `storage`, replaying every surviving record
    /// through `replay` (in LSN order) and truncating a torn tail.
    ///
    /// Damage anywhere but the tail of the last segment is corruption
    /// and fails the open.
    pub fn open(
        config: WalConfig,
        mut storage: Box<dyn Storage>,
        scope: &Scope,
        mut replay: impl FnMut(AppendInfo, Op),
    ) -> io::Result<(Wal, RecoveryReport)> {
        let metrics = WalMetrics {
            appends: scope.counter("wal_appends"),
            wal_bytes: scope.counter("wal_bytes"),
            fsyncs: scope.counter("fsyncs"),
            group_commit_batch: scope.histogram("group_commit_batch"),
            recovery_replayed: scope.counter("recovery_replayed"),
            segments_deleted: scope.counter("segments_deleted"),
            checkpoints: scope.counter("checkpoints"),
        };
        let bases = storage.list_segments()?;
        let mut report = RecoveryReport {
            segments: bases.len(),
            ..RecoveryReport::default()
        };
        let corrupt =
            |base: u64, off: u64| io::Error::other(format!("corrupt record in segment {base} at offset {off}"));
        let (mut cur_base, mut cur_len, mut next_lsn) = (1, 0, 1);
        for (i, &base) in bases.iter().enumerate() {
            let last = i + 1 == bases.len();
            let bytes = storage.read_segment(base)?;
            let mut off = 0u64;
            let mut lsn = base;
            loop {
                match read_record(&bytes, off) {
                    ReadRecord::Ok { payload, next } => {
                        let Some(op) = Op::decode_payload(&payload) else {
                            // CRC-valid but undecodable: not a torn
                            // write, a format violation.
                            return Err(corrupt(base, off));
                        };
                        replay(
                            AppendInfo {
                                lsn,
                                seg_base: base,
                                payload_off: off + HEADER_BYTES,
                                payload_len: payload.len() as u64,
                            },
                            op,
                        );
                        report.records += 1;
                        lsn += 1;
                        off = next;
                    }
                    ReadRecord::End => break,
                    ReadRecord::Torn if last => {
                        report.truncated_bytes = bytes.len() as u64 - off;
                        storage.truncate(base, off)?;
                        break;
                    }
                    ReadRecord::Torn => return Err(corrupt(base, off)),
                }
            }
            if last {
                (cur_base, cur_len, next_lsn) = (base, off, lsn);
            }
        }
        if bases.is_empty() {
            storage.create_segment(cur_base)?;
        }
        metrics.recovery_replayed.add(report.records);
        let wal = Wal {
            config,
            inner: OrderedMutex::new(
                "wal.inner",
                WalInner {
                    storage,
                    cur_base,
                    cur_len,
                    next_lsn,
                    // Everything that survived on disk is durable.
                    synced_lsn: next_lsn - 1,
                    pending: 0,
                },
            ),
            synced: Condvar::new(),
            metrics,
        };
        Ok((wal, report))
    }

    /// Appends one operation (buffered). Durable only once a later
    /// [`Wal::commit`] with this LSN (or any higher one) returns.
    pub fn append(&self, op: &Op) -> io::Result<AppendInfo> {
        let mut inner = self.inner.lock();
        let payload = op.encode_payload();
        let framed = frame(&payload);
        let info = AppendInfo {
            lsn: inner.next_lsn,
            seg_base: inner.cur_base,
            payload_off: inner.cur_len + HEADER_BYTES,
            payload_len: payload.len() as u64,
        };
        let base = inner.cur_base;
        inner.storage.append(base, &framed)?;
        inner.next_lsn += 1;
        inner.cur_len += framed.len() as u64;
        inner.pending += 1;
        self.metrics.appends.inc();
        self.metrics.wal_bytes.add(framed.len() as u64);
        let batch_full = match self.config.sync {
            SyncMode::Always => true,
            SyncMode::GroupCommit { flush_batch, .. } => inner.pending >= flush_batch,
        };
        if batch_full {
            self.sync_locked(&mut inner)?;
        }
        Ok(info)
    }

    /// Blocks until every record up to `lsn` is durable. Under group
    /// commit, waits up to `flush_interval` for another thread's sync
    /// to cover it, then performs the sync itself (becoming the leader
    /// for everything pending).
    pub fn commit(&self, lsn: u64) -> io::Result<()> {
        let mut inner = self.inner.lock();
        let interval = match self.config.sync {
            // `append` already synced.
            SyncMode::Always => return Ok(()),
            SyncMode::GroupCommit { flush_interval, .. } => flush_interval,
        };
        while inner.synced_lsn < lsn {
            let timed_out = inner.wait_timeout(&self.synced, interval);
            if inner.synced_lsn >= lsn {
                break;
            }
            if timed_out {
                self.sync_locked(&mut inner)?;
            }
        }
        Ok(())
    }

    /// Appends and makes durable before returning.
    pub fn append_durable(&self, op: &Op) -> io::Result<AppendInfo> {
        let info = self.append(op)?;
        self.commit(info.lsn)?;
        Ok(info)
    }

    fn sync_locked(&self, inner: &mut WalInner) -> io::Result<()> {
        if inner.pending == 0 {
            return Ok(());
        }
        let base = inner.cur_base;
        inner.storage.sync(base)?;
        self.metrics.fsyncs.inc();
        self.metrics.group_commit_batch.record(inner.pending as u64);
        inner.pending = 0;
        inner.synced_lsn = inner.next_lsn - 1;
        self.synced.notify_all();
        Ok(())
    }

    /// Reads `len` payload bytes at `off` in segment `seg_base` (spilled
    /// message bodies).
    pub fn read_at(&self, seg_base: u64, off: u64, len: u64) -> io::Result<Vec<u8>> {
        self.inner.lock().storage.read_at(seg_base, off, len)
    }

    /// Whether the current segment has reached its size limit.
    pub fn needs_rotation(&self) -> bool {
        self.inner.lock().cur_len >= self.config.segment_bytes
    }

    /// Seals the current segment (syncing it) and starts a fresh one
    /// whose first record is a [`Op::Checkpoint`] of `boxes` — after
    /// which any older segment with no live deposits is deletable.
    /// Returns the new segment's base LSN.
    pub fn rotate(&self, boxes: Vec<(String, String, String, u64)>) -> io::Result<u64> {
        let mut inner = self.inner.lock();
        self.sync_locked(&mut inner)?;
        let base = inner.next_lsn;
        inner.storage.create_segment(base)?;
        inner.cur_base = base;
        inner.cur_len = 0;
        let framed = frame(&Op::Checkpoint { boxes }.encode_payload());
        inner.storage.append(base, &framed)?;
        inner.next_lsn += 1;
        inner.cur_len += framed.len() as u64;
        inner.pending += 1;
        // The checkpoint must be durable before it can justify GC.
        self.sync_locked(&mut inner)?;
        self.metrics.checkpoints.inc();
        self.metrics.appends.inc();
        self.metrics.wal_bytes.add(framed.len() as u64);
        Ok(base)
    }

    /// Deletes a sealed segment whose deposits are all acked/expired.
    pub fn delete_segment(&self, base: u64) -> io::Result<()> {
        let mut inner = self.inner.lock();
        assert_ne!(base, inner.cur_base, "never delete the live segment");
        inner.storage.delete_segment(base)?;
        self.metrics.segments_deleted.inc();
        Ok(())
    }

    /// Base LSN of the segment currently being written.
    pub fn current_segment(&self) -> u64 {
        self.inner.lock().cur_base
    }

    /// Total fsyncs performed (for the sim's disk-latency model).
    pub fn fsync_count(&self) -> u64 {
        self.metrics.fsyncs.get()
    }

    /// Total bytes appended (for the sim's disk-latency model).
    pub fn bytes_appended(&self) -> u64 {
        self.metrics.wal_bytes.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn deposit(i: u64) -> Op {
        Op::Deposit {
            box_id: "mbox-1".into(),
            received_at: i,
            expires_at: i + 100,
            body: format!("body-{i}"),
        }
    }

    fn open_mem(mem: &MemStorage, replayed: &mut Vec<(u64, Op)>) -> (Wal, RecoveryReport) {
        Wal::open(
            WalConfig {
                sync: SyncMode::Always,
                ..WalConfig::default()
            },
            Box::new(mem.clone()),
            &Scope::noop(),
            |info, op| replayed.push((info.lsn, op)),
        )
        .unwrap()
    }

    #[test]
    fn append_then_reopen_replays_in_lsn_order() {
        let mem = MemStorage::new();
        {
            let (wal, _) = open_mem(&mem, &mut Vec::new());
            for i in 0..5 {
                let info = wal.append_durable(&deposit(i)).unwrap();
                assert_eq!(info.lsn, i + 1);
            }
        }
        let mut replayed = Vec::new();
        let (_, report) = open_mem(&mem, &mut replayed);
        assert_eq!(report.records, 5);
        assert_eq!(report.truncated_bytes, 0);
        let lsns: Vec<u64> = replayed.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![1, 2, 3, 4, 5]);
        assert_eq!(replayed[3].1, deposit(3));
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let mem = MemStorage::new();
        {
            let (wal, _) = Wal::open(
                WalConfig {
                    sync: SyncMode::GroupCommit {
                        flush_batch: 1000,
                        flush_interval: Duration::from_millis(1),
                    },
                    ..WalConfig::default()
                },
                Box::new(mem.clone()),
                &Scope::noop(),
                |_, _| {},
            )
            .unwrap();
            wal.append(&deposit(0)).unwrap();
            wal.commit(1).unwrap(); // durable
            wal.append(&deposit(1)).unwrap(); // buffered only
        }
        // Crash keeps the synced record plus 3 bytes of the torn one.
        mem.crash(|tail| tail.min(3));
        let mut replayed = Vec::new();
        let (wal, report) = open_mem(&mem, &mut replayed);
        assert_eq!(report.records, 1);
        assert!(report.truncated_bytes > 0);
        assert_eq!(replayed.len(), 1);
        // The log keeps working at the right LSN after repair.
        assert_eq!(wal.append_durable(&deposit(9)).unwrap().lsn, 2);
    }

    #[test]
    fn rotation_checkpoints_and_gc_deletes_sealed_segments() {
        let mem = MemStorage::new();
        let (wal, _) = open_mem(&mem, &mut Vec::new());
        wal.append_durable(&deposit(0)).unwrap();
        let boxes = vec![("mbox-1".into(), "k".into(), "t".into(), 7u64)];
        let base = wal.rotate(boxes.clone()).unwrap();
        assert_eq!(base, 2); // checkpoint gets LSN 2
        assert_eq!(wal.current_segment(), 2);
        wal.append_durable(&deposit(1)).unwrap();
        wal.delete_segment(1).unwrap();

        let mut replayed = Vec::new();
        let (_, report) = open_mem(&mem, &mut replayed);
        assert_eq!(report.segments, 1);
        // Checkpoint (lsn 2) + the later deposit (lsn 3) survive.
        assert_eq!(replayed[0], (2, Op::Checkpoint { boxes }));
        assert_eq!(replayed[1].0, 3);
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        let mem = MemStorage::new();
        let (wal, _) = Wal::open(
            WalConfig {
                sync: SyncMode::GroupCommit {
                    flush_batch: 4,
                    flush_interval: Duration::from_secs(60),
                },
                ..WalConfig::default()
            },
            Box::new(mem.clone()),
            &Scope::noop(),
            |_, _| {},
        )
        .unwrap();
        let mut last = AppendInfo { lsn: 0, seg_base: 0, payload_off: 0, payload_len: 0 };
        for i in 0..8 {
            last = wal.append(&deposit(i)).unwrap();
        }
        // Two batch-full syncs covered all eight; commit returns with
        // no third fsync and without waiting out the interval.
        wal.commit(last.lsn).unwrap();
        assert_eq!(wal.fsync_count(), 2);
    }

    #[test]
    fn spilled_payload_read_back_by_offset() {
        let mem = MemStorage::new();
        let (wal, _) = open_mem(&mem, &mut Vec::new());
        let op = deposit(3);
        let info = wal.append_durable(&op).unwrap();
        let payload = wal.read_at(info.seg_base, info.payload_off, info.payload_len).unwrap();
        assert_eq!(Op::decode_payload(&payload), Some(op));
    }
}
