//! Byte-level scanning over serialized XML.
//!
//! Building blocks for splice-style rewriters that edit a serialized
//! document in place instead of parsing it into a tree: a balanced
//! element skipper and an entity decoder. Both are strict — anything
//! they do not recognise yields `None`, and the caller is expected to
//! fall back to the tree path.

use crate::escape::{char_ref, predefined_entity};
use crate::swar;
use std::borrow::Cow;

/// Skips the complete element whose `<` sits at `start`, returning the
/// offset one past its end (past `/>` or the matching close tag).
/// Handles nested elements, quoted attribute values, comments and CDATA
/// sections. Returns `None` when the bytes are not a well-formed
/// serialized element.
pub fn skip_element(s: &str, start: usize) -> Option<usize> {
    let bytes = s.as_bytes();
    if bytes.get(start) != Some(&b'<') {
        return None;
    }
    let mut pos = start;
    let mut depth = 0usize;
    loop {
        if bytes.get(pos) == Some(&b'<') {
            let rest = &s[pos..];
            if let Some(after) = rest.strip_prefix("<!--") {
                pos += 4 + swar::find_seq(after.as_bytes(), b"-->")? + 3;
            } else if let Some(after) = rest.strip_prefix("<![CDATA[") {
                pos += 9 + swar::find_seq(after.as_bytes(), b"]]>")? + 3;
            } else if rest.starts_with("</") {
                let gt = find_unquoted_gt(bytes, pos + 2)?;
                depth = depth.checked_sub(1)?;
                pos = gt + 1;
                if depth == 0 {
                    return Some(pos);
                }
            } else {
                let gt = find_unquoted_gt(bytes, pos + 1)?;
                let self_closing = bytes[gt - 1] == b'/';
                pos = gt + 1;
                if self_closing {
                    if depth == 0 {
                        return Some(pos);
                    }
                } else {
                    depth += 1;
                }
            }
        } else {
            // Character data: jump to the next markup.
            pos += swar::find_byte(bytes.get(pos..)?, b'<')?;
        }
    }
}

/// Finds the next `>` at or after `from` that is not inside a quoted
/// attribute value.
fn find_unquoted_gt(bytes: &[u8], from: usize) -> Option<usize> {
    let mut pos = from;
    loop {
        let i = pos + swar::find_byte3(bytes.get(pos..)?, b'>', b'"', b'\'')?;
        match bytes[i] {
            b'>' => return Some(i),
            q => {
                // Inside a quoted attribute value: jump to its close quote.
                let close = i + 1 + swar::find_byte(bytes.get(i + 1..)?, q)?;
                pos = close + 1;
            }
        }
    }
}

/// Depth cap for [`verify_element`]'s fixed name stack. Deeper documents
/// are declined, never mis-verified: the caller falls back to the tree
/// path, which has no such limit.
const MAX_VERIFY_DEPTH: usize = 64;
/// Attributes per tag the verifier will track for duplicate detection.
const MAX_VERIFY_ATTRS: usize = 24;
/// Simultaneously in-scope `xmlns:p` bindings the verifier will track.
const MAX_VERIFY_BINDINGS: usize = 32;

/// Verifies that the complete element whose `<` sits at `start` is one
/// the tree parser ([`crate::Document::parse`]) would accept, and returns
/// the offset one past its end.
///
/// Where [`skip_element`] only balances depth, this re-checks every token
/// the parser would — close-tag names must *match* their open tag, names
/// must be valid (at most one colon, name-start/name-char rules),
/// attributes must be unique, entity references must be known predefined
/// or character references, and prefixed names must have an in-scope
/// `xmlns:p` binding — all without allocating, so a splice fast path can
/// guarantee it never forwards bytes the tree path would fault on.
///
/// It is deliberately *stricter* than the parser where the canonical
/// writer gives it room to be: comments, CDATA, processing instructions,
/// DOCTYPE, single-quoted or whitespace-padded attributes, whitespace in
/// close tags, and documents deeper than the fixed stack all yield
/// `None`. Declining is always safe — the caller falls back to the tree.
pub fn verify_element(s: &str, start: usize) -> Option<usize> {
    verify_element_with_prefixes(s, start, &[])
}

/// [`verify_element`] with namespace prefixes already in scope — e.g. the
/// envelope prefix a SOAP `Body` inherits from its root element, which
/// lies outside the verified byte range.
pub fn verify_element_with_prefixes(s: &str, start: usize, bound: &[&str]) -> Option<usize> {
    let bytes = s.as_bytes();
    // (name_start, name_len) of each open element, innermost last.
    let mut stack = [(0usize, 0usize); MAX_VERIFY_DEPTH];
    let mut depth = 0usize;
    // (prefix_start, prefix_len, owner_depth) for each live xmlns:p.
    let mut decls = [(0usize, 0usize, 0usize); MAX_VERIFY_BINDINGS];
    let mut ndecls = 0usize;
    let mut pos = start;
    if bytes.get(pos) != Some(&b'<') {
        return None;
    }
    loop {
        match bytes.get(pos)? {
            b'<' if bytes.get(pos + 1) == Some(&b'/') => {
                let (ns, nl) = stack[depth.checked_sub(1)?];
                let name_end = pos + 2 + nl;
                if s.get(pos + 2..name_end)? != &s[ns..ns + nl]
                    || bytes.get(name_end) != Some(&b'>')
                {
                    return None;
                }
                depth -= 1;
                while ndecls > 0 && decls[ndecls - 1].2 == depth {
                    ndecls -= 1;
                }
                pos = name_end + 1;
                if depth == 0 {
                    return Some(pos);
                }
            }
            b'<' => {
                let name_start = pos + 1;
                let name_len = scan_raw_name(s, name_start)?;
                pos = name_start + name_len;
                let mut attrs = [(0usize, 0usize); MAX_VERIFY_ATTRS];
                let mut nattrs = 0usize;
                let decls_before = ndecls;
                let self_closing = loop {
                    match bytes.get(pos)? {
                        b'>' => {
                            pos += 1;
                            break false;
                        }
                        b'/' => {
                            if bytes.get(pos + 1) != Some(&b'>') {
                                return None;
                            }
                            pos += 2;
                            break true;
                        }
                        // Canonical form: exactly one space, then `name="value"`.
                        b' ' => {
                            let astart = pos + 1;
                            let alen = scan_raw_name(s, astart)?;
                            pos = astart + alen;
                            if bytes.get(pos) != Some(&b'=') || bytes.get(pos + 1) != Some(&b'"') {
                                return None;
                            }
                            pos += 2;
                            let aname = &s[astart..astart + alen];
                            if attrs[..nattrs].iter().any(|&(s0, l0)| s[s0..s0 + l0] == *aname)
                                || nattrs == MAX_VERIFY_ATTRS
                            {
                                return None;
                            }
                            attrs[nattrs] = (astart, alen);
                            nattrs += 1;
                            if let Some(p) = aname.strip_prefix("xmlns:") {
                                if ndecls == MAX_VERIFY_BINDINGS {
                                    return None;
                                }
                                decls[ndecls] = (astart + "xmlns:".len(), p.len(), depth);
                                ndecls += 1;
                            }
                            loop {
                                let i = swar::find_byte3(bytes.get(pos..)?, b'"', b'&', b'<')?;
                                pos += i;
                                match bytes[pos] {
                                    b'"' => {
                                        pos += 1;
                                        break;
                                    }
                                    b'<' => return None,
                                    _ => pos = verify_entity(s, pos + 1)?,
                                }
                            }
                        }
                        _ => return None,
                    }
                };
                // Prefixes resolve only after the whole tag is read: an
                // `xmlns:p` on this very tag is in scope for the tag's own
                // name, exactly as the tree parser scopes it.
                let bound_here = |pstart: usize, plen: usize| -> bool {
                    let p = &s[pstart..pstart + plen];
                    p == "xml"
                        || p == "xmlns"
                        || bound.contains(&p)
                        || decls[..ndecls].iter().any(|&(ds, dl, _)| s[ds..ds + dl] == *p)
                };
                if let Some(c) = s[name_start..name_start + name_len].find(':') {
                    if !bound_here(name_start, c) {
                        return None;
                    }
                }
                for &(astart, alen) in &attrs[..nattrs] {
                    let aname = &s[astart..astart + alen];
                    if aname == "xmlns" || aname.starts_with("xmlns:") {
                        continue;
                    }
                    if let Some(c) = aname.find(':') {
                        if !bound_here(astart, c) {
                            return None;
                        }
                    }
                }
                if self_closing {
                    ndecls = decls_before;
                    if depth == 0 {
                        return Some(pos);
                    }
                } else {
                    if depth == MAX_VERIFY_DEPTH {
                        return None;
                    }
                    stack[depth] = (name_start, name_len);
                    depth += 1;
                }
            }
            _ => {
                // Character data: bulk-skip to the next markup byte,
                // validating every entity reference on the way.
                loop {
                    let i = swar::find_byte2(bytes.get(pos..)?, b'<', b'&')?;
                    pos += i;
                    if bytes[pos] == b'<' {
                        break;
                    }
                    pos = verify_entity(s, pos + 1)?;
                }
            }
        }
    }
}

/// Length of the valid raw name (at most one colon, both parts
/// non-empty) starting at byte offset `at`. The allocation-free twin of
/// [`crate::name::is_valid_raw_name`].
fn scan_raw_name(s: &str, at: usize) -> Option<usize> {
    use crate::name::{is_name_char, is_name_start};
    let mut len = 0usize;
    let mut seen_colon = false;
    let mut part_chars = 0usize;
    for c in s.get(at..)?.chars() {
        if if part_chars == 0 { is_name_start(c) } else { is_name_char(c) } {
            part_chars += 1;
            len += c.len_utf8();
        } else if c == ':' && !seen_colon && part_chars > 0 {
            seen_colon = true;
            part_chars = 0;
            len += 1;
        } else {
            break;
        }
    }
    if part_chars == 0 {
        return None;
    }
    Some(len)
}

/// Validates the entity reference whose `&` sits just before `at`,
/// returning the offset past its `;`. Same 13-byte window and reference
/// set as the parser's `read_entity`, so the verifier accepts exactly
/// the references the tree path decodes.
fn verify_entity(s: &str, at: usize) -> Option<usize> {
    let rest = s.get(at..)?;
    let window = &rest.as_bytes()[..rest.len().min(13)];
    let semi = swar::find_byte(window, b';').filter(|&i| i <= 12)?;
    let body = &rest[..semi];
    match body.strip_prefix('#') {
        Some(num) => char_ref(num)?,
        None => predefined_entity(body)?,
    };
    Some(at + semi + 1)
}

/// Decodes entity and character references in a run of character data.
/// Returns `None` for unterminated or unknown references (the sign of a
/// document this scanner should not be trusted with).
pub fn unescape(s: &str) -> Option<Cow<'_, str>> {
    let Some(first) = swar::find_byte(s.as_bytes(), b'&') else {
        return Some(Cow::Borrowed(s));
    };
    let mut out = String::with_capacity(s.len());
    out.push_str(&s[..first]);
    let mut rest = &s[first..];
    while let Some(amp) = swar::find_byte(rest.as_bytes(), b'&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after.find(';')?;
        let name = &after[..semi];
        let c = match name.strip_prefix('#') {
            Some(body) => char_ref(body)?,
            None => predefined_entity(name)?,
        };
        out.push(c);
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Some(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skips_flat_and_nested_elements() {
        let s = "<a><b>x</b><c/></a><tail/>";
        assert_eq!(skip_element(s, 0), Some(19));
        assert_eq!(&s[..19], "<a><b>x</b><c/></a>");
        assert_eq!(skip_element(s, 3), Some(11)); // <b>x</b>
        assert_eq!(skip_element(s, 11), Some(15)); // <c/>
    }

    #[test]
    fn skips_self_closing_with_attrs() {
        let s = "<a x=\"1>2\" y='<'/>rest";
        assert_eq!(skip_element(s, 0), Some(18));
    }

    #[test]
    fn skips_comments_and_cdata() {
        let s = "<a><!-- </a> --><![CDATA[</a>]]></a>";
        assert_eq!(skip_element(s, 0), Some(s.len()));
    }

    #[test]
    fn rejects_truncated_input() {
        assert_eq!(skip_element("<a><b></b>", 0), None);
        assert_eq!(skip_element("<a", 0), None);
        assert_eq!(skip_element("x<a/>", 0), None);
        assert_eq!(skip_element("</a>", 0), None);
    }

    #[test]
    fn verify_accepts_canonical_elements() {
        let s = "<a><b x=\"1\">t &amp; &#x41;</b><c/></a>tail";
        assert_eq!(verify_element(s, 0), Some(s.len() - 4));
        assert_eq!(verify_element("<a/>", 0), Some(4));
        assert_eq!(verify_element("<a x=\"&quot;\"/>", 0), Some(15));
    }

    #[test]
    fn verify_matches_close_tag_names() {
        // skip_element balances these by depth; the verifier must not.
        assert_eq!(verify_element("<a></b>", 0), None);
        assert_eq!(verify_element("<a></ab>", 0), None);
        assert_eq!(verify_element("<ab></a>", 0), None);
        assert_eq!(verify_element("<a><b></a></b>", 0), None);
        assert_eq!(verify_element("<a></a >", 0), None); // canonical only
    }

    #[test]
    fn verify_rejects_unknown_entities() {
        assert_eq!(verify_element("<a>&bn;</a>", 0), None);
        assert_eq!(verify_element("<a>&nbsp;</a>", 0), None);
        assert_eq!(verify_element("<a>a&b</a>", 0), None);
        assert_eq!(verify_element("<a>&#x0;</a>", 0), None);
        assert_eq!(verify_element("<a x=\"&bogus;\"/>", 0), None);
    }

    #[test]
    fn verify_rejects_bad_tokens() {
        assert_eq!(verify_element("<1a/>", 0), None);
        assert_eq!(verify_element("<a:b:c/>", 0), None);
        assert_eq!(verify_element("<a x=\"1\" x=\"2\"/>", 0), None);
        assert_eq!(verify_element("<a x='1'/>", 0), None); // canonical quotes only
        assert_eq!(verify_element("<a x=\"<\"/>", 0), None);
        assert_eq!(verify_element("<a><!-- c --></a>", 0), None); // fall back
        assert_eq!(verify_element("<a><![CDATA[x]]></a>", 0), None);
        assert_eq!(verify_element("<a><b>", 0), None); // truncated
        assert_eq!(verify_element("<a", 0), None);
    }

    #[test]
    fn verify_tracks_prefix_scopes() {
        // Binding on the tag itself covers the tag's own name.
        let s = "<m:op xmlns:m=\"urn:x\"><m:arg>1</m:arg></m:op>";
        assert_eq!(verify_element(s, 0), Some(s.len()));
        // Unbound prefixes are what the tree parser faults on.
        assert_eq!(verify_element("<m:op/>", 0), None);
        assert_eq!(verify_element("<a><w:x/></a>", 0), None);
        // A sibling does not inherit a closed scope.
        assert_eq!(
            verify_element("<a><b xmlns:p=\"u\"/><p:c/></a>", 0),
            None
        );
        // Pre-bound prefixes stand in for out-of-range ancestors.
        assert_eq!(verify_element_with_prefixes("<m:op/>", 0, &["m"]), Some(7));
        // xml: needs no declaration.
        assert_eq!(verify_element("<a xml:lang=\"en\"/>", 0), Some(18));
    }

    #[test]
    fn verify_declines_past_depth_cap() {
        let deep = format!("{}{}", "<n>".repeat(70), "</n>".repeat(70));
        assert_eq!(verify_element(&deep, 0), None);
        let ok = format!("{}{}", "<n>".repeat(50), "</n>".repeat(50));
        assert_eq!(verify_element(&ok, 0), Some(ok.len()));
    }

    #[test]
    fn unescape_decodes_references() {
        assert_eq!(unescape("plain").unwrap(), "plain");
        assert!(matches!(unescape("plain").unwrap(), Cow::Borrowed(_)));
        assert_eq!(unescape("a&lt;b&amp;c&gt;d").unwrap(), "a<b&c>d");
        assert_eq!(unescape("&#65;&#x42;").unwrap(), "AB");
    }

    #[test]
    fn unescape_rejects_bad_references() {
        assert_eq!(unescape("a&b"), None);
        assert_eq!(unescape("&nbsp;"), None);
        assert_eq!(unescape("&#x0;"), None);
    }
}
