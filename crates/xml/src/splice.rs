//! Byte-level scanning over serialized XML.
//!
//! Building blocks for splice-style rewriters that edit a serialized
//! document in place instead of parsing it into a tree: a balanced
//! element skipper and an entity decoder. Both are strict — anything
//! they do not recognise yields `None`, and the caller is expected to
//! fall back to the tree path.

use crate::escape::{char_ref, predefined_entity};
use std::borrow::Cow;

/// Skips the complete element whose `<` sits at `start`, returning the
/// offset one past its end (past `/>` or the matching close tag).
/// Handles nested elements, quoted attribute values, comments and CDATA
/// sections. Returns `None` when the bytes are not a well-formed
/// serialized element.
pub fn skip_element(s: &str, start: usize) -> Option<usize> {
    let bytes = s.as_bytes();
    if bytes.get(start) != Some(&b'<') {
        return None;
    }
    let mut pos = start;
    let mut depth = 0usize;
    loop {
        if bytes.get(pos) == Some(&b'<') {
            let rest = &s[pos..];
            if let Some(after) = rest.strip_prefix("<!--") {
                pos += 4 + after.find("-->")? + 3;
            } else if let Some(after) = rest.strip_prefix("<![CDATA[") {
                pos += 9 + after.find("]]>")? + 3;
            } else if rest.starts_with("</") {
                let gt = find_unquoted_gt(bytes, pos + 2)?;
                depth = depth.checked_sub(1)?;
                pos = gt + 1;
                if depth == 0 {
                    return Some(pos);
                }
            } else {
                let gt = find_unquoted_gt(bytes, pos + 1)?;
                let self_closing = bytes[gt - 1] == b'/';
                pos = gt + 1;
                if self_closing {
                    if depth == 0 {
                        return Some(pos);
                    }
                } else {
                    depth += 1;
                }
            }
        } else {
            // Character data: jump to the next markup.
            pos += s.get(pos..)?.find('<')?;
        }
    }
}

/// Finds the next `>` at or after `from` that is not inside a quoted
/// attribute value.
fn find_unquoted_gt(bytes: &[u8], from: usize) -> Option<usize> {
    let mut quote: Option<u8> = None;
    for (i, &b) in bytes.iter().enumerate().skip(from) {
        match quote {
            None => match b {
                b'>' => return Some(i),
                b'"' | b'\'' => quote = Some(b),
                _ => {}
            },
            Some(q) if b == q => quote = None,
            Some(_) => {}
        }
    }
    None
}

/// Decodes entity and character references in a run of character data.
/// Returns `None` for unterminated or unknown references (the sign of a
/// document this scanner should not be trusted with).
pub fn unescape(s: &str) -> Option<Cow<'_, str>> {
    let Some(first) = s.find('&') else {
        return Some(Cow::Borrowed(s));
    };
    let mut out = String::with_capacity(s.len());
    out.push_str(&s[..first]);
    let mut rest = &s[first..];
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after.find(';')?;
        let name = &after[..semi];
        let c = match name.strip_prefix('#') {
            Some(body) => char_ref(body)?,
            None => predefined_entity(name)?,
        };
        out.push(c);
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Some(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skips_flat_and_nested_elements() {
        let s = "<a><b>x</b><c/></a><tail/>";
        assert_eq!(skip_element(s, 0), Some(19));
        assert_eq!(&s[..19], "<a><b>x</b><c/></a>");
        assert_eq!(skip_element(s, 3), Some(11)); // <b>x</b>
        assert_eq!(skip_element(s, 11), Some(15)); // <c/>
    }

    #[test]
    fn skips_self_closing_with_attrs() {
        let s = "<a x=\"1>2\" y='<'/>rest";
        assert_eq!(skip_element(s, 0), Some(18));
    }

    #[test]
    fn skips_comments_and_cdata() {
        let s = "<a><!-- </a> --><![CDATA[</a>]]></a>";
        assert_eq!(skip_element(s, 0), Some(s.len()));
    }

    #[test]
    fn rejects_truncated_input() {
        assert_eq!(skip_element("<a><b></b>", 0), None);
        assert_eq!(skip_element("<a", 0), None);
        assert_eq!(skip_element("x<a/>", 0), None);
        assert_eq!(skip_element("</a>", 0), None);
    }

    #[test]
    fn unescape_decodes_references() {
        assert_eq!(unescape("plain").unwrap(), "plain");
        assert!(matches!(unescape("plain").unwrap(), Cow::Borrowed(_)));
        assert_eq!(unescape("a&lt;b&amp;c&gt;d").unwrap(), "a<b&c>d");
        assert_eq!(unescape("&#65;&#x42;").unwrap(), "AB");
    }

    #[test]
    fn unescape_rejects_bad_references() {
        assert_eq!(unescape("a&b"), None);
        assert_eq!(unescape("&nbsp;"), None);
        assert_eq!(unescape("&#x0;"), None);
    }
}
