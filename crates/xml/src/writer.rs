//! Tree serialization.
//!
//! Writes exactly what the tree stores: prefixes and `xmlns` declarations
//! are emitted as-is, text and attribute values are escaped, CDATA and
//! comments are preserved. `write(parse(x))` therefore reproduces the
//! structure (though not insignificant whitespace outside the root).

use crate::escape::{escape_attr, escape_text};
use crate::tree::{Document, Element, Node};

/// Serializes a document with an XML declaration.
pub fn write_document(doc: &Document) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    write_element_into(&doc.root, &mut out);
    out
}

/// Serializes a single element with no declaration.
pub fn write_element(el: &Element) -> String {
    let mut out = String::with_capacity(128);
    write_element_into(el, &mut out);
    out
}

/// Serializes an element into an existing buffer.
pub fn write_element_into(el: &Element, out: &mut String) {
    out.push('<');
    push_qname(el, out);
    for attr in &el.attributes {
        out.push(' ');
        if let Some(p) = &attr.name.prefix {
            out.push_str(p);
            out.push(':');
        }
        out.push_str(&attr.name.local);
        out.push_str("=\"");
        out.push_str(&escape_attr(&attr.value));
        out.push('"');
    }
    if el.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for child in &el.children {
        match child {
            Node::Element(e) => write_element_into(e, out),
            Node::Text(t) => out.push_str(&escape_text(t)),
            Node::CData(t) => {
                // A CDATA section cannot contain "]]>"; fall back to escaped
                // text when it does, which preserves the character data.
                if t.contains("]]>") {
                    out.push_str(&escape_text(t));
                } else {
                    out.push_str("<![CDATA[");
                    out.push_str(t);
                    out.push_str("]]>");
                }
            }
            Node::Comment(c) => {
                out.push_str("<!--");
                out.push_str(c);
                out.push_str("-->");
            }
        }
    }
    out.push_str("</");
    push_qname(el, out);
    out.push('>');
}

fn push_qname(el: &Element, out: &mut String) {
    if let Some(p) = &el.name.prefix {
        out.push_str(p);
        out.push(':');
    }
    out.push_str(&el.name.local);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Document;

    fn round_trip(input: &str) -> Document {
        let doc = Document::parse(input).unwrap();
        let written = write_document(&doc);
        Document::parse(&written).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{written}"))
    }

    #[test]
    fn empty_element_self_closes() {
        let doc = Document::parse("<a></a>").unwrap();
        assert_eq!(write_element(&doc.root), "<a/>");
    }

    #[test]
    fn attributes_and_text_round_trip() {
        let doc = round_trip(r#"<a k="v &amp; w"><b>x &lt; y</b></a>"#);
        assert_eq!(doc.root.attr("k"), Some("v & w"));
        assert_eq!(doc.root.find_child(None, "b").unwrap().text(), "x < y");
    }

    #[test]
    fn namespace_declarations_round_trip() {
        let original = Document::parse(r#"<s:a xmlns:s="urn:s"><s:b/></s:a>"#).unwrap();
        let reparsed = round_trip(r#"<s:a xmlns:s="urn:s"><s:b/></s:a>"#);
        assert_eq!(original, reparsed);
    }

    #[test]
    fn cdata_preserved() {
        let doc = round_trip("<a><![CDATA[<not-xml> & raw]]></a>");
        assert_eq!(doc.root.text(), "<not-xml> & raw");
    }

    #[test]
    fn cdata_containing_terminator_degrades_to_text() {
        let mut el = crate::Element::new("a");
        el.children.push(Node::CData("x]]>y".into()));
        let written = write_element(&el);
        let doc = Document::parse(&written).unwrap();
        assert_eq!(doc.root.text(), "x]]>y");
    }

    #[test]
    fn comments_preserved() {
        let doc = round_trip("<a><!-- note --></a>");
        assert!(matches!(&doc.root.children[0], Node::Comment(c) if c == " note "));
    }

    #[test]
    fn attribute_value_quotes_escaped() {
        let el = crate::Element::new("a").with_attr("k", "say \"hi\"");
        let written = write_element(&el);
        assert!(written.contains("&quot;"));
        let doc = Document::parse(&written).unwrap();
        assert_eq!(doc.root.attr("k"), Some("say \"hi\""));
    }

    #[test]
    fn document_has_declaration() {
        let doc = Document::parse("<a/>").unwrap();
        assert!(write_document(&doc).starts_with("<?xml version=\"1.0\""));
    }

    #[test]
    fn deep_nesting_round_trips() {
        let mut src = String::new();
        for i in 0..50 {
            src.push_str(&format!("<n{i}>"));
        }
        src.push_str("leaf");
        for i in (0..50).rev() {
            src.push_str(&format!("</n{i}>"));
        }
        let doc = round_trip(&src);
        let mut cur = &doc.root;
        for _ in 0..49 {
            cur = cur.child_elements().next().unwrap();
        }
        assert_eq!(cur.text(), "leaf");
    }
}
