//! Interned QName atoms with a pointer-compare fast path.
//!
//! The dispatcher looks at the same handful of names on every envelope:
//! the SOAP envelope vocabulary and the WSA header locals. Interning
//! maps each distinct name to a single `&'static str`, so equality on
//! the hot path is a pointer compare instead of a byte compare, and a
//! scanned header name resolves to its routing slot with one table
//! lookup.
//!
//! [`Atom`]s are only constructible through this module ([`seeded`] /
//! [`intern`]), which is what makes pointer equality sound: two atoms
//! with equal contents always share one allocation. (Relying on literal
//! promotion instead would not — the compiler may or may not dedup a
//! repeated `"To"` across mention sites.)
//!
//! The seeded vocabulary lives in a static sorted table read without
//! any locking. Names outside the vocabulary fall back to a mutex'd
//! leaking side table — a cold path that only runs for non-SOAP/WSA
//! names an application interns explicitly.

// wsd-lint: allow(std-sync-primitive): wsd-xml is dependency-free by design; this Mutex only guards the cold dynamic-intern path (seeded lookups are lock-free)
use std::sync::Mutex;

/// An interned name: equality is pointer equality.
#[derive(Clone, Copy, Debug, Eq)]
pub struct Atom(&'static str);

impl Atom {
    /// The interned string.
    #[inline]
    pub fn as_str(self) -> &'static str {
        self.0
    }
}

impl PartialEq for Atom {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.0, other.0)
    }
}

impl std::hash::Hash for Atom {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (self.0.as_ptr() as usize).hash(state);
    }
}

impl std::ops::Deref for Atom {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        self.0
    }
}

impl std::fmt::Display for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

/// The pre-seeded vocabulary: SOAP 1.1/1.2 envelope locals, WSA header
/// locals, and the namespace URIs the dispatcher matches on. MUST stay
/// sorted (binary-searched); `seeds_are_sorted_and_unique` enforces it.
static SEEDS: [&str; 28] = [
    "Action",
    "Address",
    "Body",
    "Code",
    "Envelope",
    "Fault",
    "FaultTo",
    "From",
    "Header",
    "MessageID",
    "Reason",
    "ReferenceParameters",
    "ReferenceProperties",
    "RelatesTo",
    "RelationshipType",
    "ReplyTo",
    "Role",
    "Subcode",
    "Text",
    "To",
    "Value",
    "faultactor",
    "faultcode",
    "faultstring",
    "http://schemas.xmlsoap.org/soap/envelope/",
    "http://schemas.xmlsoap.org/ws/2004/08/addressing",
    "http://www.w3.org/2003/05/soap-envelope",
    "wsa",
];

/// Looks up a name in the seeded vocabulary. Lock-free; this is the
/// hot-path entry point. Returns `None` for names outside the seeded
/// set (callers on the fast path treat that as "not a header we route
/// on" and fall back).
#[inline]
pub fn seeded(name: &str) -> Option<Atom> {
    SEEDS
        .binary_search(&name)
        .ok()
        .map(|i| Atom(SEEDS[i]))
}

/// Dynamic side table for non-seeded names. Interned strings are leaked
/// (each distinct name once); the table is only consulted after
/// [`seeded`] misses, so steady-state dispatch never takes this lock.
static DYNAMIC: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Interns an arbitrary name, seeding from the static vocabulary when
/// possible. Cold path for unknown names: takes a mutex and leaks the
/// first occurrence.
pub fn intern(name: &str) -> Atom {
    if let Some(atom) = seeded(name) {
        return atom;
    }
    let mut table = DYNAMIC.lock().expect("intern table poisoned");
    if let Some(&existing) = table.iter().find(|s| **s == name) {
        return Atom(existing);
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    table.push(leaked);
    Atom(leaked)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_sorted_and_unique() {
        for w in SEEDS.windows(2) {
            assert!(w[0] < w[1], "SEEDS out of order near {:?}", w);
        }
    }

    #[test]
    fn seeded_hits_share_a_pointer() {
        let a = seeded("To").unwrap();
        let b = seeded("To").unwrap();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        assert_eq!(a.as_str(), "To");
    }

    #[test]
    fn seeded_misses_unknown_names() {
        assert!(seeded("NotAHeader").is_none());
        assert!(seeded("to").is_none()); // case-sensitive, like XML
    }

    #[test]
    fn distinct_atoms_compare_unequal() {
        let to = seeded("To").unwrap();
        let from = seeded("From").unwrap();
        assert_ne!(to, from);
    }

    #[test]
    fn dynamic_interning_is_stable() {
        let a = intern("x-custom-header");
        let b = intern("x-custom-header");
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        // Seeded names never hit the dynamic table.
        assert_eq!(intern("To"), seeded("To").unwrap());
    }

    #[test]
    fn atom_derefs_like_a_str() {
        let action = intern("Action");
        assert_eq!(&*action, "Action");
        assert_eq!(action.len(), 6);
        assert_eq!(action.to_string(), "Action");
    }
}
