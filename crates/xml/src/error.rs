//! Parse-error type with source position.

/// What went wrong while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A character that cannot start or continue the current construct.
    UnexpectedChar(char),
    /// `</b>` closing an element opened as `<a>`.
    MismatchedTag {
        /// Name on the open tag.
        expected: String,
        /// Name on the close tag.
        found: String,
    },
    /// Same attribute name appears twice on one element.
    DuplicateAttribute(String),
    /// A prefix with no in-scope `xmlns:prefix` declaration.
    UnboundPrefix(String),
    /// `&name;` where `name` is not one of the five predefined entities.
    UnknownEntity(String),
    /// A malformed `&#...;` character reference.
    BadCharRef(String),
    /// DTDs (`<!DOCTYPE ...>`) are rejected by design (XXE / billion-laughs
    /// hardening for a network-facing service).
    DtdRejected,
    /// Content found after the root element closed, or no root at all.
    BadDocumentStructure(&'static str),
    /// An invalid XML name.
    BadName(String),
    /// Anything else, with a short description.
    Other(&'static str),
}

/// An XML parse error with 1-based line/column of the offending byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Error category and payload.
    pub kind: XmlErrorKind,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in characters).
    pub column: u32,
}

impl XmlError {
    pub(crate) fn new(kind: XmlErrorKind, line: u32, column: u32) -> Self {
        XmlError { kind, line, column }
    }
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: ", self.line, self.column)?;
        match &self.kind {
            XmlErrorKind::UnexpectedEof => f.write_str("unexpected end of input"),
            XmlErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            XmlErrorKind::MismatchedTag { expected, found } => {
                write!(f, "mismatched tag: expected </{expected}>, found </{found}>")
            }
            XmlErrorKind::DuplicateAttribute(a) => write!(f, "duplicate attribute {a:?}"),
            XmlErrorKind::UnboundPrefix(p) => write!(f, "unbound namespace prefix {p:?}"),
            XmlErrorKind::UnknownEntity(e) => write!(f, "unknown entity &{e};"),
            XmlErrorKind::BadCharRef(r) => write!(f, "bad character reference &#{r};"),
            XmlErrorKind::DtdRejected => f.write_str("DTDs are not supported"),
            XmlErrorKind::BadDocumentStructure(m) => write!(f, "bad document structure: {m}"),
            XmlErrorKind::BadName(n) => write!(f, "invalid XML name {n:?}"),
            XmlErrorKind::Other(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for XmlError {}
