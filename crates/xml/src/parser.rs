//! Streaming pull parser.
//!
//! [`PullParser`] walks a UTF-8 document and yields raw [`Event`]s. It
//! validates token-level syntax (names, attribute quoting, entity
//! references) but not document structure — tag matching and
//! single-root-ness are enforced by [`crate::tree::Document::parse`], which
//! is what the protocol stack uses.

use crate::error::{XmlError, XmlErrorKind};
use crate::escape::{char_ref, predefined_entity};
use crate::name::{is_name_char, is_name_start, is_valid_raw_name};

/// An opening tag with its attributes in document order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartTag {
    /// Raw element name as written (possibly `prefix:local`).
    pub name: String,
    /// `(raw name, decoded value)` pairs in document order.
    pub attributes: Vec<(String, String)>,
    /// Whether the tag ended with `/>`.
    pub self_closing: bool,
}

/// A raw parse event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<name attr="v">` or `<name/>`.
    StartElement(StartTag),
    /// `</name>` (never emitted for self-closing tags).
    EndElement(String),
    /// Character data with entities decoded. Adjacent runs are merged.
    Text(String),
    /// `<![CDATA[...]]>` content, verbatim.
    CData(String),
    /// `<!--...-->` content, verbatim.
    Comment(String),
    /// `<?target data?>`. The XML declaration arrives as target `xml`.
    Pi {
        /// PI target.
        target: String,
        /// Everything between the target and `?>`, trimmed of one leading
        /// space.
        data: String,
    },
    /// End of input.
    Eof,
}

/// A pull parser over a complete in-memory document.
pub struct PullParser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> PullParser<'a> {
    /// Creates a parser at the start of `input`.
    pub fn new(input: &'a str) -> Self {
        PullParser { input, pos: 0 }
    }

    /// Byte offset of the next unread character.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.bump();
        }
    }

    fn error(&self, kind: XmlErrorKind) -> XmlError {
        self.error_at(self.pos, kind)
    }

    fn error_at(&self, pos: usize, kind: XmlErrorKind) -> XmlError {
        let prefix = &self.input[..pos.min(self.input.len())];
        let line = prefix.bytes().filter(|&b| b == b'\n').count() as u32 + 1;
        let column = prefix
            .rsplit_once('\n')
            .map(|(_, tail)| tail)
            .unwrap_or(prefix)
            .chars()
            .count() as u32
            + 1;
        XmlError::new(kind, line, column)
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start(c) => {
                self.bump();
            }
            Some(c) => return Err(self.error(XmlErrorKind::UnexpectedChar(c))),
            None => return Err(self.error(XmlErrorKind::UnexpectedEof)),
        }
        while matches!(self.peek(), Some(c) if is_name_char(c) || c == ':') {
            self.bump();
        }
        let raw = &self.input[start..self.pos];
        if !is_valid_raw_name(raw) {
            return Err(self.error_at(start, XmlErrorKind::BadName(raw.to_string())));
        }
        Ok(raw.to_string())
    }

    /// Decodes `&...;` starting just after the `&`.
    fn read_entity(&mut self) -> Result<char, XmlError> {
        let start = self.pos;
        // Entities are short; cap the scan so broken input fails fast.
        let window = &self.rest().as_bytes()[..self.rest().len().min(13)];
        let semi = match crate::swar::find_byte(window, b';') {
            Some(i) if i <= 12 => i,
            _ => {
                return Err(self.error_at(
                    start,
                    XmlErrorKind::UnknownEntity(
                        self.rest().chars().take(8).collect::<String>(),
                    ),
                ))
            }
        };
        let body = &self.rest()[..semi];
        let decoded = if let Some(num) = body.strip_prefix('#') {
            char_ref(num)
                .ok_or_else(|| self.error_at(start, XmlErrorKind::BadCharRef(num.to_string())))?
        } else {
            predefined_entity(body)
                .ok_or_else(|| self.error_at(start, XmlErrorKind::UnknownEntity(body.to_string())))?
        };
        self.pos += semi + 1;
        Ok(decoded)
    }

    fn read_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.bump() {
            Some(q @ ('"' | '\'')) => q,
            Some(c) => return Err(self.error(XmlErrorKind::UnexpectedChar(c))),
            None => return Err(self.error(XmlErrorKind::UnexpectedEof)),
        };
        // Bulk-scan to the next quote/entity/`<`, copying plain runs in one
        // step. Stops land on the same bytes the per-char loop decided on,
        // so error positions are unchanged.
        let mut out = String::new();
        loop {
            let rest = self.rest();
            match crate::swar::find_byte3(rest.as_bytes(), quote as u8, b'&', b'<') {
                None => {
                    self.pos = self.input.len();
                    return Err(self.error(XmlErrorKind::UnexpectedEof));
                }
                Some(i) => {
                    out.push_str(&rest[..i]);
                    self.pos += i + 1;
                    match rest.as_bytes()[i] {
                        b'&' => out.push(self.read_entity()?),
                        b'<' => return Err(self.error(XmlErrorKind::UnexpectedChar('<'))),
                        _ => return Ok(out),
                    }
                }
            }
        }
    }

    fn read_until(&mut self, terminator: &str, what: &'static str) -> Result<String, XmlError> {
        match crate::swar::find_seq(self.rest().as_bytes(), terminator.as_bytes()) {
            Some(i) => {
                let content = self.rest()[..i].to_string();
                self.pos += i + terminator.len();
                Ok(content)
            }
            None => {
                let _ = what;
                self.pos = self.input.len();
                Err(self.error(XmlErrorKind::UnexpectedEof))
            }
        }
    }

    fn read_start_tag(&mut self) -> Result<StartTag, XmlError> {
        let name = self.read_name()?;
        let mut attributes: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some('>') => {
                    self.bump();
                    return Ok(StartTag {
                        name,
                        attributes,
                        self_closing: false,
                    });
                }
                Some('/') => {
                    self.bump();
                    if !self.eat(">") {
                        return Err(match self.peek() {
                            Some(c) => self.error(XmlErrorKind::UnexpectedChar(c)),
                            None => self.error(XmlErrorKind::UnexpectedEof),
                        });
                    }
                    return Ok(StartTag {
                        name,
                        attributes,
                        self_closing: true,
                    });
                }
                Some(c) if is_name_start(c) => {
                    let attr_start = self.pos;
                    let aname = self.read_name()?;
                    self.skip_ws();
                    if !self.eat("=") {
                        return Err(match self.peek() {
                            Some(c) => self.error(XmlErrorKind::UnexpectedChar(c)),
                            None => self.error(XmlErrorKind::UnexpectedEof),
                        });
                    }
                    self.skip_ws();
                    let value = self.read_attr_value()?;
                    if attributes.iter().any(|(n, _)| n == &aname) {
                        return Err(
                            self.error_at(attr_start, XmlErrorKind::DuplicateAttribute(aname))
                        );
                    }
                    attributes.push((aname, value));
                }
                Some(c) => return Err(self.error(XmlErrorKind::UnexpectedChar(c))),
                None => return Err(self.error(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    fn read_text(&mut self) -> Result<String, XmlError> {
        // Bulk-scan to the next markup/entity byte; plain character data
        // is copied in one `push_str` per run instead of per char.
        let mut out = String::new();
        loop {
            let rest = self.rest();
            match crate::swar::find_byte2(rest.as_bytes(), b'<', b'&') {
                None => {
                    out.push_str(rest);
                    self.pos = self.input.len();
                    return Ok(out);
                }
                Some(i) => {
                    out.push_str(&rest[..i]);
                    self.pos += i;
                    if rest.as_bytes()[i] == b'<' {
                        return Ok(out);
                    }
                    self.pos += 1; // past the '&'
                    out.push(self.read_entity()?);
                }
            }
        }
    }

    /// Returns the next event, or [`Event::Eof`] at end of input.
    pub fn next_event(&mut self) -> Result<Event, XmlError> {
        if self.pos >= self.input.len() {
            return Ok(Event::Eof);
        }
        if self.eat("<") {
            if self.eat("!--") {
                let body = self.read_until("-->", "comment")?;
                return Ok(Event::Comment(body));
            }
            if self.eat("![CDATA[") {
                let body = self.read_until("]]>", "CDATA section")?;
                return Ok(Event::CData(body));
            }
            if self.rest().starts_with('!') {
                return Err(self.error_at(self.pos - 1, XmlErrorKind::DtdRejected));
            }
            if self.eat("?") {
                let target = self.read_name()?;
                let data = self.read_until("?>", "processing instruction")?;
                return Ok(Event::Pi {
                    target,
                    data: data.strip_prefix(' ').unwrap_or(&data).to_string(),
                });
            }
            if self.eat("/") {
                let name = self.read_name()?;
                self.skip_ws();
                if !self.eat(">") {
                    return Err(match self.peek() {
                        Some(c) => self.error(XmlErrorKind::UnexpectedChar(c)),
                        None => self.error(XmlErrorKind::UnexpectedEof),
                    });
                }
                return Ok(Event::EndElement(name));
            }
            return Ok(Event::StartElement(self.read_start_tag()?));
        }
        Ok(Event::Text(self.read_text()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Result<Vec<Event>, XmlError> {
        let mut p = PullParser::new(input);
        let mut out = Vec::new();
        loop {
            match p.next_event()? {
                Event::Eof => return Ok(out),
                e => out.push(e),
            }
        }
    }

    #[test]
    fn simple_element() {
        let ev = events("<a>hi</a>").unwrap();
        assert_eq!(
            ev,
            vec![
                Event::StartElement(StartTag {
                    name: "a".into(),
                    attributes: vec![],
                    self_closing: false
                }),
                Event::Text("hi".into()),
                Event::EndElement("a".into()),
            ]
        );
    }

    #[test]
    fn self_closing_with_attrs() {
        let ev = events(r#"<a x="1" y='2'/>"#).unwrap();
        match &ev[0] {
            Event::StartElement(t) => {
                assert!(t.self_closing);
                assert_eq!(
                    t.attributes,
                    vec![("x".to_string(), "1".to_string()), ("y".into(), "2".into())]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn entity_decoding_in_text_and_attrs() {
        let ev = events(r#"<a v="&lt;&quot;&#65;">&amp;&gt;&#x41;</a>"#).unwrap();
        match &ev[0] {
            Event::StartElement(t) => assert_eq!(t.attributes[0].1, "<\"A"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(ev[1], Event::Text("&>A".into()));
    }

    #[test]
    fn unknown_entity_is_error() {
        let err = events("<a>&nbsp;</a>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::UnknownEntity(ref e) if e == "nbsp"));
    }

    #[test]
    fn bad_char_ref_is_error() {
        let err = events("<a>&#xZZ;</a>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::BadCharRef(_)));
    }

    #[test]
    fn comment_and_cdata_and_pi() {
        let ev = events("<?xml version=\"1.0\"?><a><!-- c --><![CDATA[<raw>]]></a>").unwrap();
        assert_eq!(
            ev[0],
            Event::Pi {
                target: "xml".into(),
                data: "version=\"1.0\"".into()
            }
        );
        assert_eq!(ev[2], Event::Comment(" c ".into()));
        assert_eq!(ev[3], Event::CData("<raw>".into()));
    }

    #[test]
    fn doctype_rejected() {
        let err = events("<!DOCTYPE html><a/>").unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::DtdRejected);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = events(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::DuplicateAttribute(ref a) if a == "x"));
    }

    #[test]
    fn mismatched_quote_is_eof_error() {
        let err = events(r#"<a x="1/>"#).unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::UnexpectedEof);
    }

    #[test]
    fn lt_in_attr_value_rejected() {
        let err = events(r#"<a x="<"/>"#).unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::UnexpectedChar('<'));
    }

    #[test]
    fn error_positions_are_one_based() {
        let err = events("<a>\n  <b x='1' x='2'/>\n</a>").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column > 1);
    }

    #[test]
    fn bad_names_rejected() {
        assert!(events("<1a/>").is_err());
        assert!(events("<a:b:c/>").is_err());
    }

    #[test]
    fn unterminated_comment_is_eof() {
        let err = events("<a><!-- never closed").unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::UnexpectedEof);
    }

    #[test]
    fn whitespace_in_end_tag_ok() {
        let ev = events("<a></a >").unwrap();
        assert_eq!(ev[1], Event::EndElement("a".into()));
    }

    #[test]
    fn utf8_text_survives() {
        let ev = events("<a>héllo — 世界</a>").unwrap();
        assert_eq!(ev[1], Event::Text("héllo — 世界".into()));
    }
}
