//! Qualified names (`prefix:local`) and name validity checks.

/// A qualified XML name as written in the document: optional prefix plus
/// local part.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QName {
    /// Namespace prefix, if the name was written `prefix:local`.
    pub prefix: Option<String>,
    /// Local part of the name.
    pub local: String,
}

impl QName {
    /// A name with no prefix.
    pub fn local(local: impl Into<String>) -> Self {
        QName {
            prefix: None,
            local: local.into(),
        }
    }

    /// A `prefix:local` name.
    pub fn prefixed(prefix: impl Into<String>, local: impl Into<String>) -> Self {
        QName {
            prefix: Some(prefix.into()),
            local: local.into(),
        }
    }

    /// Splits a raw `prefix:local` string. A name with no colon has no
    /// prefix. Returns `None` for empty parts or multiple colons.
    pub fn parse(raw: &str) -> Option<Self> {
        let mut it = raw.split(':');
        match (it.next(), it.next(), it.next()) {
            (Some(local), None, _) if !local.is_empty() => Some(QName::local(local)),
            (Some(p), Some(l), None) if !p.is_empty() && !l.is_empty() => {
                Some(QName::prefixed(p, l))
            }
            _ => None,
        }
    }

    /// The name as written: `prefix:local` or `local`.
    pub fn as_written(&self) -> String {
        match &self.prefix {
            Some(p) => format!("{p}:{}", self.local),
            None => self.local.clone(),
        }
    }
}

impl std::fmt::Display for QName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(p) = &self.prefix {
            write!(f, "{p}:")?;
        }
        f.write_str(&self.local)
    }
}

/// Whether `c` may start an XML name (namespace-aware subset: no colon).
pub fn is_name_start(c: char) -> bool {
    c == '_' || c.is_ascii_alphabetic() || (!c.is_ascii() && c.is_alphabetic())
}

/// Whether `c` may continue an XML name (no colon; colons are handled by
/// [`QName::parse`]).
pub fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || matches!(c, '-' | '.')
}

/// Validates a raw (possibly prefixed) name.
pub fn is_valid_raw_name(raw: &str) -> bool {
    let parts: Vec<&str> = raw.split(':').collect();
    if parts.len() > 2 {
        return false;
    }
    parts.iter().all(|p| {
        let mut chars = p.chars();
        match chars.next() {
            Some(c) if is_name_start(c) => chars.all(is_name_char),
            _ => false,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_local_and_prefixed() {
        assert_eq!(QName::parse("foo"), Some(QName::local("foo")));
        assert_eq!(QName::parse("s:Body"), Some(QName::prefixed("s", "Body")));
    }

    #[test]
    fn parse_rejects_bad_shapes() {
        assert_eq!(QName::parse(""), None);
        assert_eq!(QName::parse(":x"), None);
        assert_eq!(QName::parse("x:"), None);
        assert_eq!(QName::parse("a:b:c"), None);
    }

    #[test]
    fn as_written_round_trips() {
        assert_eq!(QName::prefixed("s", "Body").as_written(), "s:Body");
        assert_eq!(QName::local("Body").as_written(), "Body");
    }

    #[test]
    fn display_matches_as_written() {
        assert_eq!(QName::prefixed("a", "b").to_string(), "a:b");
    }

    #[test]
    fn name_validity() {
        assert!(is_valid_raw_name("Envelope"));
        assert!(is_valid_raw_name("soap:Envelope"));
        assert!(is_valid_raw_name("_x-1.2"));
        assert!(is_valid_raw_name("élément"));
        assert!(!is_valid_raw_name("1abc"));
        assert!(!is_valid_raw_name("-abc"));
        assert!(!is_valid_raw_name("a b"));
        assert!(!is_valid_raw_name(""));
        assert!(!is_valid_raw_name("a:b:c"));
        assert!(!is_valid_raw_name(":b"));
    }
}
