//! From-scratch XML 1.0 (+ Namespaces) support for the WS-Dispatcher.
//!
//! The paper's XSUL library does its SOAP envelope handling with a
//! hand-rolled pull parser (XPP); Rust's SOAP ecosystem is similarly
//! sparse, so this crate provides exactly what the protocol stack needs:
//!
//! * a streaming [`PullParser`] producing [`Event`]s,
//! * an owned element tree ([`Document`], [`Element`], [`Node`]) with
//!   namespaces resolved at parse time,
//! * a [`writer`] that serializes a tree back to text,
//! * correct escaping of text and attribute values.
//!
//! Deliberate restrictions (documented, safe-by-default for a network
//! service): no DTDs / external entities (rejecting them closes the classic
//! XML-bomb and XXE holes), UTF-8 only.
//!
//! # Example
//!
//! ```
//! use wsd_xml::{parse, Element};
//!
//! let doc = parse("<m:echo xmlns:m='urn:test'><text>hi</text></m:echo>").unwrap();
//! assert_eq!(doc.root.name.local, "echo");
//! assert_eq!(doc.root.namespace.as_deref(), Some("urn:test"));
//! let text = doc.root.find_child(None, "text").unwrap();
//! assert_eq!(text.text(), "hi");
//! assert!(wsd_xml::write(&doc).contains("urn:test"));
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod escape;
pub mod intern;
pub mod name;
pub mod parser;
pub mod splice;
pub mod swar;
pub mod tree;
pub mod writer;

pub use error::{XmlError, XmlErrorKind};
pub use intern::{intern, Atom};
pub use name::QName;
pub use parser::{Event, PullParser, StartTag};
pub use splice::{skip_element, unescape, verify_element};
pub use tree::{Attribute, Document, Element, Node};
pub use writer::write_element_into;

/// Parses a complete UTF-8 document into a tree.
pub fn parse(input: &str) -> Result<Document, XmlError> {
    tree::Document::parse(input)
}

/// Serializes a document, including the XML declaration.
pub fn write(doc: &Document) -> String {
    writer::write_document(doc)
}

/// Serializes a single element (no XML declaration).
pub fn write_element(el: &Element) -> String {
    writer::write_element(el)
}
