//! Escaping and unescaping of character data and attribute values.

use std::borrow::Cow;

/// Escapes character data (element text): `&`, `<`, `>`.
///
/// `>` is only mandatory in the `]]>` sequence but escaping it always is
/// harmless and round-trips cleanly.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_with(s, false)
}

/// Escapes an attribute value for double-quoted output: `&`, `<`, `>`,
/// `"`, plus tab/CR/LF (so whitespace survives attribute-value
/// normalization on re-parse).
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape_with(s, true)
}

fn needs_escape(c: char, attr: bool) -> bool {
    matches!(c, '&' | '<' | '>') || (attr && matches!(c, '"' | '\t' | '\n' | '\r'))
}

fn escape_with(s: &str, attr: bool) -> Cow<'_, str> {
    let first = match s.char_indices().find(|&(_, c)| needs_escape(c, attr)) {
        None => return Cow::Borrowed(s),
        Some((i, _)) => i,
    };
    let mut out = String::with_capacity(s.len() + 8);
    out.push_str(&s[..first]);
    for c in s[first..].chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            '\t' if attr => out.push_str("&#9;"),
            '\n' if attr => out.push_str("&#10;"),
            '\r' if attr => out.push_str("&#13;"),
            c => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Escapes character data directly into an existing buffer — the
/// zero-intermediate-allocation form of [`escape_text`] for raw byte
/// emitters. Produces identical bytes.
pub fn push_escaped_text(s: &str, out: &mut String) {
    let mut rest = s;
    while let Some(i) = crate::swar::find_byte3(rest.as_bytes(), b'&', b'<', b'>') {
        out.push_str(&rest[..i]);
        match rest.as_bytes()[i] {
            b'&' => out.push_str("&amp;"),
            b'<' => out.push_str("&lt;"),
            _ => out.push_str("&gt;"),
        }
        rest = &rest[i + 1..];
    }
    out.push_str(rest);
}

/// Resolves one predefined entity name (`lt`, `gt`, `amp`, `apos`,
/// `quot`) to its character.
pub fn predefined_entity(name: &str) -> Option<char> {
    match name {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "apos" => Some('\''),
        "quot" => Some('"'),
        _ => None,
    }
}

/// Resolves a character reference body (the part between `&#` and `;`),
/// e.g. `x41` or `65`.
pub fn char_ref(body: &str) -> Option<char> {
    let code = if let Some(hex) = body.strip_prefix('x').or_else(|| body.strip_prefix('X')) {
        u32::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<u32>().ok()?
    };
    let c = char::from_u32(code)?;
    // XML 1.0 Char production: forbid most control characters.
    if matches!(c, '\u{9}' | '\u{A}' | '\u{D}') || c >= '\u{20}' {
        Some(c)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_is_borrowed() {
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
    }

    #[test]
    fn escapes_markup_characters() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }

    #[test]
    fn attr_escapes_quotes_and_whitespace() {
        assert_eq!(escape_attr("a\"b\tc\nd\re"), "a&quot;b&#9;c&#10;d&#13;e");
    }

    #[test]
    fn text_does_not_escape_quotes() {
        assert_eq!(escape_text("a\"b'c"), "a\"b'c");
    }

    #[test]
    fn push_escaped_text_matches_escape_text() {
        for s in ["plain", "", "a<b&c>d", "&&&", "tail>", "héllo — 世界 <&>"] {
            let mut out = String::from("prefix:");
            push_escaped_text(s, &mut out);
            assert_eq!(out, format!("prefix:{}", escape_text(s)));
        }
    }

    #[test]
    fn predefined_entities_resolve() {
        assert_eq!(predefined_entity("lt"), Some('<'));
        assert_eq!(predefined_entity("gt"), Some('>'));
        assert_eq!(predefined_entity("amp"), Some('&'));
        assert_eq!(predefined_entity("apos"), Some('\''));
        assert_eq!(predefined_entity("quot"), Some('"'));
        assert_eq!(predefined_entity("nbsp"), None);
    }

    #[test]
    fn char_refs_decimal_and_hex() {
        assert_eq!(char_ref("65"), Some('A'));
        assert_eq!(char_ref("x41"), Some('A'));
        assert_eq!(char_ref("X41"), Some('A'));
        assert_eq!(char_ref("x1F600"), Some('😀'));
    }

    #[test]
    fn char_refs_reject_controls_and_garbage() {
        assert_eq!(char_ref("1"), None); // U+0001 forbidden
        assert_eq!(char_ref("x0"), None);
        assert_eq!(char_ref(""), None);
        assert_eq!(char_ref("xzz"), None);
        assert_eq!(char_ref("x110000"), None); // beyond Unicode
        assert_eq!(char_ref("9"), Some('\t')); // tab allowed
    }
}
