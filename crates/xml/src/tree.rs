//! Owned element tree with namespaces resolved at parse time.

use std::collections::HashMap;

use crate::error::{XmlError, XmlErrorKind};
use crate::name::QName;
use crate::parser::{Event, PullParser, StartTag};

/// The `xml` prefix is implicitly bound to this URI.
pub const XML_NS: &str = "http://www.w3.org/XML/1998/namespace";

/// An attribute: name as written, resolved namespace (only for prefixed
/// attributes, per Namespaces in XML), and decoded value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name as written.
    pub name: QName,
    /// Resolved namespace URI (`None` for unprefixed attributes).
    pub namespace: Option<String>,
    /// Decoded attribute value.
    pub value: String,
}

/// A child of an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Character data (entities already decoded).
    Text(String),
    /// A CDATA section's verbatim content.
    CData(String),
    /// A comment's verbatim content.
    Comment(String),
}

impl Node {
    /// The element inside, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }
}

/// An element: written name, resolved namespace, attributes (including any
/// `xmlns` declarations, so serialization is faithful) and children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Name as written (prefix preserved).
    pub name: QName,
    /// Resolved namespace URI of the element, if any.
    pub namespace: Option<String>,
    /// Attributes in document order, `xmlns`/`xmlns:*` included.
    pub attributes: Vec<Attribute>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// A namespace-less element.
    pub fn new(local: impl Into<String>) -> Self {
        Element {
            name: QName::local(local),
            namespace: None,
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// An element in namespace `uri`, written with the given prefix.
    ///
    /// This only sets the resolved namespace; emitting a matching
    /// `xmlns[:prefix]` declaration is the builder's job (see
    /// [`declare_namespace`](Self::declare_namespace)), exactly as in
    /// hand-written SOAP.
    pub fn new_ns(
        prefix: Option<&str>,
        local: impl Into<String>,
        uri: impl Into<String>,
    ) -> Self {
        Element {
            name: match prefix {
                Some(p) => QName::prefixed(p, local),
                None => QName::local(local),
            },
            namespace: Some(uri.into()),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds an `xmlns` (for `prefix = None`) or `xmlns:prefix` declaration
    /// attribute. Returns `self` for chaining.
    pub fn declare_namespace(mut self, prefix: Option<&str>, uri: impl Into<String>) -> Self {
        let name = match prefix {
            Some(p) => QName::prefixed("xmlns", p),
            None => QName::local("xmlns"),
        };
        self.attributes.push(Attribute {
            name,
            namespace: None,
            value: uri.into(),
        });
        self
    }

    /// Whether this element has the given resolved namespace and local name.
    pub fn is(&self, namespace: Option<&str>, local: &str) -> bool {
        self.namespace.as_deref() == namespace && self.name.local == local
    }

    /// Child elements in document order.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// First child element matching `(namespace, local)`.
    pub fn find_child(&self, namespace: Option<&str>, local: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.is(namespace, local))
    }

    /// Mutable variant of [`find_child`](Self::find_child).
    pub fn find_child_mut(&mut self, namespace: Option<&str>, local: &str) -> Option<&mut Element> {
        self.children.iter_mut().find_map(|n| match n {
            Node::Element(e) if e.is(namespace, local) => Some(e),
            _ => None,
        })
    }

    /// All child elements matching `(namespace, local)`.
    pub fn find_children<'a>(
        &'a self,
        namespace: Option<&'a str>,
        local: &'a str,
    ) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.is(namespace, local))
    }

    /// Concatenated direct text and CDATA content.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            match c {
                Node::Text(t) | Node::CData(t) => out.push_str(t),
                _ => {}
            }
        }
        out
    }

    /// Value of the first attribute whose *local* name matches (any or no
    /// prefix), skipping `xmlns` declarations.
    pub fn attr(&self, local: &str) -> Option<&str> {
        self.attributes
            .iter()
            .filter(|a| !a.is_xmlns())
            .find(|a| a.name.local == local)
            .map(|a| a.value.as_str())
    }

    /// Value of the attribute with the given resolved namespace and local
    /// name.
    pub fn attr_ns(&self, namespace: Option<&str>, local: &str) -> Option<&str> {
        self.attributes
            .iter()
            .filter(|a| !a.is_xmlns())
            .find(|a| a.namespace.as_deref() == namespace && a.name.local == local)
            .map(|a| a.value.as_str())
    }

    /// Sets (or replaces) an unprefixed attribute. Returns `self`.
    pub fn with_attr(mut self, local: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(local, value);
        self
    }

    /// Sets (or replaces) an unprefixed attribute.
    pub fn set_attr(&mut self, local: impl Into<String>, value: impl Into<String>) {
        let local = local.into();
        let value = value.into();
        if let Some(a) = self
            .attributes
            .iter_mut()
            .find(|a| a.name.prefix.is_none() && a.name.local == local)
        {
            a.value = value;
        } else {
            self.attributes.push(Attribute {
                name: QName::local(local),
                namespace: None,
                value,
            });
        }
    }

    /// Appends a prefixed attribute with an explicit resolved namespace.
    pub fn with_attr_ns(
        mut self,
        prefix: &str,
        local: impl Into<String>,
        namespace: impl Into<String>,
        value: impl Into<String>,
    ) -> Self {
        self.attributes.push(Attribute {
            name: QName::prefixed(prefix, local),
            namespace: Some(namespace.into()),
            value: value.into(),
        });
        self
    }

    /// Appends a child element. Returns `self` for chaining.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Appends a child element.
    pub fn add_child(&mut self, child: Element) -> &mut Element {
        self.children.push(Node::Element(child));
        match self.children.last_mut() {
            Some(Node::Element(e)) => e,
            _ => unreachable!(),
        }
    }

    /// Appends text content. Returns `self` for chaining.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Removes child elements matching `(namespace, local)`, returning how
    /// many were removed.
    pub fn remove_children(&mut self, namespace: Option<&str>, local: &str) -> usize {
        let before = self.children.len();
        self.children.retain(|n| match n {
            Node::Element(e) => !e.is(namespace, local),
            _ => true,
        });
        before - self.children.len()
    }

    /// Merges adjacent text nodes and drops empty ones, recursively.
    /// Comments are preserved. Useful before structural comparison.
    pub fn normalize(&mut self) {
        let old = std::mem::take(&mut self.children);
        for mut node in old {
            match &mut node {
                Node::Text(t) => {
                    if t.is_empty() {
                        continue;
                    }
                    if let Some(Node::Text(prev)) = self.children.last_mut() {
                        prev.push_str(t);
                        continue;
                    }
                }
                Node::Element(e) => e.normalize(),
                _ => {}
            }
            self.children.push(node);
        }
    }
}

impl Attribute {
    /// Whether this attribute is an `xmlns` or `xmlns:*` declaration.
    pub fn is_xmlns(&self) -> bool {
        self.name.prefix.as_deref() == Some("xmlns")
            || (self.name.prefix.is_none() && self.name.local == "xmlns")
    }
}

/// A parsed document: exactly one root element. The XML declaration and
/// top-level comments/PIs are not preserved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// The root element.
    pub root: Element,
}

impl Document {
    /// Wraps an element as a document root.
    pub fn with_root(root: Element) -> Self {
        Document { root }
    }

    /// Parses a complete document, enforcing well-formed structure: one
    /// root, matching tags, bound prefixes, nothing but whitespace,
    /// comments and PIs outside the root.
    pub fn parse(input: &str) -> Result<Document, XmlError> {
        let mut parser = PullParser::new(input);
        let mut scopes = NsScopes::new();
        let mut root: Option<Element> = None;
        loop {
            match parser.next_event()? {
                Event::StartElement(tag) => {
                    if root.is_some() {
                        return Err(XmlError::new(
                            XmlErrorKind::BadDocumentStructure("multiple root elements"),
                            1,
                            1,
                        ));
                    }
                    root = Some(build_element(tag, &mut parser, &mut scopes)?);
                }
                Event::Text(t) if t.trim().is_empty() => {}
                Event::Text(_) => {
                    return Err(XmlError::new(
                        XmlErrorKind::BadDocumentStructure("text outside the root element"),
                        1,
                        1,
                    ))
                }
                Event::CData(_) => {
                    return Err(XmlError::new(
                        XmlErrorKind::BadDocumentStructure("CDATA outside the root element"),
                        1,
                        1,
                    ))
                }
                Event::EndElement(_) => {
                    return Err(XmlError::new(
                        XmlErrorKind::BadDocumentStructure("end tag without a start tag"),
                        1,
                        1,
                    ))
                }
                Event::Comment(_) | Event::Pi { .. } => {}
                Event::Eof => break,
            }
        }
        match root {
            Some(root) => Ok(Document { root }),
            None => Err(XmlError::new(
                XmlErrorKind::BadDocumentStructure("no root element"),
                1,
                1,
            )),
        }
    }
}

struct NsScopes {
    stack: Vec<HashMap<Option<String>, String>>,
}

impl NsScopes {
    fn new() -> Self {
        NsScopes { stack: Vec::new() }
    }

    fn push(&mut self, tag: &StartTag) {
        let mut scope = HashMap::new();
        for (raw, value) in &tag.attributes {
            if raw == "xmlns" {
                scope.insert(None, value.clone());
            } else if let Some(p) = raw.strip_prefix("xmlns:") {
                scope.insert(Some(p.to_string()), value.clone());
            }
        }
        self.stack.push(scope);
    }

    fn pop(&mut self) {
        self.stack.pop();
    }

    fn resolve(&self, prefix: Option<&str>) -> Option<Option<String>> {
        if prefix == Some("xml") {
            return Some(Some(XML_NS.to_string()));
        }
        if prefix == Some("xmlns") {
            return Some(None);
        }
        let key = prefix.map(str::to_string);
        for scope in self.stack.iter().rev() {
            if let Some(uri) = scope.get(&key) {
                // xmlns="" un-declares the default namespace.
                return Some(if uri.is_empty() {
                    None
                } else {
                    Some(uri.clone())
                });
            }
        }
        if prefix.is_none() {
            Some(None)
        } else {
            None
        }
    }
}

fn build_element(
    tag: StartTag,
    parser: &mut PullParser<'_>,
    scopes: &mut NsScopes,
) -> Result<Element, XmlError> {
    scopes.push(&tag);
    let name = QName::parse(&tag.name)
        .ok_or_else(|| XmlError::new(XmlErrorKind::BadName(tag.name.clone()), 1, 1))?;
    let namespace = scopes
        .resolve(name.prefix.as_deref())
        .ok_or_else(|| {
            XmlError::new(
                XmlErrorKind::UnboundPrefix(name.prefix.clone().unwrap_or_default()),
                1,
                1,
            )
        })?;
    let mut attributes = Vec::with_capacity(tag.attributes.len());
    for (raw, value) in &tag.attributes {
        let aname = QName::parse(raw)
            .ok_or_else(|| XmlError::new(XmlErrorKind::BadName(raw.clone()), 1, 1))?;
        let ans = match aname.prefix.as_deref() {
            // Unprefixed attributes are in no namespace; xmlns decls are
            // declarations, not namespaced attributes.
            None => None,
            Some("xmlns") => None,
            Some(p) => Some(scopes.resolve(Some(p)).ok_or_else(|| {
                XmlError::new(XmlErrorKind::UnboundPrefix(p.to_string()), 1, 1)
            })?),
        };
        attributes.push(Attribute {
            name: aname,
            namespace: ans.flatten(),
            value: value.clone(),
        });
    }
    let mut element = Element {
        name,
        namespace,
        attributes,
        children: Vec::new(),
    };
    if tag.self_closing {
        scopes.pop();
        return Ok(element);
    }
    loop {
        match parser.next_event()? {
            Event::StartElement(child) => {
                let child = build_element(child, parser, scopes)?;
                element.children.push(Node::Element(child));
            }
            Event::EndElement(raw) => {
                if raw != element.name.as_written() {
                    return Err(XmlError::new(
                        XmlErrorKind::MismatchedTag {
                            expected: element.name.as_written(),
                            found: raw,
                        },
                        1,
                        1,
                    ));
                }
                scopes.pop();
                return Ok(element);
            }
            Event::Text(t) => {
                if let Some(Node::Text(prev)) = element.children.last_mut() {
                    prev.push_str(&t);
                } else if !t.is_empty() {
                    element.children.push(Node::Text(t));
                }
            }
            Event::CData(t) => element.children.push(Node::CData(t)),
            Event::Comment(c) => element.children.push(Node::Comment(c)),
            Event::Pi { .. } => {}
            Event::Eof => {
                return Err(XmlError::new(XmlErrorKind::UnexpectedEof, 1, 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structure() {
        let doc = Document::parse("<a><b><c/></b><b/></a>").unwrap();
        assert_eq!(doc.root.name.local, "a");
        assert_eq!(doc.root.child_elements().count(), 2);
        let b = doc.root.find_child(None, "b").unwrap();
        assert!(b.find_child(None, "c").is_some());
    }

    #[test]
    fn default_namespace_applies_to_descendants() {
        let doc = Document::parse(r#"<a xmlns="urn:x"><b/></a>"#).unwrap();
        assert_eq!(doc.root.namespace.as_deref(), Some("urn:x"));
        let b = doc.root.find_child(Some("urn:x"), "b").unwrap();
        assert_eq!(b.namespace.as_deref(), Some("urn:x"));
    }

    #[test]
    fn prefixed_namespace_resolution() {
        let doc =
            Document::parse(r#"<s:a xmlns:s="urn:s" xmlns:t="urn:t"><t:b s:attr="v"/></s:a>"#)
                .unwrap();
        assert_eq!(doc.root.namespace.as_deref(), Some("urn:s"));
        let b = doc.root.find_child(Some("urn:t"), "b").unwrap();
        assert_eq!(b.attr_ns(Some("urn:s"), "attr"), Some("v"));
    }

    #[test]
    fn inner_declaration_shadows_outer() {
        let doc = Document::parse(r#"<a xmlns="urn:1"><b xmlns="urn:2"/><c/></a>"#).unwrap();
        assert!(doc.root.find_child(Some("urn:2"), "b").is_some());
        assert!(doc.root.find_child(Some("urn:1"), "c").is_some());
    }

    #[test]
    fn empty_xmlns_undeclares_default() {
        let doc = Document::parse(r#"<a xmlns="urn:1"><b xmlns=""/></a>"#).unwrap();
        assert!(doc.root.find_child(None, "b").is_some());
    }

    #[test]
    fn unbound_prefix_is_error() {
        let err = Document::parse("<x:a/>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::UnboundPrefix(ref p) if p == "x"));
    }

    #[test]
    fn xml_prefix_is_implicit() {
        let doc = Document::parse(r#"<a xml:lang="en"/>"#).unwrap();
        assert_eq!(doc.root.attr_ns(Some(XML_NS), "lang"), Some("en"));
    }

    #[test]
    fn unprefixed_attr_has_no_namespace() {
        let doc = Document::parse(r#"<a xmlns="urn:x" k="v"/>"#).unwrap();
        assert_eq!(doc.root.attr_ns(None, "k"), Some("v"));
        assert_eq!(doc.root.attr_ns(Some("urn:x"), "k"), None);
    }

    #[test]
    fn mismatched_tags_error() {
        let err = Document::parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn multiple_roots_error() {
        let err = Document::parse("<a/><b/>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::BadDocumentStructure(_)));
    }

    #[test]
    fn no_root_error() {
        let err = Document::parse("  <!-- only a comment --> ").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::BadDocumentStructure(_)));
    }

    #[test]
    fn text_outside_root_error() {
        let err = Document::parse("<a/>junk").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::BadDocumentStructure(_)));
    }

    #[test]
    fn text_accumulates_across_cdata_boundaries() {
        let doc = Document::parse("<a>x<![CDATA[y]]>z</a>").unwrap();
        assert_eq!(doc.root.text(), "xyz");
    }

    #[test]
    fn normalize_merges_adjacent_text() {
        let mut el = Element::new("a")
            .with_text("x")
            .with_text("")
            .with_text("y");
        el.normalize();
        assert_eq!(el.children, vec![Node::Text("xy".into())]);
    }

    #[test]
    fn remove_children_filters_by_name() {
        let mut el = Element::new("a")
            .with_child(Element::new("b"))
            .with_child(Element::new("c"))
            .with_child(Element::new("b"));
        assert_eq!(el.remove_children(None, "b"), 2);
        assert_eq!(el.child_elements().count(), 1);
    }

    #[test]
    fn set_attr_replaces_existing() {
        let mut el = Element::new("a").with_attr("k", "1");
        el.set_attr("k", "2");
        assert_eq!(el.attr("k"), Some("2"));
        assert_eq!(el.attributes.len(), 1);
    }

    #[test]
    fn declaration_comments_pis_tolerated_around_root() {
        let doc =
            Document::parse("<?xml version=\"1.0\"?>\n<!-- hdr -->\n<a/>\n<!-- tail -->")
                .unwrap();
        assert_eq!(doc.root.name.local, "a");
    }
}
