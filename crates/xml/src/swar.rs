//! SWAR (SIMD-within-a-register) byte scanning for the hot parse path.
//!
//! The tokenizer's inner loops spend their time looking for the next
//! interesting byte: `<` or `&` inside character data, the closing quote
//! (or an illegal `<`) inside attribute values, `>` while skipping tags.
//! These helpers scan eight bytes per step with the classic
//! "haszero" bit trick instead of one `char` at a time, which is the
//! memchr idiom without taking a dependency.
//!
//! All needles used by the parser are ASCII, so a match position always
//! lands on a UTF-8 character boundary and the bulk-copied prefix is
//! guaranteed valid UTF-8 when the haystack was.

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// Returns a mask with bit 7 set in every byte of `x` that is zero.
///
/// The classic trick: `x - LO` borrows into byte lanes that were zero,
/// `& !x` clears lanes that had their high bit set on their own, `& HI`
/// keeps only the marker bits. No false positives, no false negatives
/// for the "is any byte zero" question when read lane-by-lane from the
/// low end (the first set marker bit is always in the first zero byte).
#[inline(always)]
fn zero_mask(x: u64) -> u64 {
    x.wrapping_sub(LO) & !x & HI
}

/// Broadcasts a byte to all eight lanes.
#[inline(always)]
fn splat(b: u8) -> u64 {
    LO * b as u64
}

/// Index of the first matching lane given a non-zero marker mask
/// (little-endian: the lowest set bit belongs to the earliest byte).
#[inline(always)]
fn first_lane(mask: u64) -> usize {
    (mask.trailing_zeros() >> 3) as usize
}

/// Finds the first occurrence of `n` in `haystack`.
#[inline]
pub fn find_byte(haystack: &[u8], n: u8) -> Option<usize> {
    let pat = splat(n);
    let mut i = 0;
    while i + 8 <= haystack.len() {
        let word = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8-byte chunk"));
        let hit = zero_mask(word ^ pat);
        if hit != 0 {
            return Some(i + first_lane(hit));
        }
        i += 8;
    }
    haystack[i..].iter().position(|&b| b == n).map(|p| i + p)
}

/// Finds the first occurrence of either `n1` or `n2`.
#[inline]
pub fn find_byte2(haystack: &[u8], n1: u8, n2: u8) -> Option<usize> {
    let (p1, p2) = (splat(n1), splat(n2));
    let mut i = 0;
    while i + 8 <= haystack.len() {
        let word = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8-byte chunk"));
        let hit = zero_mask(word ^ p1) | zero_mask(word ^ p2);
        if hit != 0 {
            return Some(i + first_lane(hit));
        }
        i += 8;
    }
    haystack[i..]
        .iter()
        .position(|&b| b == n1 || b == n2)
        .map(|p| i + p)
}

/// Finds the first occurrence of `n1`, `n2`, or `n3`.
#[inline]
pub fn find_byte3(haystack: &[u8], n1: u8, n2: u8, n3: u8) -> Option<usize> {
    let (p1, p2, p3) = (splat(n1), splat(n2), splat(n3));
    let mut i = 0;
    while i + 8 <= haystack.len() {
        let word = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8-byte chunk"));
        let hit = zero_mask(word ^ p1) | zero_mask(word ^ p2) | zero_mask(word ^ p3);
        if hit != 0 {
            return Some(i + first_lane(hit));
        }
        i += 8;
    }
    haystack[i..]
        .iter()
        .position(|&b| b == n1 || b == n2 || b == n3)
        .map(|p| i + p)
}

/// Finds the first occurrence of the substring `needle` (used for the
/// `]]>` / `-->` / `?>` terminators and `\r\n\r\n` head scanning).
/// Scans for the first needle byte with SWAR, then verifies the rest.
#[inline]
pub fn find_seq(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    let (&first, rest) = needle.split_first()?;
    let mut from = 0;
    while from < haystack.len() {
        let at = from + find_byte(&haystack[from..], first)?;
        match haystack.get(at + 1..at + 1 + rest.len()) {
            Some(tail) if tail == rest => return Some(at),
            Some(_) => from = at + 1,
            None => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(h: &[u8], set: &[u8]) -> Option<usize> {
        h.iter().position(|b| set.contains(b))
    }

    #[test]
    fn finds_in_every_lane_position() {
        for len in 0..40 {
            for at in 0..len {
                let mut h = vec![b'a'; len];
                h[at] = b'<';
                assert_eq!(find_byte(&h, b'<'), Some(at), "len={len} at={at}");
            }
        }
    }

    #[test]
    fn misses_are_none() {
        let h = vec![b'x'; 37];
        assert_eq!(find_byte(&h, b'<'), None);
        assert_eq!(find_byte2(&h, b'<', b'&'), None);
        assert_eq!(find_byte3(&h, b'<', b'&', b'"'), None);
        assert_eq!(find_byte(b"", b'<'), None);
    }

    #[test]
    fn earliest_of_multiple_needles_wins() {
        let h = b"aaaa&aa<aaaaaaaaaa\"a";
        assert_eq!(find_byte2(h, b'<', b'&'), Some(4));
        assert_eq!(find_byte3(h, b'<', b'&', b'"'), Some(4));
        assert_eq!(find_byte3(h, b'<', b'"', b'z'), Some(7));
        assert_eq!(find_byte(h, b'"'), Some(18));
    }

    #[test]
    fn high_bit_bytes_do_not_false_positive() {
        // 0x80/0xFF lanes exercise the `& !x` correction.
        let h = [0x80, 0xFF, 0x81, 0xFE, 0x80, 0xFF, 0x80, 0xFF, b'<'];
        assert_eq!(find_byte(&h, b'<'), Some(8));
        assert_eq!(find_byte2(&h, b'<', b'&'), Some(8));
        // And the needles themselves still match in high-bit company.
        let h2 = [0xC3, 0xA9, b'&', 0xC3, 0xA9, 0xC3, 0xA9, 0xC3, 0xA9];
        assert_eq!(find_byte2(&h2, b'<', b'&'), Some(2));
    }

    #[test]
    fn agrees_with_naive_on_mixed_input() {
        let h: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        for set in [&[b'<'][..], &[b'<', b'&'][..], &[b'<', b'&', b'"'][..]] {
            let got = match set.len() {
                1 => find_byte(&h, set[0]),
                2 => find_byte2(&h, set[0], set[1]),
                _ => find_byte3(&h, set[0], set[1], set[2]),
            };
            assert_eq!(got, naive(&h, set));
        }
    }

    #[test]
    fn find_seq_matches_str_find() {
        let h = b"aa]]aa]]>bb]]>";
        assert_eq!(find_seq(h, b"]]>"), Some(6));
        assert_eq!(find_seq(h, b"-->"), None);
        assert_eq!(find_seq(b"--->", b"-->"), Some(1));
        assert_eq!(find_seq(b"]]", b"]]>"), None);
        assert_eq!(find_seq(b"", b"]]>"), None);
        assert_eq!(find_seq(b"\r\nx\r\n\r\n", b"\r\n\r\n"), Some(3));
    }
}
