//! Property-based invariants for the XML substrate.

use proptest::prelude::*;
use wsd_xml::{parse, write, Document, Element, Node};

/// Safe name: ASCII letter/underscore start, then letters/digits/-/._
fn name_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_.-]{0,12}"
}

/// Arbitrary text content (any unicode except unpaired surrogates, which
/// proptest never generates). Control chars below 0x20 other than \t\n\r
/// are not valid XML chars, so filter them.
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[^\u{0}-\u{8}\u{b}\u{c}\u{e}-\u{1f}]{0,40}").unwrap()
}

fn leaf_strategy() -> impl Strategy<Value = Element> {
    (
        name_strategy(),
        proptest::collection::vec((name_strategy(), text_strategy()), 0..4),
        text_strategy(),
    )
        .prop_map(|(name, attrs, text)| {
            let mut el = Element::new(name);
            for (k, v) in attrs {
                // set_attr dedupes names, matching the parser's duplicate
                // rejection.
                el.set_attr(k, v);
            }
            if !text.is_empty() {
                el.children.push(Node::Text(text));
            }
            el
        })
}

fn tree_strategy() -> impl Strategy<Value = Element> {
    leaf_strategy().prop_recursive(4, 32, 5, |inner| {
        (leaf_strategy(), proptest::collection::vec(inner, 0..5)).prop_map(|(mut el, kids)| {
            for k in kids {
                el.children.push(Node::Element(k));
            }
            el
        })
    })
}

proptest! {
    /// write → parse reproduces the tree (after text normalization, since
    /// the parser merges adjacent text runs).
    #[test]
    fn write_then_parse_round_trips(mut root in tree_strategy()) {
        root.normalize();
        let doc = Document::with_root(root.clone());
        let text = write(&doc);
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{text}"));
        prop_assert_eq!(reparsed.root, root);
    }

    /// The parser never panics, whatever bytes arrive (it may error).
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,300}") {
        let _ = parse(&input);
    }

    /// The parser never panics on inputs that look like XML.
    #[test]
    fn parser_never_panics_on_xmlish_input(input in "[<>&;/='\"a-z0-9 \\-!\\[\\]?]{0,200}") {
        let _ = parse(&input);
    }

    /// Escaping then parsing as text content is the identity.
    #[test]
    fn escape_round_trips_any_text(text in text_strategy()) {
        let el = Element::new("t").with_text(text.clone());
        let doc = Document::with_root(el);
        let reparsed = parse(&write(&doc)).unwrap();
        prop_assert_eq!(reparsed.root.text(), text);
    }

    /// Attribute escaping round-trips, including quotes and whitespace.
    #[test]
    fn escape_round_trips_any_attribute(value in text_strategy()) {
        let el = Element::new("t").with_attr("k", value.clone());
        let doc = Document::with_root(el);
        let reparsed = parse(&write(&doc)).unwrap();
        prop_assert_eq!(reparsed.root.attr("k"), Some(value.as_str()));
    }

    /// Parsing is deterministic: same input, same result.
    #[test]
    fn parse_is_deterministic(input in "[<>a-z/ =\"']{0,120}") {
        let a = parse(&input);
        let b = parse(&input);
        prop_assert_eq!(a, b);
    }
}
