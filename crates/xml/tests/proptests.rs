//! Property-based invariants for the XML substrate.

use proptest::prelude::*;
use wsd_xml::{parse, write, Document, Element, Node};

/// Safe name: ASCII letter/underscore start, then letters/digits/-/._
fn name_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_.-]{0,12}"
}

/// Arbitrary text content (any unicode except unpaired surrogates, which
/// proptest never generates). Control chars below 0x20 other than \t\n\r
/// are not valid XML chars, so filter them.
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[^\u{0}-\u{8}\u{b}\u{c}\u{e}-\u{1f}]{0,40}").unwrap()
}

fn leaf_strategy() -> impl Strategy<Value = Element> {
    (
        name_strategy(),
        proptest::collection::vec((name_strategy(), text_strategy()), 0..4),
        text_strategy(),
    )
        .prop_map(|(name, attrs, text)| {
            let mut el = Element::new(name);
            for (k, v) in attrs {
                // set_attr dedupes names, matching the parser's duplicate
                // rejection.
                el.set_attr(k, v);
            }
            if !text.is_empty() {
                el.children.push(Node::Text(text));
            }
            el
        })
}

fn tree_strategy() -> impl Strategy<Value = Element> {
    leaf_strategy().prop_recursive(4, 32, 5, |inner| {
        (leaf_strategy(), proptest::collection::vec(inner, 0..5)).prop_map(|(mut el, kids)| {
            for k in kids {
                el.children.push(Node::Element(k));
            }
            el
        })
    })
}

proptest! {
    /// write → parse reproduces the tree (after text normalization, since
    /// the parser merges adjacent text runs).
    #[test]
    fn write_then_parse_round_trips(mut root in tree_strategy()) {
        root.normalize();
        let doc = Document::with_root(root.clone());
        let text = write(&doc);
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{text}"));
        prop_assert_eq!(reparsed.root, root);
    }

    /// The parser never panics, whatever bytes arrive (it may error).
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,300}") {
        let _ = parse(&input);
    }

    /// The parser never panics on inputs that look like XML.
    #[test]
    fn parser_never_panics_on_xmlish_input(input in "[<>&;/='\"a-z0-9 \\-!\\[\\]?]{0,200}") {
        let _ = parse(&input);
    }

    /// Escaping then parsing as text content is the identity.
    #[test]
    fn escape_round_trips_any_text(text in text_strategy()) {
        let el = Element::new("t").with_text(text.clone());
        let doc = Document::with_root(el);
        let reparsed = parse(&write(&doc)).unwrap();
        prop_assert_eq!(reparsed.root.text(), text);
    }

    /// Attribute escaping round-trips, including quotes and whitespace.
    #[test]
    fn escape_round_trips_any_attribute(value in text_strategy()) {
        let el = Element::new("t").with_attr("k", value.clone());
        let doc = Document::with_root(el);
        let reparsed = parse(&write(&doc)).unwrap();
        prop_assert_eq!(reparsed.root.attr("k"), Some(value.as_str()));
    }

    /// Parsing is deterministic: same input, same result.
    #[test]
    fn parse_is_deterministic(input in "[<>a-z/ =\"']{0,120}") {
        let a = parse(&input);
        let b = parse(&input);
        prop_assert_eq!(a, b);
    }
}

/// A haystack over the bytes the parser actually hunts for, so matches
/// (and near-misses straddling the 8-byte SWAR chunks) are common.
fn xmlish_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            Just(b'<'),
            Just(b'>'),
            Just(b'&'),
            Just(b'"'),
            Just(b'\r'),
            Just(b'\n'),
            Just(b'x'),
            any::<u8>(),
        ],
        0..200,
    )
}

proptest! {
    /// The SWAR finders are byte-identical to a naive linear scan for
    /// every haystack/needle combination — the parser and head-scanner
    /// swapped them in on the strength of exactly this equivalence.
    #[test]
    fn swar_finders_match_naive_scan(
        h in xmlish_bytes(),
        n1 in any::<u8>(),
        n2 in any::<u8>(),
        n3 in any::<u8>(),
    ) {
        use wsd_xml::swar;
        prop_assert_eq!(swar::find_byte(&h, n1), h.iter().position(|&b| b == n1));
        prop_assert_eq!(
            swar::find_byte2(&h, n1, n2),
            h.iter().position(|&b| b == n1 || b == n2)
        );
        prop_assert_eq!(
            swar::find_byte3(&h, n1, n2, n3),
            h.iter().position(|&b| b == n1 || b == n2 || b == n3)
        );
    }

    /// `find_seq` agrees with the naive windowed search, including
    /// needles that straddle chunk boundaries (`\r\n\r\n` head scans).
    #[test]
    fn swar_find_seq_matches_naive_scan(
        h in xmlish_bytes(),
        needle in proptest::collection::vec(
            prop_oneof![Just(b'\r'), Just(b'\n'), Just(b'<'), any::<u8>()],
            1..5,
        ),
    ) {
        let naive = h.windows(needle.len()).position(|w| w == &needle[..]);
        prop_assert_eq!(wsd_xml::swar::find_seq(&h, &needle), naive);
    }

    /// Deeply nested documents round-trip exactly — the splice scanner's
    /// depth tracking and the parser's SWAR skips never lose a level.
    #[test]
    fn deeply_nested_documents_round_trip(depth in 1usize..80, text in text_strategy()) {
        let mut el = Element::new("leaf");
        if !text.is_empty() {
            el.children.push(Node::Text(text));
        }
        for _ in 0..depth {
            let mut outer = Element::new("n");
            outer.children.push(Node::Element(el));
            el = outer;
        }
        let doc = Document::with_root(el);
        let xml = write(&doc);
        let reparsed = parse(&xml).unwrap();
        prop_assert_eq!(reparsed.root, doc.root);
    }

    /// Entity-heavy content — every reference the writer can emit, plus
    /// numeric forms — round-trips through the accelerated parser.
    #[test]
    fn entity_heavy_content_round_trips(runs in proptest::collection::vec("[&<>\"'a-z]{0,8}", 0..12)) {
        let text: String = runs.concat();
        let el = Element::new("t").with_text(text.clone());
        let reparsed = parse(&write(&Document::with_root(el))).unwrap();
        prop_assert_eq!(reparsed.root.text(), text);
    }

    /// Torn tags: every strict prefix of a well-formed document is an
    /// error (kind and position included), never a panic and never a
    /// silent success.
    #[test]
    fn torn_tag_prefixes_error_cleanly(depth in 1usize..30, cut_permille in 0u32..1000) {
        let mut el = Element::new("leaf");
        el.children.push(Node::Text("payload & more".to_string()));
        for _ in 0..depth {
            let mut outer = Element::new("n");
            outer.children.push(Node::Element(el));
            el = outer;
        }
        let xml = write(&Document::with_root(el));
        let cut = (xml.len() as u64 * cut_permille as u64 / 1000) as usize;
        // ASCII by construction, so any byte offset is a char boundary.
        let torn = &xml[..cut];
        let result = parse(torn);
        prop_assert!(result.is_err(), "strict prefix parsed: {torn:?}");
        // Determinism of the error itself (kind, line, column).
        prop_assert_eq!(result.err(), parse(torn).err());
    }
}
