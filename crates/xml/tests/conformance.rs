//! A battery of tricky-but-well-formed documents and canonical
//! rejections, beyond what the unit tests cover. These mirror the cases
//! a SOAP intermediary actually meets in the wild.

use wsd_xml::{parse, write, XmlErrorKind};

#[test]
fn namespace_redeclaration_mid_tree() {
    let doc = parse(
        r#"<a xmlns:p="urn:one"><p:x/><b xmlns:p="urn:two"><p:x/></b><p:x/></a>"#,
    )
    .unwrap();
    let kids: Vec<_> = doc.root.child_elements().collect();
    assert_eq!(kids[0].namespace.as_deref(), Some("urn:one"));
    let inner = kids[1].child_elements().next().unwrap();
    assert_eq!(inner.namespace.as_deref(), Some("urn:two"));
    assert_eq!(kids[2].namespace.as_deref(), Some("urn:one"));
}

#[test]
fn same_local_name_different_namespaces_coexist() {
    let doc = parse(
        r#"<r xmlns:a="urn:a" xmlns:b="urn:b"><a:item v="1"/><b:item v="2"/></r>"#,
    )
    .unwrap();
    assert_eq!(
        doc.root.find_child(Some("urn:a"), "item").unwrap().attr("v"),
        Some("1")
    );
    assert_eq!(
        doc.root.find_child(Some("urn:b"), "item").unwrap().attr("v"),
        Some("2")
    );
}

#[test]
fn attributes_never_inherit_the_default_namespace() {
    let doc = parse(r#"<a xmlns="urn:d" k="v"><b k="w"/></a>"#).unwrap();
    assert_eq!(doc.root.attr_ns(None, "k"), Some("v"));
    let b = doc.root.find_child(Some("urn:d"), "b").unwrap();
    assert_eq!(b.attr_ns(None, "k"), Some("w"));
    assert_eq!(b.attr_ns(Some("urn:d"), "k"), None);
}

#[test]
fn whitespace_only_text_preserved_inside_elements() {
    let doc = parse("<a> <b/> </a>").unwrap();
    // Two whitespace text nodes around <b/>.
    assert_eq!(doc.root.children.len(), 3);
    assert_eq!(doc.root.text(), "  ");
}

#[test]
fn crlf_in_text_survives() {
    let doc = parse("<a>line1\r\nline2</a>").unwrap();
    assert_eq!(doc.root.text(), "line1\r\nline2");
}

#[test]
fn numeric_references_cover_bmp_and_astral() {
    let doc = parse("<a>&#xE9;&#233;&#x1F600;</a>").unwrap();
    assert_eq!(doc.root.text(), "éé😀");
}

#[test]
fn comments_may_contain_markup_lookalikes() {
    let doc = parse("<a><!-- <not><tags> &not-an-entity; --></a>").unwrap();
    assert_eq!(doc.root.children.len(), 1);
}

#[test]
fn processing_instructions_inside_elements_skipped() {
    let doc = parse("<a>x<?php echo ?>y</a>").unwrap();
    assert_eq!(doc.root.text(), "xy");
}

#[test]
fn cdata_protects_everything() {
    let doc = parse("<a><![CDATA[ <b>&amp;</b> ]]></a>").unwrap();
    assert_eq!(doc.root.text(), " <b>&amp;</b> ");
}

#[test]
fn deeply_nested_namespaced_soap_like_document() {
    let text = r#"<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/"><SOAP-ENV:Header><wsa:To xmlns:wsa="http://schemas.xmlsoap.org/ws/2004/08/addressing">http://x/svc</wsa:To></SOAP-ENV:Header><SOAP-ENV:Body><m:op xmlns:m="urn:m"><arg>5</arg></m:op></SOAP-ENV:Body></SOAP-ENV:Envelope>"#;
    let doc = parse(text).unwrap();
    let env_ns = "http://schemas.xmlsoap.org/soap/envelope/";
    let body = doc.root.find_child(Some(env_ns), "Body").unwrap();
    let op = body.find_child(Some("urn:m"), "op").unwrap();
    assert_eq!(op.find_child(None, "arg").unwrap().text(), "5");
    // And it survives a rewrite cycle.
    let again = parse(&write(&doc)).unwrap();
    assert_eq!(again, doc);
}

#[test]
fn rejections_are_the_right_kind() {
    let cases: &[(&str, fn(&XmlErrorKind) -> bool)] = &[
        ("<a><b></a>", |k| matches!(k, XmlErrorKind::MismatchedTag { .. })),
        ("<a x='1' x='2'/>", |k| {
            matches!(k, XmlErrorKind::DuplicateAttribute(_))
        }),
        ("<a>&bogus;</a>", |k| matches!(k, XmlErrorKind::UnknownEntity(_))),
        ("<a>&#x0;</a>", |k| matches!(k, XmlErrorKind::BadCharRef(_))),
        ("<!DOCTYPE a><a/>", |k| matches!(k, XmlErrorKind::DtdRejected)),
        ("<p:a/>", |k| matches!(k, XmlErrorKind::UnboundPrefix(_))),
        ("<a/><b/>", |k| {
            matches!(k, XmlErrorKind::BadDocumentStructure(_))
        }),
        ("", |k| matches!(k, XmlErrorKind::BadDocumentStructure(_))),
        ("<a", |k| matches!(k, XmlErrorKind::UnexpectedEof)),
        ("<a><![CDATA[never closed</a>", |k| {
            matches!(k, XmlErrorKind::UnexpectedEof)
        }),
    ];
    for (input, check) in cases {
        let err = parse(input).expect_err(input);
        assert!(check(&err.kind), "{input}: got {:?}", err.kind);
    }
}

#[test]
fn error_positions_point_at_the_problem() {
    let err = parse("<root>\n  <ok/>\n  <broken attr=>\n</root>").unwrap_err();
    assert_eq!(err.line, 3);
    assert!(err.column >= 10, "column {}", err.column);
}

#[test]
fn attribute_value_whitespace_roundtrip() {
    // Tab/newline in attribute values must be preserved via char refs.
    let el = wsd_xml::Element::new("a").with_attr("k", "a\tb\nc");
    let doc = wsd_xml::Document::with_root(el);
    let reparsed = parse(&write(&doc)).unwrap();
    assert_eq!(reparsed.root.attr("k"), Some("a\tb\nc"));
}

#[test]
fn huge_flat_document_parses() {
    let mut text = String::from("<list>");
    for i in 0..5000 {
        text.push_str(&format!("<item id=\"{i}\">value-{i}</item>"));
    }
    text.push_str("</list>");
    let doc = parse(&text).unwrap();
    assert_eq!(doc.root.children.len(), 5000);
    assert_eq!(
        doc.root.child_elements().last().unwrap().attr("id"),
        Some("4999")
    );
}

#[test]
fn mixed_content_order_preserved() {
    let doc = parse("<p>one<b>two</b>three<i>four</i>five</p>").unwrap();
    use wsd_xml::Node;
    let kinds: Vec<&str> = doc
        .root
        .children
        .iter()
        .map(|n| match n {
            Node::Text(_) => "t",
            Node::Element(_) => "e",
            Node::CData(_) => "c",
            Node::Comment(_) => "k",
        })
        .collect();
    assert_eq!(kinds, vec!["t", "e", "t", "e", "t"]);
    assert_eq!(doc.root.text(), "onethreefive");
}
