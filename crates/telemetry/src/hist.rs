//! Log-bucketed latency histogram.
//!
//! Values land in buckets whose width grows geometrically: exact buckets
//! below `2^SUB_BITS`, then `2^SUB_BITS` sub-buckets per power of two.
//! That bounds the relative quantile error at `2^-SUB_BITS` (12.5%)
//! while keeping the whole `u64` range in under 500 atomic cells, so
//! recording is one index computation plus one relaxed `fetch_add` —
//! safe for concurrent producers and cheap enough for hot paths.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per octave.
const SUB_BITS: u32 = 3;
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Exact buckets 0..SUB_COUNT, then (64-SUB_BITS) octaves × SUB_COUNT.
pub(crate) const BUCKETS: usize = SUB_COUNT + (64 - SUB_BITS as usize) * SUB_COUNT;

/// Maps a value to its bucket index.
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // msb >= SUB_BITS
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) as usize) & (SUB_COUNT - 1);
    SUB_COUNT + (msb - SUB_BITS) as usize * SUB_COUNT + sub
}

/// The inclusive lower bound of a bucket — the value reported for any
/// sample that landed in it (so estimates never exceed the exact
/// statistic and the relative error stays below one sub-bucket width).
pub(crate) fn bucket_lo(index: usize) -> u64 {
    if index < SUB_COUNT {
        return index as u64;
    }
    let off = index - SUB_COUNT;
    let octave = (off / SUB_COUNT) as u32; // msb - SUB_BITS
    let sub = (off % SUB_COUNT) as u64;
    (SUB_COUNT as u64 + sub) << octave
}

/// A concurrent log-bucketed histogram of `u64` samples (microseconds,
/// bytes, queue depths — any nonnegative magnitude).
#[derive(Clone, Default)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

struct HistInner {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for HistInner {
    fn default() -> Self {
        let buckets = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        HistInner {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }
}

impl Histogram {
    /// A fresh, unregistered histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let i = &self.inner;
        i.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        i.count.fetch_add(1, Ordering::Relaxed);
        i.sum.fetch_add(v, Ordering::Relaxed);
        i.max.fetch_max(v, Ordering::Relaxed);
        i.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Mean of all samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.inner.max.load(Ordering::Relaxed)
        }
    }

    /// Exact minimum sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.inner.min.load(Ordering::Relaxed)
        }
    }

    /// The `pct`-th percentile (0–100), as the lower bound of the bucket
    /// holding that order statistic; the top percentile reports the
    /// exact max. Returns 0 when empty.
    pub fn percentile(&self, pct: f64) -> u64 {
        let counts: Vec<u64> = self
            .inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return 0;
        }
        // Same convention as a sorted-Vec order statistic:
        // index = ceil(n * pct/100) - 1, clamped into range.
        let rank = ((n as f64 * pct / 100.0).ceil() as u64)
            .saturating_sub(1)
            .min(n - 1);
        if rank == n - 1 {
            // The top order statistic is the max, tracked exactly.
            return self.max();
        }
        let mut cum = 0u64;
        for (ix, &c) in counts.iter().enumerate() {
            cum += c;
            if cum > rank {
                return bucket_lo(ix);
            }
        }
        self.max()
    }

    /// Per-bucket nonzero counts as `(bucket_lo, count)` pairs, in
    /// ascending value order (the mergeable raw form of the histogram).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.inner
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(ix, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_lo(ix), c))
            })
            .collect()
    }
}

/// Inclusive upper bound of a bucket.
#[cfg(test)]
pub(crate) fn bucket_hi(index: usize) -> u64 {
    if index + 1 < BUCKETS {
        bucket_lo(index + 1) - 1
    } else {
        u64::MAX
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .field("p50", &self.percentile(50.0))
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_within_bounds() {
        let mut last = 0usize;
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            for v in [v, v + v / 3, v + v / 2] {
                let ix = bucket_index(v);
                assert!(ix < BUCKETS, "{v} -> {ix}");
                assert!(ix >= last, "index must not decrease at {v}");
                last = ix;
            }
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn bucket_lo_inverts_index() {
        for v in (0..1000u64).chain([1 << 20, 1 << 40, u64::MAX / 2]) {
            let ix = bucket_index(v);
            let lo = bucket_lo(ix);
            assert!(lo <= v, "lo {lo} > v {v}");
            assert_eq!(bucket_index(lo), ix, "lo of bucket {ix} maps back");
            assert!(v <= bucket_hi(ix));
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(100.0), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn percentile_matches_order_statistics_within_bucket() {
        let h = Histogram::new();
        let mut samples: Vec<u64> = (1..=1000u64).map(|i| i * 37).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for pct in [1.0, 10.0, 50.0, 90.0, 95.0, 99.0] {
            let exact_ix = ((samples.len() as f64 * pct / 100.0).ceil() as usize)
                .saturating_sub(1)
                .min(samples.len() - 1);
            let exact = samples[exact_ix];
            let est = h.percentile(pct);
            assert_eq!(
                bucket_index(est),
                bucket_index(exact),
                "pct {pct}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(h.percentile(100.0), *samples.last().unwrap());
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
