//! Point-in-time captures of a registry, with text and JSON exporters.
//!
//! Snapshots are plain data: sorted `(name, value)` entries. Histograms
//! export their nonzero buckets, so two snapshots can be merged exactly
//! (counts add; quantiles are recomputed from the merged buckets). That
//! matters because the experiment harness runs sweep points on worker
//! threads with per-run registries and folds them together afterwards in
//! deterministic order.
//!
//! JSON is hand-rolled: the workspace is dependency-free offline, and
//! the schema is small enough that an escaper plus `push_str` is clearer
//! than a serializer framework.

use crate::hist::{bucket_index, bucket_lo, Histogram};

/// Exported quantile summary plus raw buckets for one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Exact minimum (0 when empty).
    pub min: u64,
    /// Exact maximum (0 when empty).
    pub max: u64,
    /// Median estimate (bucket lower bound).
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Nonzero `(bucket_lo, count)` pairs, ascending — the mergeable
    /// raw form.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSummary {
    fn from_parts(count: u64, sum: u64, min: u64, max: u64, buckets: Vec<(u64, u64)>) -> Self {
        let pctl = |pct: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((count as f64 * pct / 100.0).ceil() as u64)
                .saturating_sub(1)
                .min(count - 1);
            if rank == count - 1 {
                return max;
            }
            let mut cum = 0u64;
            for &(lo, c) in &buckets {
                cum += c;
                if cum > rank {
                    return lo;
                }
            }
            max
        };
        HistogramSummary {
            count,
            sum,
            min,
            max,
            p50: pctl(50.0),
            p95: pctl(95.0),
            p99: pctl(99.0),
            buckets,
        }
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact merge of two summaries: bucket counts add, extrema combine,
    /// quantiles recompute over the union.
    pub fn merge(&self, other: &HistogramSummary) -> HistogramSummary {
        let mut buckets = self.buckets.clone();
        for &(lo, c) in &other.buckets {
            match buckets.binary_search_by_key(&lo, |&(l, _)| l) {
                Ok(i) => buckets[i].1 += c,
                Err(i) => buckets.insert(i, (lo, c)),
            }
        }
        let count = self.count + other.count;
        let min = match (self.count, other.count) {
            (0, _) => other.min,
            (_, 0) => self.min,
            _ => self.min.min(other.min),
        };
        HistogramSummary::from_parts(
            count,
            self.sum + other.sum,
            min,
            self.max.max(other.max),
            buckets,
        )
    }
}

/// One exported metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Level + high-water mark.
    Gauge {
        /// Current level.
        value: i64,
        /// Highest level observed.
        peak: i64,
    },
    /// Distribution summary.
    Histogram(HistogramSummary),
}

impl MetricValue {
    /// Summarizes a live histogram into its exported form.
    pub fn from_histogram(h: &Histogram) -> MetricValue {
        MetricValue::Histogram(HistogramSummary::from_parts(
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            h.nonzero_buckets(),
        ))
    }
}

/// One named metric in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Full dot-joined instrument name.
    pub name: String,
    /// The captured value.
    pub value: MetricValue,
}

/// A point-in-time capture of every instrument in a registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    at_us: u64,
    entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// An empty snapshot stamped at `at_us`.
    pub fn new(at_us: u64) -> Self {
        Snapshot {
            at_us,
            entries: Vec::new(),
        }
    }

    /// The capture timestamp in microseconds.
    pub fn at_us(&self) -> u64 {
        self.at_us
    }

    /// Appends an entry, keeping name order.
    pub fn push(&mut self, name: String, value: MetricValue) {
        let ix = self
            .entries
            .binary_search_by(|e| e.name.as_str().cmp(&name))
            .unwrap_or_else(|i| i);
        self.entries.insert(ix, SnapshotEntry { name, value });
    }

    /// The captured entries, sorted by name.
    pub fn entries(&self) -> &[SnapshotEntry] {
        &self.entries
    }

    /// Looks up one entry by full name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].value)
    }

    /// Convenience: the value of counter `name`, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Convenience: the peak of gauge `name`, 0 if absent.
    pub fn gauge_peak(&self, name: &str) -> i64 {
        match self.get(name) {
            Some(MetricValue::Gauge { peak, .. }) => *peak,
            _ => 0,
        }
    }

    /// Sum of all counters whose full name ends with `.{suffix}` (or
    /// equals it) — e.g. total drops across every destination scope.
    pub fn counter_sum(&self, suffix: &str) -> u64 {
        self.entries
            .iter()
            .filter_map(|e| match &e.value {
                MetricValue::Counter(v)
                    if e.name == suffix || e.name.ends_with(&format!(".{suffix}")) =>
                {
                    Some(*v)
                }
                _ => None,
            })
            .sum()
    }

    /// Max peak over all gauges whose full name ends with `.{suffix}`.
    pub fn gauge_peak_max(&self, suffix: &str) -> i64 {
        self.entries
            .iter()
            .filter_map(|e| match &e.value {
                MetricValue::Gauge { peak, .. }
                    if e.name == suffix || e.name.ends_with(&format!(".{suffix}")) =>
                {
                    Some(*peak)
                }
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Merges another snapshot into this one: counters add, gauges max
    /// (both level and peak), histograms merge bucket-exactly. Timestamps
    /// keep the later capture. Merge order does not affect the result's
    /// entry set or counter/histogram totals.
    pub fn merge(&mut self, other: &Snapshot) {
        self.at_us = self.at_us.max(other.at_us);
        for e in &other.entries {
            match self
                .entries
                .binary_search_by(|mine| mine.name.as_str().cmp(&e.name))
            {
                Err(ix) => self.entries.insert(ix, e.clone()),
                Ok(ix) => {
                    let mine = &mut self.entries[ix].value;
                    *mine = match (&*mine, &e.value) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                            MetricValue::Counter(a + b)
                        }
                        (
                            MetricValue::Gauge { value: av, peak: ap },
                            MetricValue::Gauge { value: bv, peak: bp },
                        // Merged snapshots come from independent runs,
                        // so levels max like peaks (summing would let
                        // the merged value exceed the merged peak).
                        ) => MetricValue::Gauge {
                            value: *av.max(bv),
                            peak: *ap.max(bp),
                        },
                        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                            MetricValue::Histogram(a.merge(b))
                        }
                        // Kind mismatch under one name: keep ours.
                        (mine, _) => mine.clone(),
                    };
                }
            }
        }
    }

    /// Renders a human-readable multi-line report.
    pub fn to_text(&self) -> String {
        let mut out = format!("# snapshot at {}us\n", self.at_us);
        for e in &self.entries {
            match &e.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{} = {v}\n", e.name));
                }
                MetricValue::Gauge { value, peak } => {
                    out.push_str(&format!("{} = {value} (peak {peak})\n", e.name));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{}: n={} mean={:.1} min={} p50={} p95={} p99={} max={}\n",
                        e.name,
                        h.count,
                        h.mean(),
                        h.min,
                        h.p50,
                        h.p95,
                        h.p99,
                        h.max
                    ));
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON object with a stable schema:
    /// `{"at_us": N, "metrics": {"name": <value>, ...}}` where counter
    /// values are numbers, gauges are `{"value","peak"}`, histograms are
    /// `{"count","sum","min","max","p50","p95","p99","buckets":[[lo,n]..]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.entries.len() * 64);
        out.push_str("{\"at_us\":");
        out.push_str(&self.at_us.to_string());
        out.push_str(",\"metrics\":{");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, &e.name);
            out.push(':');
            match &e.value {
                MetricValue::Counter(v) => out.push_str(&v.to_string()),
                MetricValue::Gauge { value, peak } => {
                    out.push_str(&format!("{{\"value\":{value},\"peak\":{peak}}}"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                        h.count, h.sum, h.min, h.max, h.p50, h.p95, h.p99
                    ));
                    for (j, (lo, c)) in h.buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("[{lo},{c}]"));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("}}");
        out
    }
}

/// Appends `s` to `out` as a JSON string literal.
pub fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Exactness check used by tests: a merged summary must equal the
/// summary of recording both sample sets into one histogram.
#[doc(hidden)]
pub fn summary_of_samples(samples: &[u64]) -> HistogramSummary {
    let mut buckets: Vec<(u64, u64)> = Vec::new();
    let mut sorted: Vec<usize> = samples.iter().map(|&v| bucket_index(v)).collect();
    sorted.sort_unstable();
    for ix in sorted {
        let lo = bucket_lo(ix);
        match buckets.last_mut() {
            Some(last) if last.0 == lo => last.1 += 1,
            _ => buckets.push((lo, 1)),
        }
    }
    HistogramSummary::from_parts(
        samples.len() as u64,
        samples.iter().sum(),
        samples.iter().copied().min().unwrap_or(0),
        samples.iter().copied().max().unwrap_or(0),
        buckets,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_of(samples: &[u64]) -> Histogram {
        let h = Histogram::new();
        for &s in samples {
            h.record(s);
        }
        h
    }

    #[test]
    fn snapshot_entries_stay_sorted_and_findable() {
        let mut s = Snapshot::new(10);
        s.push("zeta".into(), MetricValue::Counter(1));
        s.push("alpha".into(), MetricValue::Counter(2));
        s.push("mid".into(), MetricValue::Gauge { value: 3, peak: 9 });
        let names: Vec<_> = s.entries().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
        assert_eq!(s.counter("alpha"), 2);
        assert_eq!(s.gauge_peak("mid"), 9);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn suffix_aggregation() {
        let mut s = Snapshot::new(0);
        s.push("d.a.drops".into(), MetricValue::Counter(3));
        s.push("d.b.drops".into(), MetricValue::Counter(4));
        s.push("d.dropship".into(), MetricValue::Counter(100)); // not a .drops
        s.push("d.a.depth".into(), MetricValue::Gauge { value: 0, peak: 7 });
        s.push("d.b.depth".into(), MetricValue::Gauge { value: 2, peak: 5 });
        assert_eq!(s.counter_sum("drops"), 7);
        assert_eq!(s.gauge_peak_max("depth"), 7);
    }

    #[test]
    fn merge_is_exact_for_histograms() {
        let a_samples: Vec<u64> = (0..500).map(|i| i * 13 + 1).collect();
        let b_samples: Vec<u64> = (0..300).map(|i| i * 97 + 5).collect();
        let merged = match (
            MetricValue::from_histogram(&hist_of(&a_samples)),
            MetricValue::from_histogram(&hist_of(&b_samples)),
        ) {
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(&b),
            _ => unreachable!(),
        };
        let mut both = a_samples.clone();
        both.extend(&b_samples);
        let direct = match MetricValue::from_histogram(&hist_of(&both)) {
            MetricValue::Histogram(h) => h,
            _ => unreachable!(),
        };
        assert_eq!(merged, direct);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_maxes_peaks() {
        let mut a = Snapshot::new(5);
        a.push("c".into(), MetricValue::Counter(2));
        a.push("g".into(), MetricValue::Gauge { value: 1, peak: 4 });
        let mut b = Snapshot::new(9);
        b.push("c".into(), MetricValue::Counter(3));
        b.push("g".into(), MetricValue::Gauge { value: 2, peak: 3 });
        b.push("only_b".into(), MetricValue::Counter(7));
        a.merge(&b);
        assert_eq!(a.at_us(), 9);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.counter("only_b"), 7);
        assert_eq!(a.get("g"), Some(&MetricValue::Gauge { value: 2, peak: 4 }));
    }

    #[test]
    fn json_has_stable_shape() {
        let mut s = Snapshot::new(42);
        s.push("a\"b".into(), MetricValue::Counter(1));
        s.push("g".into(), MetricValue::Gauge { value: -2, peak: 6 });
        s.push(
            "h".into(),
            MetricValue::from_histogram(&hist_of(&[1, 2, 100])),
        );
        let json = s.to_json();
        assert!(json.starts_with("{\"at_us\":42,\"metrics\":{"));
        assert!(json.contains("\"a\\\"b\":1"));
        assert!(json.contains("\"g\":{\"value\":-2,\"peak\":6}"));
        assert!(json.contains("\"count\":3"));
        assert!(json.contains("\"buckets\":[[1,1],[2,1],"));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn text_report_mentions_every_entry() {
        let mut s = Snapshot::new(1);
        s.push("c".into(), MetricValue::Counter(1));
        s.push("g".into(), MetricValue::Gauge { value: 0, peak: 2 });
        s.push("h".into(), MetricValue::from_histogram(&hist_of(&[5])));
        let text = s.to_text();
        for needle in ["c = 1", "g = 0 (peak 2)", "h: n=1"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
