//! Bounded, droppable event trace.
//!
//! A ring of message lifecycle events — accepted → rewritten → enqueued
//! → drained → delivered — correlated by the WS-Addressing `MessageID`
//! string. The ring is bounded: when full, the oldest events are
//! overwritten and a drop counter keeps the books honest. Tracing must
//! never be able to stall a hot path, so pushes are a short mutex
//! critical section (one slot write) and the ring defaults to a few
//! thousand entries.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
// wsd-lint: allow(std-sync-primitive): wsd-telemetry is dependency-free by design (it must be embeddable everywhere, including under parking_lot itself)
use std::sync::{Arc, Mutex};

use crate::clock::SharedClock;

/// Default ring capacity for a registry's trace.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Lifecycle stage of a traced message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceStage {
    /// Connection/request accepted by a listener.
    Accepted,
    /// Envelope rewritten (WS-Addressing redirection).
    Rewritten,
    /// Queued at the MSG-Dispatcher for a destination.
    Enqueued,
    /// Pulled off a queue by a worker.
    Drained,
    /// Handed to the final receiver.
    Delivered,
    /// Discarded (queue full, budget exhausted, linger expiry).
    Dropped,
    /// Refused at the transport (accept queue overflow, firewall).
    Rejected,
}

impl TraceStage {
    /// Stable lowercase name used by exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceStage::Accepted => "accepted",
            TraceStage::Rewritten => "rewritten",
            TraceStage::Enqueued => "enqueued",
            TraceStage::Drained => "drained",
            TraceStage::Delivered => "delivered",
            TraceStage::Dropped => "dropped",
            TraceStage::Rejected => "rejected",
        }
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Correlation key — typically the `wsa:MessageID`.
    pub message_id: String,
    /// Which lifecycle stage this event marks.
    pub stage: TraceStage,
    /// Clock timestamp in microseconds.
    pub at_us: u64,
    /// Sequence number, strictly increasing per ring.
    pub seq: u64,
}

struct TraceInner {
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    clock: SharedClock,
}

/// A bounded ring of [`TraceEvent`]s. Clones share the ring.
#[derive(Clone)]
pub struct EventTrace {
    inner: Option<Arc<TraceInner>>,
}

impl EventTrace {
    /// A ring holding at most `capacity` events, stamping with `clock`.
    pub fn new(capacity: usize, clock: SharedClock) -> Self {
        if capacity == 0 {
            return EventTrace::noop();
        }
        EventTrace {
            inner: Some(Arc::new(TraceInner {
                ring: Mutex::new(VecDeque::with_capacity(capacity)),
                capacity,
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                clock,
            })),
        }
    }

    /// A trace that records nothing (used by [`crate::Scope::noop`]).
    pub fn noop() -> Self {
        EventTrace { inner: None }
    }

    /// Whether events pushed here are actually retained.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Records `stage` for `message_id` at the ring clock's current time.
    pub fn record(&self, message_id: &str, stage: TraceStage) {
        if let Some(inner) = &self.inner {
            let at = inner.clock.now_us();
            self.push_inner(inner, message_id, stage, at);
        }
    }

    /// Records `stage` for `message_id` at an explicit timestamp (used
    /// by simulation actors that know their virtual time directly).
    pub fn push(&self, message_id: &str, stage: TraceStage, at_us: u64) {
        if let Some(inner) = &self.inner {
            self.push_inner(inner, message_id, stage, at_us);
        }
    }

    fn push_inner(&self, inner: &TraceInner, message_id: &str, stage: TraceStage, at_us: u64) {
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = inner.ring.lock().expect("trace lock");
        if ring.len() == inner.capacity {
            ring.pop_front();
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(TraceEvent {
            message_id: message_id.to_string(),
            stage,
            at_us,
            seq,
        });
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(inner) => inner.ring.lock().expect("trace lock").len(),
        }
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.dropped.load(Ordering::Relaxed),
        }
    }

    /// Removes and returns all retained events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.ring.lock().expect("trace lock").drain(..).collect(),
        }
    }

    /// Copies the retained events without clearing the ring.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .ring
                .lock()
                .expect("trace lock")
                .iter()
                .cloned()
                .collect(),
        }
    }

    /// Retained events for one message, oldest first — the message's
    /// lifecycle as far as the ring still remembers it.
    pub fn lifecycle(&self, message_id: &str) -> Vec<TraceEvent> {
        self.events()
            .into_iter()
            .filter(|e| e.message_id == message_id)
            .collect()
    }
}

impl std::fmt::Debug for EventTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventTrace")
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .field("active", &self.is_active())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn trace(cap: usize) -> (EventTrace, VirtualClock) {
        let clock = VirtualClock::new();
        (EventTrace::new(cap, Arc::new(clock.clone())), clock)
    }

    #[test]
    fn records_lifecycle_in_order() {
        let (t, clock) = trace(16);
        t.record("msg-1", TraceStage::Accepted);
        clock.advance_to(10);
        t.record("msg-1", TraceStage::Enqueued);
        clock.advance_to(25);
        t.record("msg-2", TraceStage::Accepted);
        t.record("msg-1", TraceStage::Delivered);

        let life = t.lifecycle("msg-1");
        assert_eq!(
            life.iter().map(|e| e.stage).collect::<Vec<_>>(),
            vec![
                TraceStage::Accepted,
                TraceStage::Enqueued,
                TraceStage::Delivered
            ]
        );
        assert_eq!(life[0].at_us, 0);
        assert_eq!(life[1].at_us, 10);
        assert_eq!(life[2].at_us, 25);
        assert!(life.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let (t, _clock) = trace(4);
        for i in 0..10 {
            t.push(&format!("m{i}"), TraceStage::Accepted, i);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let drained = t.drain();
        assert_eq!(drained.first().unwrap().message_id, "m6");
        assert!(t.is_empty());
    }

    #[test]
    fn noop_trace_retains_nothing() {
        let t = EventTrace::noop();
        t.record("m", TraceStage::Accepted);
        t.push("m", TraceStage::Dropped, 5);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(!t.is_active());
    }

    #[test]
    fn zero_capacity_is_noop() {
        let clock = VirtualClock::new();
        let t = EventTrace::new(0, Arc::new(clock));
        assert!(!t.is_active());
    }
}
