//! Hierarchical instrument registry.
//!
//! Instruments live under dot-joined scope paths such as
//! `msg_dispatcher.dest{inria-echo}.queue_depth`. A [`Scope`] is a cheap
//! cloneable handle to one node of that hierarchy; asking a scope for a
//! counter/gauge/histogram is idempotent — the same name always yields a
//! handle onto the same cells, so instrumented components and exporters
//! can each resolve instruments independently.
//!
//! The no-op default: a [`Scope::noop`] scope hands out live instruments
//! that are simply not attached to any registry, so instrumented code is
//! unconditional (no `Option` plumbing) while unobserved runs keep their
//! recordings invisible and unexported.

use std::collections::BTreeMap;
// wsd-lint: allow(std-sync-primitive): wsd-telemetry is dependency-free by design (it must be embeddable everywhere, including under parking_lot itself)
use std::sync::{Arc, Mutex};

use crate::clock::{SharedClock, WallClock};
use crate::hist::Histogram;
use crate::metrics::{Counter, Gauge};
use crate::snapshot::{MetricValue, Snapshot};
use crate::trace::EventTrace;

#[derive(Default)]
struct Instruments {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

struct RegistryInner {
    instruments: Mutex<Instruments>,
    clock: SharedClock,
    trace: EventTrace,
}

/// The root of an instrument hierarchy.
///
/// Cloning is cheap (an `Arc` bump) and all clones observe the same
/// instruments. A registry owns the [`Clock`] its instruments and trace
/// stamp with, and one shared [`EventTrace`] ring.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// A registry stamping with wall-clock time and a default trace ring.
    pub fn new() -> Self {
        Registry::with_clock(Arc::new(WallClock::new()))
    }

    /// A registry stamping with the given clock (e.g. a
    /// [`crate::VirtualClock`] driven by a simulation).
    pub fn with_clock(clock: SharedClock) -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                instruments: Mutex::new(Instruments::default()),
                trace: EventTrace::new(crate::trace::DEFAULT_TRACE_CAPACITY, clock.clone()),
                clock,
            }),
        }
    }

    /// The root scope (empty path).
    pub fn root(&self) -> Scope {
        Scope {
            registry: Some(self.clone()),
            path: String::new(),
        }
    }

    /// A scope at `path` (dot-joined segments).
    pub fn scope(&self, path: &str) -> Scope {
        self.root().child(path)
    }

    /// The registry's time source.
    pub fn clock(&self) -> &SharedClock {
        &self.inner.clock
    }

    /// The shared event-trace ring.
    pub fn trace(&self) -> &EventTrace {
        &self.inner.trace
    }

    /// Captures current values of every registered instrument.
    pub fn snapshot(&self) -> Snapshot {
        let ins = self.inner.instruments.lock().expect("registry lock");
        let mut snap = Snapshot::new(self.inner.clock.now_us());
        for (name, c) in &ins.counters {
            snap.push(name.clone(), MetricValue::Counter(c.get()));
        }
        for (name, g) in &ins.gauges {
            snap.push(
                name.clone(),
                MetricValue::Gauge {
                    value: g.get(),
                    peak: g.peak(),
                },
            );
        }
        for (name, h) in &ins.histograms {
            snap.push(name.clone(), MetricValue::from_histogram(h));
        }
        snap
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ins = self.inner.instruments.lock().expect("registry lock");
        f.debug_struct("Registry")
            .field("counters", &ins.counters.len())
            .field("gauges", &ins.gauges.len())
            .field("histograms", &ins.histograms.len())
            .finish()
    }
}

/// A named node in the instrument hierarchy.
///
/// Scopes are handles: cloning or deriving children never allocates
/// instruments until one is requested by name. A no-op scope (from
/// [`Scope::noop`] or [`Scope::default`]) yields unregistered instruments
/// that record into thin air — instrumented code never branches.
#[derive(Clone, Default)]
pub struct Scope {
    registry: Option<Registry>,
    path: String,
}

impl Scope {
    /// A scope attached to no registry; all instruments it yields are
    /// live but invisible to snapshots.
    pub fn noop() -> Self {
        Scope::default()
    }

    /// Whether this scope is attached to a registry.
    pub fn is_active(&self) -> bool {
        self.registry.is_some()
    }

    /// A child scope; `segment` may itself be dotted.
    pub fn child(&self, segment: &str) -> Scope {
        if segment.is_empty() {
            return self.clone();
        }
        let path = if self.path.is_empty() {
            segment.to_string()
        } else {
            format!("{}.{segment}", self.path)
        };
        Scope {
            registry: self.registry.clone(),
            path,
        }
    }

    /// A labeled child scope: `name{label}`.
    pub fn labeled(&self, name: &str, label: &str) -> Scope {
        self.child(&format!("{name}{{{label}}}"))
    }

    /// This scope's dot-joined path.
    pub fn path(&self) -> &str {
        &self.path
    }

    fn full_name(&self, name: &str) -> String {
        if self.path.is_empty() {
            name.to_string()
        } else {
            format!("{}.{name}", self.path)
        }
    }

    /// The counter `name` under this scope (created on first request).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.registry {
            None => Counter::new(),
            Some(reg) => {
                let mut ins = reg.inner.instruments.lock().expect("registry lock");
                ins.counters
                    .entry(self.full_name(name))
                    .or_default()
                    .clone()
            }
        }
    }

    /// The gauge `name` under this scope (created on first request).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.registry {
            None => Gauge::new(),
            Some(reg) => {
                let mut ins = reg.inner.instruments.lock().expect("registry lock");
                ins.gauges.entry(self.full_name(name)).or_default().clone()
            }
        }
    }

    /// The histogram `name` under this scope (created on first request).
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.registry {
            None => Histogram::new(),
            Some(reg) => {
                let mut ins = reg.inner.instruments.lock().expect("registry lock");
                ins.histograms
                    .entry(self.full_name(name))
                    .or_default()
                    .clone()
            }
        }
    }

    /// The registry's trace ring, or a zero-capacity no-op ring.
    pub fn trace(&self) -> EventTrace {
        match &self.registry {
            None => EventTrace::noop(),
            Some(reg) => reg.inner.trace.clone(),
        }
    }

    /// Current time in µs from the owning registry's clock (0 if no-op).
    pub fn now_us(&self) -> u64 {
        match &self.registry {
            None => 0,
            Some(reg) => reg.inner.clock.now_us(),
        }
    }
}

impl std::fmt::Debug for Scope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope")
            .field("path", &self.path)
            .field("active", &self.is_active())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_yields_same_cells() {
        let reg = Registry::new();
        let a = reg.scope("msg_dispatcher").counter("drops");
        let b = reg.scope("msg_dispatcher").counter("drops");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn labeled_scopes_build_expected_paths() {
        let reg = Registry::new();
        let scope = reg.scope("msg_dispatcher").labeled("dest", "inria-echo");
        assert_eq!(scope.path(), "msg_dispatcher.dest{inria-echo}");
        scope.gauge("queue_depth").set(3);
        let snap = reg.snapshot();
        assert!(snap
            .entries()
            .iter()
            .any(|e| e.name == "msg_dispatcher.dest{inria-echo}.queue_depth"));
    }

    #[test]
    fn noop_scope_records_into_thin_air() {
        let scope = Scope::noop();
        assert!(!scope.is_active());
        let c = scope.counter("x");
        c.inc();
        assert_eq!(c.get(), 1); // the handle itself still works
        assert_eq!(scope.now_us(), 0);
        scope.trace().push("x", crate::TraceStage::Accepted, 0);
        assert!(scope.trace().drain().is_empty());
    }

    #[test]
    fn snapshot_sees_all_instrument_kinds() {
        let reg = Registry::new();
        let s = reg.scope("pool");
        s.counter("spawned").add(4);
        s.gauge("live").set(2);
        s.histogram("wait_us").record(100);
        let snap = reg.snapshot();
        assert_eq!(snap.entries().len(), 3);
    }
}
