//! Counters and gauges.
//!
//! [`Counter`] is striped across cache-line-padded atomic shards — the
//! same sharding idiom as `wsd-concurrent`'s `ShardedMap` — so
//! multi-producer hot paths (the real-threaded servers) don't serialize
//! on one cache line. Reads sum the stripes; increments never lose
//! counts. [`Gauge`] is a single signed cell with a high-water mark,
//! because gauges are read-modify-read and striping would break `peak`.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of stripes per counter. Power of two; sized for the worker
/// counts this workspace uses (pools default to ≤ 32 threads).
const STRIPES: usize = 16;

#[repr(align(64))]
#[derive(Default)]
struct PaddedCell(AtomicU64);

/// Thread-stripe selector: cheap, stable per thread.
fn stripe_index() -> usize {
    use std::cell::Cell;
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|s| {
        let mut ix = s.get();
        if ix == usize::MAX {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            ix = NEXT.fetch_add(1, Ordering::Relaxed) as usize % STRIPES;
            s.set(ix);
        }
        ix
    })
}

/// A monotonically increasing event counter. Cloning shares the cells.
#[derive(Clone, Default)]
pub struct Counter {
    stripes: Arc<[PaddedCell; STRIPES]>,
}

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.stripes[stripe_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all stripes.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A point-in-time signed level with a high-water mark.
#[derive(Clone, Default)]
pub struct Gauge {
    inner: Arc<GaugeInner>,
}

#[derive(Default)]
struct GaugeInner {
    value: AtomicI64,
    peak: AtomicI64,
}

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.inner.value.store(v, Ordering::Relaxed);
        self.inner.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        let now = self.inner.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.inner.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.inner.value.load(Ordering::Relaxed)
    }

    /// Highest level ever observed.
    pub fn peak(&self) -> i64 {
        self.inner.peak.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge")
            .field("value", &self.get())
            .field("peak", &self.peak())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_sums_stripes() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn counter_clones_share_state() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.inc();
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn counter_concurrent_increments_all_land() {
        let c = Counter::new();
        thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_tracks_peak() {
        let g = Gauge::new();
        g.add(5);
        g.add(3);
        g.add(-6);
        assert_eq!(g.get(), 2);
        assert_eq!(g.peak(), 8);
        g.set(1);
        assert_eq!(g.peak(), 8);
    }
}
