//! # wsd-telemetry
//!
//! Virtual-time-aware metrics and event tracing for the WS-Dispatcher
//! workspace.
//!
//! The paper's experiments (IPDPS'05 §5) report drops, queue depths,
//! thread usage and latencies across two very different runtimes: the
//! deterministic discrete-event simulation (`wsd-netsim`, virtual µs)
//! and the real threaded servers (`wsd-core::rt`, wall-clock). This
//! crate provides one instrument set that works in both:
//!
//! - [`Counter`] / [`Gauge`] — striped atomics / level + peak;
//! - [`Histogram`] — log-bucketed distribution with quantile queries
//!   (≤ 12.5% relative error, mergeable across registries);
//! - [`Clock`] — [`WallClock`] for the threaded runtime,
//!   [`VirtualClock`] driven by the simulator's event loop;
//! - [`Registry`] / [`Scope`] — hierarchical named instruments
//!   (`msg_dispatcher.dest{inria-echo}.queue_depth`);
//! - [`EventTrace`] — bounded ring of message lifecycle events keyed by
//!   `wsa:MessageID`;
//! - [`Snapshot`] — mergeable point-in-time capture with text and JSON
//!   exporters.
//!
//! Instrumentation is opt-in at the composition root: components accept
//! a [`Scope`] and default to [`Scope::noop`], whose instruments record
//! but are attached to nothing — no branches on the hot path and no
//! effect on deterministic runs.
//!
//! ```
//! use wsd_telemetry::{Registry, TraceStage};
//!
//! let reg = Registry::new();
//! let disp = reg.scope("msg_dispatcher");
//! disp.counter("enqueued").inc();
//! disp.labeled("dest", "inria-echo").gauge("queue_depth").set(3);
//! disp.histogram("deliver_us").record(420);
//! reg.trace().record("uuid:1234", TraceStage::Enqueued);
//!
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("msg_dispatcher.enqueued"), 1);
//! assert!(snap.to_json().contains("\"msg_dispatcher.enqueued\":1"));
//! ```

mod clock;
mod hist;
mod metrics;
mod registry;
mod snapshot;
mod trace;

pub use clock::{Clock, SharedClock, VirtualClock, WallClock};
pub use hist::Histogram;
pub use metrics::{Counter, Gauge};
pub use registry::{Registry, Scope};
pub use snapshot::{json_string, HistogramSummary, MetricValue, Snapshot, SnapshotEntry};
pub use trace::{EventTrace, TraceEvent, TraceStage, DEFAULT_TRACE_CAPACITY};

#[doc(hidden)]
pub use snapshot::summary_of_samples;

#[cfg(test)]
mod lib_tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn registry_on_virtual_clock_stamps_virtual_time() {
        let clock = VirtualClock::new();
        let reg = Registry::with_clock(Arc::new(clock.clone()));
        clock.advance_to(1_000);
        reg.scope("x").counter("hits").inc();
        reg.trace().record("m", TraceStage::Accepted);
        let snap = reg.snapshot();
        assert_eq!(snap.at_us(), 1_000);
        assert_eq!(reg.trace().events()[0].at_us, 1_000);
    }
}
