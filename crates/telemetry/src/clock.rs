//! Time sources for instruments.
//!
//! The same counters, gauges, histograms and traces must work on both
//! runtimes: the real-threaded servers (wall-clock time) and the
//! deterministic `wsd-netsim` simulation (virtual time). Components
//! therefore never call `Instant::now()` directly — they stamp through a
//! [`Clock`], and the driver decides which implementation backs it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic microsecond time source.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Microseconds since this clock's origin.
    fn now_us(&self) -> u64;
}

/// Wall-clock time, anchored at construction.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is "now".
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// Virtual time, advanced explicitly by a simulation driver.
///
/// Cloning shares the underlying time cell, so the driver keeps one
/// handle to advance while instruments hold others to read. Time never
/// moves backwards (`advance_to` uses a monotonic max), which makes it
/// safe to bind one clock to several simulations running sequentially.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now_us: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A virtual clock at t=0.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Moves virtual time forward to `us` (no-op if already past it).
    pub fn advance_to(&self, us: u64) {
        self.now_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Moves virtual time forward by `us`.
    pub fn advance_by(&self, us: u64) {
        self.now_us.fetch_add(us, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Relaxed)
    }
}

/// A shared, object-safe clock handle.
pub type SharedClock = Arc<dyn Clock>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_advances_and_shares() {
        let c = VirtualClock::new();
        let view = c.clone();
        assert_eq!(view.now_us(), 0);
        c.advance_to(500);
        assert_eq!(view.now_us(), 500);
        c.advance_to(100); // never backwards
        assert_eq!(view.now_us(), 500);
        c.advance_by(50);
        assert_eq!(view.now_us(), 550);
    }

    #[test]
    fn shared_clock_is_object_safe() {
        let c: SharedClock = Arc::new(VirtualClock::new());
        assert_eq!(c.now_us(), 0);
    }
}
