//! Model tests for the telemetry instruments (ISSUE satellite):
//! histogram quantiles vs exact order statistics, and sharded counters
//! under multi-producer stress.

use proptest::prelude::*;
use wsd_telemetry::{Counter, Histogram, MetricValue, Snapshot};

/// Exact order statistic with the same rank convention the histogram
/// documents: index = ceil(n * pct/100) - 1, clamped.
fn exact_percentile(sorted: &[u64], pct: f64) -> u64 {
    let n = sorted.len();
    let ix = ((n as f64 * pct / 100.0).ceil() as usize)
        .saturating_sub(1)
        .min(n - 1);
    sorted[ix]
}

/// One log-bucket's relative error bound: 8 sub-buckets per octave, so
/// a bucket spans at most 12.5% of its lower bound (values < 8 exact).
fn within_one_bucket(estimate: u64, exact: u64) -> bool {
    if exact < 8 {
        return estimate == exact;
    }
    // The estimate is the lower bound of the bucket containing `exact`.
    estimate <= exact && (exact - estimate) as f64 <= exact as f64 * 0.125
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_track_order_statistics(
        mut samples in proptest::collection::vec(0u64..1_000_000, 1..400),
        pct_tenths in 1u64..=1000,
    ) {
        let pct = pct_tenths as f64 / 10.0;
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let exact = exact_percentile(&samples, pct);
        let est = h.percentile(pct);
        prop_assert!(
            within_one_bucket(est, exact),
            "pct {} est {} exact {} (n={})", pct, est, exact, samples.len()
        );
    }

    #[test]
    fn quantiles_survive_snapshot_merge(
        a in proptest::collection::vec(0u64..100_000, 0..200),
        b in proptest::collection::vec(0u64..100_000, 0..200),
    ) {
        // Recording a and b into separate histograms and merging their
        // summaries must equal recording everything into one histogram —
        // the invariant the experiment harness relies on when folding
        // per-worker registries.
        let ha = Histogram::new();
        for &s in &a { ha.record(s); }
        let hb = Histogram::new();
        for &s in &b { hb.record(s); }
        let mut snap_a = Snapshot::new(0);
        snap_a.push("h".into(), MetricValue::from_histogram(&ha));
        let mut snap_b = Snapshot::new(0);
        snap_b.push("h".into(), MetricValue::from_histogram(&hb));
        snap_a.merge(&snap_b);

        let hall = Histogram::new();
        for &s in a.iter().chain(&b) { hall.record(s); }
        let mut direct = Snapshot::new(0);
        direct.push("h".into(), MetricValue::from_histogram(&hall));

        prop_assert_eq!(snap_a.get("h"), direct.get("h"));
    }

    #[test]
    fn histogram_extrema_and_mass_are_exact(
        samples in proptest::collection::vec(0u64..u64::MAX / 2, 1..300),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
        prop_assert_eq!(h.percentile(100.0), h.max());
        let bucket_mass: u64 = h.nonzero_buckets().iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(bucket_mass, h.count());
    }
}

#[test]
fn sharded_counter_never_loses_increments_under_contention() {
    // Heavier than the unit test: many producers, mixed inc/add, clones
    // handed across threads — the total must be exact.
    let threads = 16;
    let per_thread = 50_000u64;
    let c = Counter::new();
    std::thread::scope(|s| {
        for t in 0..threads {
            let c = c.clone();
            s.spawn(move || {
                for i in 0..per_thread {
                    if (i + t) % 4 == 0 {
                        c.add(3);
                    } else {
                        c.inc();
                    }
                }
            });
        }
    });
    let mut expected = 0u64;
    for t in 0..threads {
        for i in 0..per_thread {
            expected += if (i + t) % 4 == 0 { 3 } else { 1 };
        }
    }
    assert_eq!(c.get(), expected);
}

#[test]
fn concurrent_histogram_recording_keeps_total_mass() {
    let h = Histogram::new();
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let h = h.clone();
            s.spawn(move || {
                for i in 0..20_000u64 {
                    h.record(t * 1_000 + i % 977);
                }
            });
        }
    });
    assert_eq!(h.count(), 160_000);
    let mass: u64 = h.nonzero_buckets().iter().map(|&(_, c)| c).sum();
    assert_eq!(mass, 160_000);
}
