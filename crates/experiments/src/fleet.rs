//! Fleet scaling and failover — the scale-out extension beyond the
//! paper's single-dispatcher evaluation.
//!
//! The paper's dispatcher is one intermediary host; §4.3 shows its
//! throughput pinned by one machine's resources. This experiment runs
//! the sharded fleet (`wsd_core::sim::fleet`) at a fixed offered load
//! far above what one instance can ack durably, sweeping the instance
//! count: delivered throughput should scale ~linearly until the offered
//! load is absorbed, because the consistent-hash ring splits both the
//! deposit fsyncs and the drain CPU across instances.
//!
//! The failover scenario kills one instance mid-run and checks the
//! tier's two delivery invariants — no acknowledged message lost, no
//! message delivered twice — plus how long the ring took to rebalance.

use std::time::Duration;

use wsd_core::sim::{run_fleet, FleetParams};
use wsd_core::FleetConfig;

use crate::parallel_map;

/// Instance counts the scaling sweep visits.
pub const INSTANCE_COUNTS: &[usize] = &[1, 2, 4, 8];

/// Simulated client population for the scaling sweep: 200k clients on
/// a 60 s think time offer ~3 333 msg/s — more than 8 disk-bound
/// instances absorb, so every sweep point saturates.
pub const SCALING_CLIENTS: u64 = 200_000;

/// One point of the scaling sweep.
#[derive(Debug, Clone)]
pub struct FleetScaleRow {
    /// Fleet size at this point.
    pub instances: usize,
    /// Messages the generator offered.
    pub generated: u64,
    /// Messages acked durable (202).
    pub acked: u64,
    /// Messages shed with 503 under overload.
    pub shed: u64,
    /// Distinct messages delivered to the sink.
    pub delivered: u64,
    /// Delivered messages per virtual second of offered load.
    pub delivered_per_sec: f64,
}

/// Outcome of the kill-one failover scenario.
#[derive(Debug, Clone)]
pub struct FailoverOutcome {
    /// Fleet size.
    pub instances: usize,
    /// Which instance was killed.
    pub killed: u32,
    /// Messages acked durable across the whole run.
    pub acked: u64,
    /// Distinct messages delivered.
    pub delivered: u64,
    /// Acked messages that never arrived — the invariant says 0.
    pub acked_lost: u64,
    /// Messages delivered more than once — the invariant says 0.
    pub duplicates: u64,
    /// Acked-but-undrained messages the successor replayed.
    pub recovered: u64,
    /// Unacked tail the clients re-routed to live instances.
    pub resent: u64,
    /// Announce → recovery-complete span in virtual µs.
    pub rebalance_latency_us: u64,
}

fn scaling_params(instances: usize, seconds: u64, clients: u64) -> FleetParams {
    FleetParams {
        fleet: FleetConfig {
            instances,
            ..FleetConfig::default()
        },
        services: 64,
        clients,
        duration: Duration::from_secs(seconds),
        ..FleetParams::default()
    }
}

/// Sweeps fleet sizes at a fixed offered load (points run in
/// parallel; each is an independent deterministic simulation).
pub fn run_scaling(seconds: u64, counts: &[usize], clients: u64) -> Vec<FleetScaleRow> {
    parallel_map(counts.to_vec(), |instances| {
        let out = run_fleet(&scaling_params(instances, seconds, clients));
        FleetScaleRow {
            instances,
            generated: out.generated,
            acked: out.acked,
            shed: out.shed,
            delivered: out.delivered,
            delivered_per_sec: out.delivered as f64 / seconds as f64,
        }
    })
}

/// Kills instance 1 of a 4-instance fleet halfway through the run.
/// The drain is made CPU-bound (12 ms/dispatch) so the victim carries
/// an acked-but-undrained backlog — the hard case for handoff.
pub fn run_failover(seconds: u64) -> FailoverOutcome {
    let mut params = scaling_params(4, seconds, 64_000);
    params.services = 16;
    params.dispatch_cost = Duration::from_millis(12);
    params.kill = Some((1, Duration::from_secs(seconds / 2)));
    let out = run_fleet(&params);
    let handoff = out.handoff.as_ref();
    FailoverOutcome {
        instances: 4,
        killed: 1,
        acked: out.acked,
        delivered: out.delivered,
        acked_lost: out.acked_lost,
        duplicates: out.duplicates,
        recovered: handoff.map_or(0, |h| h.recovered),
        resent: out.resent,
        rebalance_latency_us: handoff.map_or(0, |h| h.rebalance_latency_us),
    }
}

/// Prints the scaling sweep the way the paper prints its tables.
pub fn print(rows: &[FleetScaleRow]) {
    println!("fleet scaling: {SCALING_CLIENTS} clients, 64 services, fixed offered load");
    println!("{:>9} {:>10} {:>10} {:>10} {:>10} {:>12}", "instances", "generated", "acked", "shed", "delivered", "msgs/s");
    let base = rows.first().map(|r| r.delivered_per_sec).unwrap_or(0.0);
    for r in rows {
        let speedup = if base > 0.0 { r.delivered_per_sec / base } else { 0.0 };
        println!(
            "{:>9} {:>10} {:>10} {:>10} {:>10} {:>12.1}  ({speedup:.2}x)",
            r.instances, r.generated, r.acked, r.shed, r.delivered, r.delivered_per_sec
        );
    }
}

/// Prints the failover scenario outcome.
pub fn print_failover(o: &FailoverOutcome) {
    println!(
        "fleet failover: killed i{} of {} — acked={} delivered={} acked_lost={} \
         duplicates={} recovered={} resent={} rebalance={}ms",
        o.killed,
        o.instances,
        o.acked,
        o.delivered,
        o.acked_lost,
        o.duplicates,
        o.recovered,
        o.resent,
        o.rebalance_latency_us / 1_000
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_sweep_scales_delivery() {
        let rows = run_scaling(8, &[1, 4], SCALING_CLIENTS);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].delivered as f64 >= rows[0].delivered as f64 * 3.0,
            "4 instances must deliver >=3x one: {} vs {}",
            rows[1].delivered,
            rows[0].delivered
        );
    }

    #[test]
    fn failover_loses_nothing() {
        let o = run_failover(10);
        assert_eq!(o.acked_lost, 0);
        assert_eq!(o.duplicates, 0);
        assert!(o.recovered > 0, "victim must strand acked mail");
    }
}
