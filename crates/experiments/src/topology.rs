//! Shared topology building blocks for the experiment scenarios.
//!
//! Host CPU is modeled inside the service processes (a serialized FIFO
//! CPU per process, see `wsd_core::sim`), so the host-level per-message
//! cost is reduced to a small parse overhead here — otherwise processing
//! would be charged twice.

use wsd_netsim::{profiles, HostConfig, SimDuration};

/// The paper's run length.
pub const MINUTE: SimDuration = SimDuration(60_000_000);

/// Host-level per-KB overhead once real CPU lives in the service process.
pub const PARSE_OVERHEAD: SimDuration = SimDuration(500);

/// Service-process CPU time per message for a machine of `ghz`.
pub fn service_time(ghz: f64) -> SimDuration {
    profiles::cpu_per_kb(ghz)
}

/// Dispatcher routing cost per message: parsing headers and rewriting
/// addresses is roughly a third of full SOAP service processing.
pub fn dispatch_time(ghz: f64) -> SimDuration {
    SimDuration(profiles::cpu_per_kb(ghz).0 / 3)
}

/// Rebases a profile host onto the light parse overhead.
pub fn light_cpu(cfg: HostConfig) -> HostConfig {
    cfg.cpu_per_kb(PARSE_OVERHEAD)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_anchors_fig5_plateau() {
        // inriaFast ≈ 10 ms/message ⇒ ~6000 messages/minute ceiling.
        let t = service_time(3.4).as_secs_f64();
        assert!((0.008..0.014).contains(&t), "{t}");
    }

    #[test]
    fn dispatch_cheaper_than_service() {
        assert!(dispatch_time(3.4) < service_time(3.4));
    }

    #[test]
    fn light_cpu_overrides_profile() {
        let h = light_cpu(profiles::inria_slow("x"));
        assert_eq!(h.cpu_per_kb, PARSE_OVERHEAD);
    }
}
