//! §4.3 calibration: the constants lifted straight from the paper —
//! link speeds from the broadband tests, machine clocks, and the
//! 483-byte test message.

use wsd_netsim::profiles;
use wsd_soap::rpc::{paper_echo_request, PAPER_HTTP_HEADER_BYTES};

/// One calibrated site.
#[derive(Debug, Clone)]
pub struct SiteRow {
    /// Site name as in the paper.
    pub name: &'static str,
    /// Download kbps.
    pub down_kbps: u32,
    /// Upload kbps.
    pub up_kbps: u32,
    /// Whether inbound connections are firewalled.
    pub firewalled: bool,
}

/// The calibration summary.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Per-site link rows.
    pub sites: Vec<SiteRow>,
    /// Serialized size of the echo XML body.
    pub xml_bytes: usize,
    /// Size of the echo HTTP header.
    pub http_header_bytes: usize,
}

/// Builds the calibration summary (also verifying the message size by
/// actually serializing the test message).
pub fn run() -> Calibration {
    let xml_bytes = paper_echo_request().to_xml().len();
    let rows = [
        ("iuLow (cable modem)", profiles::iu_low("a")),
        ("iuHight (IU backbone)", profiles::iu_high("b")),
        ("INRIA (institutional)", profiles::inria_fast("c")),
    ];
    Calibration {
        sites: rows
            .into_iter()
            .map(|(name, cfg)| SiteRow {
                name,
                down_kbps: cfg.down_kbps,
                up_kbps: cfg.up_kbps,
                firewalled: cfg.firewall == wsd_netsim::FirewallPolicy::OutboundOnly,
            })
            .collect(),
        xml_bytes,
        http_header_bytes: PAPER_HTTP_HEADER_BYTES,
    }
}

/// Prints the calibration table.
pub fn print(c: &Calibration) {
    println!("# §4.3 calibration");
    println!("{:<24} {:>10} {:>10} {:>10}", "site", "down_kbps", "up_kbps", "firewall");
    for s in &c.sites {
        println!(
            "{:<24} {:>10} {:>10} {:>10}",
            s.name,
            s.down_kbps,
            s.up_kbps,
            if s.firewalled { "yes" } else { "no" }
        );
    }
    println!(
        "test message: {} B XML + {} B HTTP header = {} B total (paper: 263 + 220 = 483)",
        c.xml_bytes,
        c.http_header_bytes,
        c.xml_bytes + c.http_header_bytes
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsd_soap::rpc::PAPER_XML_BYTES;

    #[test]
    fn message_sizes_match_the_paper() {
        let c = run();
        assert_eq!(c.xml_bytes, PAPER_XML_BYTES);
        assert_eq!(c.xml_bytes + c.http_header_bytes, 483);
    }

    #[test]
    fn link_speeds_match_the_paper() {
        let c = run();
        let find = |n: &str| c.sites.iter().find(|s| s.name.starts_with(n)).unwrap();
        assert_eq!(find("iuLow").down_kbps, 2333);
        assert_eq!(find("iuLow").up_kbps, 288);
        assert_eq!(find("iuHight").down_kbps, 3655);
        assert_eq!(find("iuHight").up_kbps, 2739);
        assert_eq!(find("INRIA").down_kbps, 1335);
        assert_eq!(find("INRIA").up_kbps, 1262);
        assert!(find("INRIA").firewalled);
    }
}
