//! Figure 6 — "Asynchronous communication".
//!
//! The good environment again, but message-style, with the client behind
//! a firewall/NAT (the cable-modem reality the paper motivates): three
//! configurations at 1…50 concurrent clients, y-axis messages/minute
//! processed by the Web Service.
//!
//! * **one-way, response blocked**: client → WS directly; the WS's reply
//!   connections die against the client firewall, stalling its worker
//!   threads — the slowest curve.
//! * **MSG-Dispatcher**: client → WSD → WS; the WS replies through the
//!   dispatcher fine, but the dispatcher's `WsThread`s stall delivering
//!   to the firewalled client — the middle curve.
//! * **MSG-Dispatcher + WS-MsgBox**: replies land in the client's
//!   mailbox; nothing stalls — the best curve above ~10 clients.
//!
//! §4.3.2's thread-explosion bug is reproduced by [`run_oom`]: the
//! thread-per-message WS-MsgBox dies of the simulated `OutOfMemoryError`
//! past ~50 clients while the pooled redesign survives.

use std::sync::Arc;

use wsd_core::config::{MsgBoxConfig, MsgBoxStrategy};
use wsd_core::msg::MsgCore;
use wsd_core::registry::Registry;
use wsd_core::sim::{EchoMode, SimEchoService, SimMsgBox, SimMsgDispatcher, WsThreadConfig};
use wsd_core::url::Url;
use wsd_loadgen::ramp::ClientPlacement;
use wsd_loadgen::{spawn_msg_fleet, MsgClientConfig, ReplyMode};
use wsd_netsim::{profiles, FirewallPolicy, SimDuration, SimTime, Simulation};

use crate::topology::{dispatch_time, light_cpu, service_time};

/// The paper's x-axis (0–50 clients).
pub const CLIENT_COUNTS: &[usize] = &[1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50];

/// The three plotted configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Series {
    /// One-way direct to the WS; responses blocked by the client
    /// firewall.
    DirectBlocked,
    /// Through the MSG-Dispatcher, replies aimed at the (blocked) client
    /// callback.
    Dispatcher,
    /// Through the MSG-Dispatcher with a WS-MsgBox mailbox.
    DispatcherWithMsgBox,
}

/// One plotted point.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Concurrent clients.
    pub clients: usize,
    /// Messages/minute processed by the WS, per series.
    pub direct_blocked_per_min: f64,
    /// Middle curve.
    pub dispatcher_per_min: f64,
    /// Best curve.
    pub msgbox_per_min: f64,
    /// Responses actually retrieved from mailboxes (msgbox series).
    pub responses_fetched: u64,
}

/// Outcome of one series point.
#[derive(Debug, Clone)]
pub struct SeriesPoint {
    /// Messages processed by the WS over the window.
    pub ws_processed: u64,
    /// Messages accepted (`202`) from the clients.
    pub accepted: u64,
    /// Mailbox responses fetched by clients (msgbox series only).
    pub responses_fetched: u64,
}

/// Runs one (series, clients) point.
pub fn run_one(series: Series, clients: usize, seconds: u64) -> SeriesPoint {
    run_point(series, clients, seconds, None)
}

/// Runs one (series, clients) point with telemetry, returning the point
/// plus its metric snapshot (timestamped in virtual time).
pub fn run_one_observed(
    series: Series,
    clients: usize,
    seconds: u64,
) -> (SeriesPoint, wsd_telemetry::Snapshot) {
    let obs = crate::Observed::new();
    let point = run_point(series, clients, seconds, Some(&obs));
    (point, obs.registry.snapshot())
}

fn run_point(
    series: Series,
    clients: usize,
    seconds: u64,
    obs: Option<&crate::Observed>,
) -> SeriesPoint {
    let mut sim = Simulation::new(0x0F16_0600 + clients as u64);
    if let Some(o) = obs {
        sim.bind_telemetry(&o.registry.scope("net"), o.clock.clone());
    }
    // The WS lives on the fast INRIA machine, reachable from the
    // dispatcher (the dispatcher is the firewall's designated opening).
    let ws_host = sim.add_host(
        light_cpu(profiles::inria_fast("ws")).firewall(FirewallPolicy::Open),
    );
    // The clients live behind a NAT/firewall: outbound only.
    let client_host = sim.add_host(
        light_cpu(profiles::iu_high("clients")).firewall(FirewallPolicy::OutboundOnly),
    );

    let service = SimEchoService::new(
        EchoMode::OneWay {
            workers: 16,
            connect_timeout: SimDuration::from_secs(3),
        },
        service_time(3.4),
    );
    let svc_stats = service.stats();
    let sp = sim.spawn(ws_host, Box::new(service));
    sim.listen(sp, 8888);

    let (target, to_address) = match series {
        Series::DirectBlocked => (("ws".to_string(), 8888, "/echo".to_string()),
            "http://ws:8888/echo".to_string()),
        Series::Dispatcher | Series::DispatcherWithMsgBox => {
            let disp_host = sim.add_host(
                light_cpu(profiles::inria_fast("dispatcher")).firewall(FirewallPolicy::Open),
            );
            let registry = Arc::new(Registry::new());
            registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
            let core = MsgCore::new(registry, "http://dispatcher:8080/msg", 11);
            let dispatcher = SimMsgDispatcher::new(
                core,
                dispatch_time(3.4),
                WsThreadConfig {
                    // A modest 2004 pool: small enough that a dozen
                    // blocked client destinations starve forwarding.
                    threads: 8,
                    ..WsThreadConfig::default()
                },
            )
            .with_telemetry(&crate::Observed::scope_or_noop(obs, "msg_dispatcher"));
            let dp = sim.spawn(disp_host, Box::new(dispatcher));
            sim.listen(dp, 8080);
            (
                ("dispatcher".to_string(), 8080, "/msg".to_string()),
                "http://dispatcher/svc/Echo".to_string(),
            )
        }
    };

    let mbox_stats = if series == Series::DispatcherWithMsgBox {
        let mb_host = sim.add_host(
            light_cpu(profiles::inria_fast("msgbox")).firewall(FirewallPolicy::Open),
        );
        let mbox = SimMsgBox::new(
            MsgBoxConfig {
                strategy: MsgBoxStrategy::Pooled { workers: 16 },
                ..MsgBoxConfig::default()
            },
            SimDuration::from_millis(2),
            13,
        )
        .with_telemetry(&crate::Observed::scope_or_noop(obs, "msgbox"));
        let stats = mbox.stats();
        let mp = sim.spawn(mb_host, Box::new(mbox));
        sim.listen(mp, 8082);
        Some(stats)
    } else {
        None
    };

    let reply_mode = match series {
        Series::DispatcherWithMsgBox => ReplyMode::Mailbox {
            host: "msgbox".into(),
            port: 8082,
            poll_interval: SimDuration::from_secs(1),
        },
        // Callback ports are distinct per client ("{port}" expands in
        // the fleet builder), so each client is its own dead
        // destination, like N separate NATed laptops.
        _ => ReplyMode::Callback {
            url: "http://clients:{port}/cb".into(),
        },
    };

    let config = MsgClientConfig {
        target_host: target.0,
        target_port: target.1,
        path: target.2,
        to_address,
        reply_mode,
        connect_timeout: SimDuration::from_secs(3),
        retry_backoff: SimDuration::from_millis(100),
        run_for: SimDuration::from_secs(seconds),
        client_name: format!("{series:?}"),
    };
    let fleet = spawn_msg_fleet(
        &mut sim,
        ClientPlacement::SharedHost(client_host),
        clients,
        &config,
        SimDuration::from_secs(seconds.min(5)),
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(seconds));
    let (sent, _failures, responses) =
        fleet.totals_with_telemetry(&crate::Observed::scope_or_noop(obs, "loadgen"));
    let _ = mbox_stats; // deposits show up as client-fetched responses
    SeriesPoint {
        ws_processed: svc_stats.processed(),
        accepted: sent,
        responses_fetched: responses,
    }
}

/// Runs the full figure.
pub fn run(seconds: u64, counts: &[usize]) -> Vec<Fig6Row> {
    crate::parallel_map(counts.to_vec(), |clients| {
        let a = run_one(Series::DirectBlocked, clients, seconds);
        let b = run_one(Series::Dispatcher, clients, seconds);
        let c = run_one(Series::DispatcherWithMsgBox, clients, seconds);
        let scale = 60.0 / seconds as f64;
        Fig6Row {
            clients,
            direct_blocked_per_min: a.ws_processed as f64 * scale,
            dispatcher_per_min: b.ws_processed as f64 * scale,
            msgbox_per_min: c.ws_processed as f64 * scale,
            responses_fetched: c.responses_fetched,
        }
    })
}

/// Runs the full figure with telemetry: the rows plus one snapshot
/// merged across every point and series.
pub fn run_observed(seconds: u64, counts: &[usize]) -> (Vec<Fig6Row>, wsd_telemetry::Snapshot) {
    let results = crate::parallel_map(counts.to_vec(), |clients| {
        let (a, s1) = run_one_observed(Series::DirectBlocked, clients, seconds);
        let (b, s2) = run_one_observed(Series::Dispatcher, clients, seconds);
        let (c, s3) = run_one_observed(Series::DispatcherWithMsgBox, clients, seconds);
        let scale = 60.0 / seconds as f64;
        let row = Fig6Row {
            clients,
            direct_blocked_per_min: a.ws_processed as f64 * scale,
            dispatcher_per_min: b.ws_processed as f64 * scale,
            msgbox_per_min: c.ws_processed as f64 * scale,
            responses_fetched: c.responses_fetched,
        };
        (row, [s1, s2, s3])
    });
    let mut rows = Vec::new();
    let mut snaps = Vec::new();
    for (row, s) in results {
        rows.push(row);
        snaps.extend(s);
    }
    (rows, crate::merge_snapshots(snaps))
}

/// Prints the figure's series.
pub fn print(rows: &[Fig6Row]) {
    println!("# Figure 6 — Asynchronous communication (messages/minute processed by the WS)");
    println!(
        "{:>8} {:>22} {:>18} {:>18} {:>14}",
        "clients", "oneway_blocked/min", "dispatcher/min", "disp+msgbox/min", "mbox_fetched"
    );
    for r in rows {
        println!(
            "{:>8} {:>22.0} {:>18.0} {:>18.0} {:>14}",
            r.clients,
            r.direct_blocked_per_min,
            r.dispatcher_per_min,
            r.msgbox_per_min,
            r.responses_fetched
        );
    }
}

/// Result of the §4.3.2 thread-explosion reproduction.
#[derive(Debug, Clone)]
pub struct OomOutcome {
    /// Whether the thread-per-message design crashed.
    pub thread_per_message_oom: bool,
    /// Its peak live threads.
    pub thread_per_message_peak: usize,
    /// Whether the pooled redesign crashed.
    pub pooled_oom: bool,
    /// The pooled design's peak live threads.
    pub pooled_peak: usize,
}

/// An open-loop deposit blaster: one-way POSTs at a fixed rate without
/// waiting for acks — the paper's "if the number of messages sent is
/// high" workload.
struct DepositBlaster {
    box_id: String,
    interval: SimDuration,
    /// Extra payload padding bytes (0 keeps the tiny burst body).
    pad: usize,
    conn: Option<wsd_netsim::ConnId>,
    seq: u64,
}

impl wsd_netsim::Process for DepositBlaster {
    fn on_event(&mut self, ctx: &mut wsd_netsim::Ctx<'_>, ev: wsd_netsim::ProcEvent) {
        use wsd_netsim::ProcEvent;
        match ev {
            ProcEvent::Start => {
                self.conn = Some(ctx.connect("msgbox", 8082, SimDuration::from_secs(3)));
            }
            ProcEvent::ConnEstablished { conn }
                if self.conn == Some(conn) => {
                    ctx.set_timer(self.interval, 1);
                }
            ProcEvent::Timer { token: 1 } => {
                if let Some(conn) = self.conn {
                    self.seq += 1;
                    let body = if self.pad == 0 {
                        format!("<burst n=\"{}\"/>", self.seq)
                    } else {
                        format!("<burst n=\"{}\" pad=\"{}\"/>", self.seq, "x".repeat(self.pad))
                    };
                    let req = wsd_http::Request::soap_post(
                        "msgbox:8082",
                        &format!("/deposit/{}", self.box_id),
                        "text/xml",
                        body.into_bytes(),
                    );
                    let _ = ctx.send(
                        conn,
                        wsd_netsim::Payload::from(wsd_http::request_bytes(&req)),
                    );
                    ctx.set_timer(self.interval, 1);
                }
            }
            _ => {}
        }
    }
}

/// Reproduces the WS-MsgBox bug: a burst of `clients` open-loop deposit
/// storms ("each thread tries to send a reply message ... thousands of
/// threads"), first against the shipped thread-per-message design, then
/// against the pooled redesign.
pub fn run_oom(clients: usize, seconds: u64) -> OomOutcome {
    let run = |strategy: MsgBoxStrategy| {
        let mut sim = Simulation::new(0xB00);
        let mb_host =
            sim.add_host(light_cpu(profiles::inria_fast("msgbox")).firewall(FirewallPolicy::Open));
        let client_host = sim.add_host(light_cpu(profiles::iu_high("clients")));
        let mbox = SimMsgBox::new(
            MsgBoxConfig {
                strategy,
                thread_budget: 1000,
                ..MsgBoxConfig::default()
            },
            SimDuration::from_millis(30),
            17,
        )
        .with_thrash_factor(0.05);
        let stats = mbox.stats();
        let mp = sim.spawn(mb_host, Box::new(mbox));
        sim.listen(mp, 8082);
        for _ in 0..clients {
            sim.spawn(
                client_host,
                Box::new(DepositBlaster {
                    box_id: "mbox-any".into(),
                    interval: SimDuration::from_millis(20),
                    pad: 0,
                    conn: None,
                    seq: 0,
                }),
            );
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(seconds));
        (stats.oom(), stats.peak_threads())
    };
    let (tpm_oom, tpm_peak) = run(MsgBoxStrategy::ThreadPerMessage);
    let (pooled_oom, pooled_peak) = run(MsgBoxStrategy::Pooled { workers: 16 });
    OomOutcome {
        thread_per_message_oom: tpm_oom,
        thread_per_message_peak: tpm_peak,
        pooled_oom,
        pooled_peak,
    }
}

/// Prints the OOM reproduction outcome.
pub fn print_oom(o: &OomOutcome) {
    println!("# WS-MsgBox scalability bug (paper §4.3.2)");
    println!(
        "thread-per-message: oom={} peak_threads={}",
        o.thread_per_message_oom, o.thread_per_message_peak
    );
    println!(
        "pooled redesign:    oom={} peak_threads={}",
        o.pooled_oom, o.pooled_peak
    );
}

// ---------------------------------------------------------------------
// The memory wall for stored bodies, and how the durable backend breaks
// it: the paper destroys mailboxes "to free memory space in the
// WS-MsgBox service implementation" because every stored message lives
// on the JVM heap. An open-loop deposit storm that nobody drains kills
// the memory backend once resident bytes cross the heap budget; the
// WAL-backed backend spills bodies to disk and rides the same storm out.
// ---------------------------------------------------------------------

/// Client counts for the durability-wall sweep.
pub const DURABILITY_CLIENT_COUNTS: &[usize] = &[1, 2, 5, 10, 20, 50];

/// One point of the durable-vs-memory wall sweep.
#[derive(Debug, Clone)]
pub struct DurabilityRow {
    /// Concurrent deposit storms.
    pub clients: usize,
    /// Whether the memory backend died of heap exhaustion.
    pub memory_oom: bool,
    /// Deposits the memory backend accepted before dying (or the window
    /// ended).
    pub memory_deposits: u64,
    /// Whether the durable backend died (it must not).
    pub durable_oom: bool,
    /// Deposits the durable backend accepted — each one fsynced, so the
    /// virtual disk makes durability cost simulated time.
    pub durable_deposits: u64,
    /// Bytes the durable backend spilled to disk past its memory budget.
    pub durable_spilled_bytes: u64,
}

/// Outcome of the sweep, with the walls extracted.
#[derive(Debug, Clone)]
pub struct DurabilityOutcome {
    /// Per-client-count results.
    pub rows: Vec<DurabilityRow>,
    /// Smallest client count that killed the memory backend (`None` if
    /// it never died).
    pub memory_wall_clients: Option<usize>,
    /// Same for the durable backend.
    pub durable_wall_clients: Option<usize>,
}

/// Per-client deposit bytes/second of the storm (50 deposits/s of
/// ~260-byte bodies). Used to size the heap budget so the memory wall
/// sits at 2 clients regardless of the run window.
const STORM_BYTES_PER_CLIENT_SEC: u64 = 13_000;

fn run_wall_point(durable: bool, clients: usize, seconds: u64) -> (bool, u64, u64) {
    let reg = wsd_telemetry::Registry::new();
    let mut sim = Simulation::new(0xD00B + clients as u64);
    let mb_host =
        sim.add_host(light_cpu(profiles::inria_fast("msgbox")).firewall(FirewallPolicy::Open));
    let client_host = sim.add_host(light_cpu(profiles::iu_high("clients")));
    let backend = if durable {
        wsd_core::config::MailboxBackend::Durable {
            dir: None,
            store: wsd_store::StoreConfig {
                wal: wsd_store::WalConfig {
                    // Small segments so rotation/checkpointing runs too.
                    segment_bytes: 256 * 1024,
                    sync: wsd_store::SyncMode::Always,
                },
                memory_budget_bytes: 16 * 1024,
                quota_bytes_per_tenant: u64::MAX,
            },
        }
    } else {
        wsd_core::config::MailboxBackend::Memory
    };
    // 1.5× one client's whole-window output: one storm fits, two don't.
    let heap_budget = (STORM_BYTES_PER_CLIENT_SEC * seconds * 3 / 2) as usize;
    let mbox = SimMsgBox::new(
        MsgBoxConfig {
            strategy: MsgBoxStrategy::Pooled { workers: 16 },
            heap_budget_bytes: heap_budget,
            backend,
            ..MsgBoxConfig::default()
        },
        SimDuration::from_millis(2),
        13,
    )
    .with_telemetry(&reg.scope("msgbox"));
    // The storm needs a real mailbox: deposits to unknown boxes are 404s
    // and store nothing.
    let (box_id, _key) = mbox.store().create(0);
    let stats = mbox.stats();
    let mp = sim.spawn(mb_host, Box::new(mbox));
    sim.listen(mp, 8082);
    for _ in 0..clients {
        sim.spawn(
            client_host,
            Box::new(DepositBlaster {
                box_id: box_id.clone(),
                interval: SimDuration::from_millis(20),
                pad: 240,
                conn: None,
                seq: 0,
            }),
        );
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(seconds));
    let spilled = reg.snapshot().gauge_peak("msgbox.store.spilled_bytes").max(0) as u64;
    (stats.oom(), stats.deposits(), spilled)
}

/// Runs the durability-wall sweep.
pub fn run_durability_wall(seconds: u64, counts: &[usize]) -> DurabilityOutcome {
    let rows = crate::parallel_map(counts.to_vec(), |clients| {
        let (memory_oom, memory_deposits, _) = run_wall_point(false, clients, seconds);
        let (durable_oom, durable_deposits, durable_spilled_bytes) =
            run_wall_point(true, clients, seconds);
        DurabilityRow {
            clients,
            memory_oom,
            memory_deposits,
            durable_oom,
            durable_deposits,
            durable_spilled_bytes,
        }
    });
    let memory_wall_clients = rows.iter().find(|r| r.memory_oom).map(|r| r.clients);
    let durable_wall_clients = rows.iter().find(|r| r.durable_oom).map(|r| r.clients);
    DurabilityOutcome {
        rows,
        memory_wall_clients,
        durable_wall_clients,
    }
}

/// Prints the durability-wall sweep.
pub fn print_durability(o: &DurabilityOutcome) {
    println!("# WS-MsgBox memory wall vs wsd-store durable backend");
    println!(
        "{:>8} {:>12} {:>14} {:>13} {:>15} {:>15}",
        "clients", "memory_oom", "memory_deposits", "durable_oom", "durable_deposits", "spilled_bytes"
    );
    for r in &o.rows {
        println!(
            "{:>8} {:>12} {:>14} {:>13} {:>15} {:>15}",
            r.clients,
            r.memory_oom,
            r.memory_deposits,
            r.durable_oom,
            r.durable_deposits,
            r.durable_spilled_bytes
        );
    }
    match (o.memory_wall_clients, o.durable_wall_clients) {
        (Some(m), None) => println!(
            "memory wall at {m} clients; durable backend survived every count \
             (wall moved >= {}x)",
            o.rows.last().map(|r| r.clients / m).unwrap_or(0)
        ),
        (Some(m), Some(d)) => println!("memory wall at {m} clients; durable wall at {d}"),
        (None, _) => println!("memory backend never hit the wall (window too short?)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECS: u64 = 15;

    #[test]
    fn blocked_direct_is_slowest() {
        let a = run_one(Series::DirectBlocked, 20, SECS);
        let c = run_one(Series::DispatcherWithMsgBox, 20, SECS);
        assert!(
            a.ws_processed * 3 < c.ws_processed,
            "direct-blocked {} vs msgbox {}",
            a.ws_processed,
            c.ws_processed
        );
    }

    #[test]
    fn msgbox_wins_above_ten_clients() {
        let b = run_one(Series::Dispatcher, 30, SECS);
        let c = run_one(Series::DispatcherWithMsgBox, 30, SECS);
        assert!(
            c.ws_processed > b.ws_processed,
            "dispatcher {} vs msgbox {}",
            b.ws_processed,
            c.ws_processed
        );
    }

    #[test]
    fn dispatcher_beats_direct_blocked() {
        let a = run_one(Series::DirectBlocked, 30, SECS);
        let b = run_one(Series::Dispatcher, 30, SECS);
        assert!(
            b.ws_processed > a.ws_processed,
            "direct {} vs dispatcher {}",
            a.ws_processed,
            b.ws_processed
        );
    }

    #[test]
    fn mailbox_delivers_responses_to_clients() {
        let c = run_one(Series::DispatcherWithMsgBox, 10, SECS);
        assert!(c.responses_fetched > 0, "{c:?}");
        // Conservation: fetched ≤ processed by the WS.
        assert!(c.responses_fetched <= c.ws_processed);
    }

    #[test]
    fn durable_backend_moves_the_memory_wall_10x() {
        let o = run_durability_wall(5, DURABILITY_CLIENT_COUNTS);
        let wall = o.memory_wall_clients.expect("memory backend must hit the wall");
        assert!(wall <= 5, "memory wall unexpectedly high: {o:?}");
        assert_eq!(o.durable_wall_clients, None, "durable backend died: {o:?}");
        let top = o.rows.last().unwrap();
        assert!(
            top.clients >= wall * 10,
            "sweep does not reach 10x the wall: {o:?}"
        );
        assert!(top.durable_deposits > 0);
        assert!(
            top.durable_spilled_bytes > 0,
            "storm must overflow the durable memory budget: {o:?}"
        );
    }

    #[test]
    fn oom_bug_reproduces_and_pool_fixes_it() {
        let o = run_oom(60, 20);
        assert!(o.thread_per_message_oom, "{o:?}");
        assert!(o.thread_per_message_peak > 1000usize.min(o.thread_per_message_peak + 1) - 1);
        assert!(!o.pooled_oom, "{o:?}");
        assert!(o.pooled_peak <= 16);
    }
}
