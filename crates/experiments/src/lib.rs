//! Reproduction of every table and figure in the paper's evaluation
//! (§4.3), on the deterministic simulated network.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — the 2×2 interaction-semantics matrix |
//! | [`fig4`] | Figure 4 — RPC, low broadband (iuLow ↔ inriaSlow) |
//! | [`fig5`] | Figure 5 — RPC, high connectivity (iuHigh ↔ inriaFast) |
//! | [`fig6`] | Figure 6 — asynchronous messaging (+ the WS-MsgBox OOM bug) |
//! | [`calibration`] | §4.3 link/host/message-size calibration table |
//! | [`connwall`] | §4.3.2 connection wall, rerun on the threaded runtime's reactor |
//! | [`fleet`] | scale-out extension — sharded fleet scaling + kill-one failover |
//!
//! Each module exposes a `run` function returning plain data (so the
//! Criterion benches and integration tests reuse it) and a `print`
//! helper producing the rows the paper plots. Absolute numbers come from
//! a simulator, not the authors' 2004 testbed; the shapes — who wins, by
//! roughly what factor, where the knees fall — are the reproduction
//! target (see `EXPERIMENTS.md`).

#![warn(missing_docs)]

pub mod calibration;
pub mod connwall;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fleet;
pub mod table1;
pub mod topology;

use std::sync::Arc;

use wsd_telemetry::{Registry, Scope, Snapshot, VirtualClock};

/// Per-point observation context: a telemetry registry whose snapshot
/// timestamp follows the simulation's virtual clock.
///
/// Each sweep point builds its own `Observed` (the points run in
/// parallel), and the figure runner merges the per-point snapshots into
/// one figure-level snapshot: counters sum, gauge peaks max.
pub struct Observed {
    /// The registry the point's actors publish into.
    pub registry: Registry,
    /// Clock handle the simulation advances.
    pub clock: VirtualClock,
}

impl Observed {
    /// A fresh registry on a fresh virtual clock at t=0.
    pub fn new() -> Observed {
        let clock = VirtualClock::new();
        Observed {
            registry: Registry::with_clock(Arc::new(clock.clone())),
            clock,
        }
    }

    /// A scope under this point's registry, or a no-op scope when
    /// observation is disabled (`obs` is `None`).
    pub(crate) fn scope_or_noop(obs: Option<&Observed>, name: &str) -> Scope {
        match obs {
            Some(o) => o.registry.scope(name),
            None => Scope::noop(),
        }
    }
}

impl Default for Observed {
    fn default() -> Self {
        Observed::new()
    }
}

/// Merges per-point snapshots into one figure-level snapshot.
pub(crate) fn merge_snapshots(snaps: Vec<Snapshot>) -> Snapshot {
    let mut iter = snaps.into_iter();
    let mut merged = iter.next().unwrap_or_default();
    for s in iter {
        merged.merge(&s);
    }
    merged
}

/// Runs sweep points in parallel, preserving input order.
pub(crate) fn parallel_map<T: Send, R: Send>(
    inputs: Vec<T>,
    f: impl Fn(T) -> R + Sync,
) -> Vec<R> {
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(inputs.len(), || None);
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::new();
        for (slot, input) in out.iter_mut().zip(inputs) {
            handles.push(scope.spawn(move || {
                *slot = Some(f(input));
            }));
        }
        for h in handles {
            h.join().expect("sweep worker panicked");
        }
    });
    out.into_iter().map(|r| r.expect("filled")).collect()
}
