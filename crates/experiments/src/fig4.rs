//! Figure 4 — "RPC communication: low broadband".
//!
//! The paper's worst-case setup: the cable-modem client machine
//! (`iuLow`, 288 kbps uplink, P3@850) ramps 10…2000 concurrent echo
//! clients against the slow INRIA workstation (`inriaSlow`, P3@1GHz)
//! for one minute, direct and through the RPC-Dispatcher. The expected
//! shape: no loss through ~100 connections, loss onset between 100 and
//! 500 (the accept limit), and losses orders of magnitude above
//! deliveries at 2000; the dispatcher tracks the direct curve ("little
//! negative impact on scalability").

use std::sync::Arc;

use wsd_core::registry::Registry;
use wsd_core::sim::{EchoMode, SimEchoService, SimRpcDispatcher};
use wsd_core::url::Url;
use wsd_loadgen::ramp::ClientPlacement;
use wsd_loadgen::{spawn_rpc_fleet, RpcClientConfig, RunTotals};
use wsd_netsim::{profiles, OverLimit, SimDuration, SimTime, Simulation};

use crate::topology::{dispatch_time, light_cpu, service_time};

/// The paper's x-axis.
pub const CLIENT_COUNTS: &[usize] = &[10, 100, 200, 500, 1000, 1500, 2000];

/// Accept limit of the 2004-era server host (the loss-onset knee sits
/// between the paper's 100- and 500-connection points). Overflowing SYNs
/// are silently dropped (full backlog), so each excess attempt costs the
/// client a 3 s connect timeout — which keeps losses comparable to
/// deliveries around 500 connections, as the paper reports.
pub const ACCEPT_LIMIT: usize = 128;

/// The client machine's socket (fd / ephemeral port) ceiling. Past it,
/// attempts fail locally and instantly, which is what makes losses
/// explode to orders of magnitude above deliveries at 2000 connections.
pub const SOCKET_LIMIT: usize = 1024;

/// One plotted point.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Concurrent clients.
    pub clients: usize,
    /// Direct-to-WS series.
    pub direct: RunTotals,
    /// Through-the-dispatcher series.
    pub dispatched: RunTotals,
}

/// Runs one series point.
pub fn run_one(clients: usize, via_dispatcher: bool, seconds: u64) -> RunTotals {
    run_point(clients, via_dispatcher, seconds, None)
}

/// Runs one series point with telemetry, returning the totals plus the
/// point's metric snapshot (timestamped in virtual time).
pub fn run_one_observed(
    clients: usize,
    via_dispatcher: bool,
    seconds: u64,
) -> (RunTotals, wsd_telemetry::Snapshot) {
    let obs = crate::Observed::new();
    let totals = run_point(clients, via_dispatcher, seconds, Some(&obs));
    (totals, obs.registry.snapshot())
}

fn run_point(
    clients: usize,
    via_dispatcher: bool,
    seconds: u64,
    obs: Option<&crate::Observed>,
) -> RunTotals {
    let mut sim = Simulation::new(0x0F16_0400 + clients as u64);
    if let Some(o) = obs {
        sim.bind_telemetry(&o.registry.scope("net"), o.clock.clone());
    }
    let ws_host = sim.add_host(
        light_cpu(profiles::inria_slow("ws"))
            .firewall(wsd_netsim::FirewallPolicy::Open)
            .accept_limit(ACCEPT_LIMIT, OverLimit::Drop),
    );
    let client_host =
        sim.add_host(light_cpu(profiles::iu_low("clients")).outbound_limit(SOCKET_LIMIT));

    let service = SimEchoService::new(EchoMode::Rpc, service_time(1.0));
    let sp = sim.spawn(ws_host, Box::new(service));
    sim.listen(sp, 8888);

    let (target_host, target_port, path) = if via_dispatcher {
        let disp_host = sim.add_host(
            light_cpu(profiles::inria_fast("dispatcher"))
                .firewall(wsd_netsim::FirewallPolicy::Open)
                .accept_limit(ACCEPT_LIMIT, OverLimit::Drop),
        );
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        let dispatcher = SimRpcDispatcher::new(
            registry,
            dispatch_time(3.4),
            SimDuration::from_secs(3),
            SimDuration::from_secs(30),
        )
        .with_telemetry(&crate::Observed::scope_or_noop(obs, "rpc_dispatcher"));
        let dp = sim.spawn(disp_host, Box::new(dispatcher));
        sim.listen(dp, 8081);
        ("dispatcher".to_string(), 8081, "/svc/Echo".to_string())
    } else {
        ("ws".to_string(), 8888, "/echo".to_string())
    };

    let config = RpcClientConfig {
        target_host,
        target_port,
        path,
        connect_timeout: SimDuration::from_secs(3),
        response_timeout: SimDuration::from_secs(20),
        retry_backoff: SimDuration::from_millis(50),
        run_for: SimDuration::from_secs(seconds),
        // The slow client machine's own per-exchange processing.
        think_time: SimDuration::from_millis(300),
    };
    let fleet = spawn_rpc_fleet(
        &mut sim,
        ClientPlacement::SharedHost(client_host),
        clients,
        &config,
        SimDuration::from_secs(seconds.min(5)),
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(seconds));
    fleet.totals_with_telemetry(&crate::Observed::scope_or_noop(obs, "loadgen"))
}

/// Runs the full figure (both series, all points, in parallel).
pub fn run(seconds: u64, counts: &[usize]) -> Vec<Fig4Row> {
    let inputs: Vec<usize> = counts.to_vec();
    crate::parallel_map(inputs, |clients| Fig4Row {
        clients,
        direct: run_one(clients, false, seconds),
        dispatched: run_one(clients, true, seconds),
    })
}

/// Runs the full figure with telemetry: the rows plus one snapshot
/// merged across every point and series.
pub fn run_observed(seconds: u64, counts: &[usize]) -> (Vec<Fig4Row>, wsd_telemetry::Snapshot) {
    let results = crate::parallel_map(counts.to_vec(), |clients| {
        let (direct, s1) = run_one_observed(clients, false, seconds);
        let (dispatched, s2) = run_one_observed(clients, true, seconds);
        (
            Fig4Row {
                clients,
                direct,
                dispatched,
            },
            [s1, s2],
        )
    });
    let mut rows = Vec::new();
    let mut snaps = Vec::new();
    for (row, s) in results {
        rows.push(row);
        snaps.extend(s);
    }
    (rows, crate::merge_snapshots(snaps))
}

/// Prints the figure's series as aligned rows.
pub fn print(rows: &[Fig4Row]) {
    println!("# Figure 4 — RPC communication: low broadband (iuLow -> inriaSlow, 1 virtual minute)");
    println!(
        "{:>8} {:>18} {:>16} {:>18} {:>16}",
        "clients", "direct_transmitted", "direct_not_sent", "disp_transmitted", "disp_not_sent"
    );
    for r in rows {
        println!(
            "{:>8} {:>18} {:>16} {:>18} {:>16}",
            r.clients,
            r.direct.transmitted,
            r.direct.not_sent,
            r.dispatched.transmitted,
            r.dispatched.not_sent
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 10-second windows keep the tests quick; shapes are the target.
    const SECS: u64 = 10;

    #[test]
    fn no_loss_at_ten_clients() {
        let t = run_one(10, false, SECS);
        assert!(t.transmitted > 0);
        assert_eq!(t.not_sent, 0, "paper: no packets lost for small counts");
    }

    #[test]
    fn heavy_loss_past_the_accept_limit() {
        let t = run_one(500, false, SECS);
        assert!(t.not_sent > t.transmitted, "{t:?}");
    }

    #[test]
    fn loss_dwarfs_deliveries_at_two_thousand() {
        let t = run_one(2000, false, SECS);
        assert!(
            t.not_sent > 20 * t.transmitted.max(1),
            "paper: orders of magnitude more lost than delivered — got {t:?}"
        );
    }

    #[test]
    fn dispatcher_tracks_direct_shape() {
        let direct = run_one(100, false, SECS);
        let disp = run_one(100, true, SECS);
        // "Little negative impact": within 2x on the throughput axis.
        assert!(disp.transmitted * 2 >= direct.transmitted, "{direct:?} vs {disp:?}");
    }

    #[test]
    fn transmitted_grows_then_saturates() {
        let t10 = run_one(10, false, SECS);
        let t100 = run_one(100, false, SECS);
        assert!(
            t100.transmitted > t10.transmitted,
            "{} !> {}",
            t100.transmitted,
            t10.transmitted
        );
    }
}
