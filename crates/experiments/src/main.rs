//! CLI regenerating the paper's tables and figures.
//!
//! ```text
//! experiments [--table1] [--fig4] [--fig5] [--fig6] [--fig6-oom]
//!             [--calibration] [--all] [--seconds N] [--quick]
//! ```
//!
//! `--quick` shortens the virtual run window and thins the sweeps (for
//! smoke runs); the default regenerates the paper's one-minute windows.

use wsd_experiments::{calibration, fig4, fig5, fig6, table1};

struct Options {
    table1: bool,
    fig4: bool,
    fig5: bool,
    fig6: bool,
    fig6_oom: bool,
    calibration: bool,
    seconds: u64,
    quick: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        table1: false,
        fig4: false,
        fig5: false,
        fig6: false,
        fig6_oom: false,
        calibration: false,
        seconds: 60,
        quick: false,
    };
    let mut any = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--table1" => {
                opts.table1 = true;
                any = true;
            }
            "--fig4" => {
                opts.fig4 = true;
                any = true;
            }
            "--fig5" => {
                opts.fig5 = true;
                any = true;
            }
            "--fig6" => {
                opts.fig6 = true;
                any = true;
            }
            "--fig6-oom" => {
                opts.fig6_oom = true;
                any = true;
            }
            "--calibration" => {
                opts.calibration = true;
                any = true;
            }
            "--all" => {
                opts.table1 = true;
                opts.fig4 = true;
                opts.fig5 = true;
                opts.fig6 = true;
                opts.fig6_oom = true;
                opts.calibration = true;
                any = true;
            }
            "--quick" => opts.quick = true,
            "--seconds" => {
                let v = args
                    .next()
                    .ok_or_else(|| "--seconds needs a value".to_string())?;
                opts.seconds = v
                    .parse()
                    .map_err(|_| format!("bad --seconds value {v:?}"))?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !any {
        return Err("nothing selected".into());
    }
    if opts.quick {
        opts.seconds = opts.seconds.min(10);
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: experiments [--table1] [--fig4] [--fig5] [--fig6] [--fig6-oom] \
                 [--calibration] [--all] [--seconds N] [--quick]"
            );
            std::process::exit(2);
        }
    };
    if opts.calibration {
        calibration::print(&calibration::run());
        println!();
    }
    if opts.table1 {
        table1::print(&table1::run(opts.seconds.min(30)));
        println!();
    }
    if opts.fig4 {
        let counts: &[usize] = if opts.quick {
            &[10, 100, 500, 2000]
        } else {
            fig4::CLIENT_COUNTS
        };
        fig4::print(&fig4::run(opts.seconds, counts));
        println!();
    }
    if opts.fig5 {
        let counts: &[usize] = if opts.quick {
            &[1, 100, 200, 300]
        } else {
            fig5::CLIENT_COUNTS
        };
        fig5::print(&fig5::run(opts.seconds, counts));
        println!();
    }
    if opts.fig6 {
        let counts: &[usize] = if opts.quick {
            &[1, 10, 30, 50]
        } else {
            fig6::CLIENT_COUNTS
        };
        fig6::print(&fig6::run(opts.seconds, counts));
        println!();
    }
    if opts.fig6_oom {
        fig6::print_oom(&fig6::run_oom(60, opts.seconds.min(30)));
        println!();
    }
}
