//! CLI regenerating the paper's tables and figures.
//!
//! ```text
//! experiments [--table1] [--fig4] [--fig5] [--fig6] [--fig6-oom]
//!             [--fig6-durable] [--connwall] [--fleet] [--calibration]
//!             [--all] [--seconds N] [--quick] [--json PATH]
//! ```
//!
//! `--connwall` reruns the §4.3.2 connection wall on the threaded
//! runtime (real OS threads); `--fig6-durable` sweeps the stored-body
//! memory wall against the WAL-backed durable mailbox backend;
//! `--fleet` sweeps the sharded dispatcher fleet (1→8 instances at
//! fixed load) and runs the kill-one failover scenario. None of the
//! three is part of `--all`, which covers the paper's own figures
//! only.
//!
//! `--quick` shortens the virtual run window and thins the sweeps (for
//! smoke runs); the default regenerates the paper's one-minute windows.
//! `--json PATH` writes every selected figure's series plus its merged
//! telemetry snapshot as one JSON document. The figure runners observe
//! through `wsd-telemetry` scopes, which never feed back into the
//! simulation: the series are identical with or without observation.

use wsd_experiments::{calibration, connwall, fig4, fig5, fig6, fleet, table1};
use wsd_loadgen::{LatencySummary, RunTotals};
use wsd_telemetry::Snapshot;

struct Options {
    table1: bool,
    fig4: bool,
    fig5: bool,
    fig6: bool,
    fig6_oom: bool,
    fig6_durable: bool,
    connwall: bool,
    fleet: bool,
    calibration: bool,
    seconds: u64,
    quick: bool,
    json: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        table1: false,
        fig4: false,
        fig5: false,
        fig6: false,
        fig6_oom: false,
        fig6_durable: false,
        connwall: false,
        fleet: false,
        calibration: false,
        seconds: 60,
        quick: false,
        json: None,
    };
    let mut any = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--table1" => {
                opts.table1 = true;
                any = true;
            }
            "--fig4" => {
                opts.fig4 = true;
                any = true;
            }
            "--fig5" => {
                opts.fig5 = true;
                any = true;
            }
            "--fig6" => {
                opts.fig6 = true;
                any = true;
            }
            "--fig6-oom" => {
                opts.fig6_oom = true;
                any = true;
            }
            "--fig6-durable" => {
                opts.fig6_durable = true;
                any = true;
            }
            "--connwall" => {
                opts.connwall = true;
                any = true;
            }
            "--fleet" => {
                opts.fleet = true;
                any = true;
            }
            "--calibration" => {
                opts.calibration = true;
                any = true;
            }
            "--all" => {
                opts.table1 = true;
                opts.fig4 = true;
                opts.fig5 = true;
                opts.fig6 = true;
                opts.fig6_oom = true;
                opts.calibration = true;
                any = true;
            }
            "--quick" => opts.quick = true,
            "--seconds" => {
                let v = args
                    .next()
                    .ok_or_else(|| "--seconds needs a value".to_string())?;
                opts.seconds = v
                    .parse()
                    .map_err(|_| format!("bad --seconds value {v:?}"))?;
            }
            "--json" => {
                let v = args
                    .next()
                    .ok_or_else(|| "--json needs a path".to_string())?;
                opts.json = Some(v);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !any {
        return Err("nothing selected".into());
    }
    if opts.quick {
        opts.seconds = opts.seconds.min(10);
    }
    Ok(opts)
}

/// One line of operational context after each figure: losses, the
/// deepest any queue got, and how well connections were amortized.
fn print_telemetry_summary(fig: &str, snap: &Snapshot) {
    let drops = snap.counter_sum("dropped")
        + snap.counter("loadgen.not_sent")
        + snap.counter("loadgen.send_failures");
    let queue_hwm = snap
        .gauge_peak_max("queue_depth")
        .max(snap.gauge_peak_max("backlog_depth"))
        .max(snap.gauge_peak_max("depth"));
    let attempts = snap.counter("net.connect_attempts");
    let established = snap.counter("net.conns_established");
    let delivered = snap.counter("net.messages_delivered");
    let reuse = if established > 0 {
        delivered as f64 / established as f64
    } else {
        0.0
    };
    println!(
        "telemetry[{fig}]: drops={drops} queue_hwm={queue_hwm} \
         conns={established}/{attempts} msgs_per_conn={reuse:.1}"
    );
}

fn json_latency(l: &Option<LatencySummary>) -> String {
    match l {
        None => "null".to_string(),
        Some(l) => format!(
            "{{\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p95_us\":{},\"max_us\":{}}}",
            l.count, l.mean_us, l.p50_us, l.p95_us, l.max_us
        ),
    }
}

fn json_totals(t: &RunTotals) -> String {
    format!(
        "{{\"transmitted\":{},\"not_sent\":{},\"latency\":{}}}",
        t.transmitted,
        t.not_sent,
        json_latency(&t.latency)
    )
}

fn json_fig4(rows: &[fig4::Fig4Row], snap: &Snapshot) -> String {
    let rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"clients\":{},\"direct\":{},\"dispatched\":{}}}",
                r.clients,
                json_totals(&r.direct),
                json_totals(&r.dispatched)
            )
        })
        .collect();
    format!(
        "{{\"rows\":[{}],\"telemetry\":{}}}",
        rows.join(","),
        snap.to_json()
    )
}

fn json_fig5(rows: &[fig5::Fig5Row], snap: &Snapshot) -> String {
    let rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"clients\":{},\"direct_per_min\":{},\"dispatched_per_min\":{},\
                 \"direct_not_sent\":{},\"dispatched_not_sent\":{}}}",
                r.clients,
                r.direct_per_min,
                r.dispatched_per_min,
                r.direct_not_sent,
                r.dispatched_not_sent
            )
        })
        .collect();
    format!(
        "{{\"rows\":[{}],\"telemetry\":{}}}",
        rows.join(","),
        snap.to_json()
    )
}

fn json_fig6(rows: &[fig6::Fig6Row], snap: &Snapshot) -> String {
    let rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"clients\":{},\"direct_blocked_per_min\":{},\"dispatcher_per_min\":{},\
                 \"msgbox_per_min\":{},\"responses_fetched\":{}}}",
                r.clients,
                r.direct_blocked_per_min,
                r.dispatcher_per_min,
                r.msgbox_per_min,
                r.responses_fetched
            )
        })
        .collect();
    format!(
        "{{\"rows\":[{}],\"telemetry\":{}}}",
        rows.join(","),
        snap.to_json()
    )
}

fn json_fig6_durable(o: &fig6::DurabilityOutcome) -> String {
    let rows: Vec<String> = o
        .rows
        .iter()
        .map(|r| {
            format!(
                "{{\"clients\":{},\"memory_oom\":{},\"memory_deposits\":{},\
                 \"durable_oom\":{},\"durable_deposits\":{},\"durable_spilled_bytes\":{}}}",
                r.clients,
                r.memory_oom,
                r.memory_deposits,
                r.durable_oom,
                r.durable_deposits,
                r.durable_spilled_bytes
            )
        })
        .collect();
    let wall = |w: Option<usize>| w.map(|c| c.to_string()).unwrap_or_else(|| "null".to_string());
    format!(
        "{{\"rows\":[{}],\"memory_wall_clients\":{},\"durable_wall_clients\":{}}}",
        rows.join(","),
        wall(o.memory_wall_clients),
        wall(o.durable_wall_clients)
    )
}

fn json_connwall(o: &connwall::ConnWallOutcome) -> String {
    let point = |p: &connwall::ConnWallPoint| {
        format!(
            "{{\"clients\":{},\"crashed\":{},\"peak_threads\":{},\"deposits\":{},\"open_conns\":{}}}",
            p.clients,
            p.crashed,
            p.peak_threads,
            p.deposits,
            p.open_conns
                .map(|n| n.to_string())
                .unwrap_or_else(|| "null".to_string()),
        )
    };
    let tpm: Vec<String> = o.thread_per_message.iter().map(point).collect();
    let reactor: Vec<String> = o.reactor.iter().map(point).collect();
    format!(
        "{{\"thread_budget\":{},\"pool_workers\":{},\"thread_per_message\":[{}],\"reactor\":[{}]}}",
        connwall::THREAD_BUDGET,
        connwall::POOL_WORKERS,
        tpm.join(","),
        reactor.join(",")
    )
}

fn json_fleet(rows: &[fleet::FleetScaleRow], f: &fleet::FailoverOutcome) -> String {
    let rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"instances\":{},\"generated\":{},\"acked\":{},\"shed\":{},\
                 \"delivered\":{},\"delivered_per_sec\":{:.1}}}",
                r.instances, r.generated, r.acked, r.shed, r.delivered, r.delivered_per_sec
            )
        })
        .collect();
    format!(
        "{{\"scaling\":[{}],\"failover\":{{\"instances\":{},\"killed\":{},\"acked\":{},\
         \"delivered\":{},\"acked_lost\":{},\"duplicates\":{},\"recovered\":{},\
         \"resent\":{},\"rebalance_latency_us\":{}}}}}",
        rows.join(","),
        f.instances,
        f.killed,
        f.acked,
        f.delivered,
        f.acked_lost,
        f.duplicates,
        f.recovered,
        f.resent,
        f.rebalance_latency_us
    )
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: experiments [--table1] [--fig4] [--fig5] [--fig6] [--fig6-oom] \
                 [--fig6-durable] [--connwall] [--fleet] [--calibration] [--all] \
                 [--seconds N] [--quick] [--json PATH]"
            );
            std::process::exit(2);
        }
    };
    let mut json_figures: Vec<(&str, String)> = Vec::new();
    if opts.calibration {
        calibration::print(&calibration::run());
        println!();
    }
    if opts.table1 {
        table1::print(&table1::run(opts.seconds.min(30)));
        println!();
    }
    if opts.fig4 {
        let counts: &[usize] = if opts.quick {
            &[10, 100, 500, 2000]
        } else {
            fig4::CLIENT_COUNTS
        };
        let (rows, snap) = fig4::run_observed(opts.seconds, counts);
        fig4::print(&rows);
        print_telemetry_summary("fig4", &snap);
        json_figures.push(("fig4", json_fig4(&rows, &snap)));
        println!();
    }
    if opts.fig5 {
        let counts: &[usize] = if opts.quick {
            &[1, 100, 200, 300]
        } else {
            fig5::CLIENT_COUNTS
        };
        let (rows, snap) = fig5::run_observed(opts.seconds, counts);
        fig5::print(&rows);
        print_telemetry_summary("fig5", &snap);
        json_figures.push(("fig5", json_fig5(&rows, &snap)));
        println!();
    }
    if opts.fig6 {
        let counts: &[usize] = if opts.quick {
            &[1, 10, 30, 50]
        } else {
            fig6::CLIENT_COUNTS
        };
        let (rows, snap) = fig6::run_observed(opts.seconds, counts);
        fig6::print(&rows);
        print_telemetry_summary("fig6", &snap);
        json_figures.push(("fig6", json_fig6(&rows, &snap)));
        println!();
    }
    if opts.fig6_oom {
        fig6::print_oom(&fig6::run_oom(60, opts.seconds.min(30)));
        println!();
    }
    if opts.fig6_durable {
        let outcome = fig6::run_durability_wall(
            opts.seconds.min(30),
            fig6::DURABILITY_CLIENT_COUNTS,
        );
        fig6::print_durability(&outcome);
        json_figures.push(("fig6_durable", json_fig6_durable(&outcome)));
        println!();
    }
    if opts.connwall {
        let (tpm, reactor): (&[usize], &[usize]) = if opts.quick {
            (&[25, 60], &[200])
        } else {
            (connwall::TPM_COUNTS, connwall::REACTOR_COUNTS)
        };
        let outcome = connwall::run(tpm, reactor);
        connwall::print(&outcome);
        json_figures.push(("connwall", json_connwall(&outcome)));
        println!();
    }
    if opts.fleet {
        let counts: &[usize] = if opts.quick {
            &[1, 2, 4]
        } else {
            fleet::INSTANCE_COUNTS
        };
        let rows = fleet::run_scaling(opts.seconds.min(30), counts, fleet::SCALING_CLIENTS);
        fleet::print(&rows);
        let failover = fleet::run_failover(opts.seconds.clamp(4, 30));
        fleet::print_failover(&failover);
        json_figures.push(("fleet", json_fleet(&rows, &failover)));
        println!();
    }
    if let Some(path) = &opts.json {
        let figs: Vec<String> = json_figures
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        let doc = format!(
            "{{\"seconds\":{},\"figures\":{{{}}}}}\n",
            opts.seconds,
            figs.join(",")
        );
        // wsd-lint: allow(raw-file-io): figure JSON is a report artifact, not durable state
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}
