//! Figure 5 — "RPC communication: high connectivity".
//!
//! The good environment: the Indiana backbone machine (`iuHigh`,
//! SunFire) against the fast INRIA workstation (`inriaFast`, P4@3.4).
//! No packets are lost; throughput climbs with clients, plateaus around
//! 200 connections in the paper's 5000–6000 messages/minute band, and
//! sags slightly beyond that from contention. The dispatcher curve hugs
//! the direct one.

use std::sync::Arc;

use wsd_core::registry::Registry;
use wsd_core::sim::{EchoMode, SimEchoService, SimRpcDispatcher};
use wsd_core::url::Url;
use wsd_loadgen::ramp::ClientPlacement;
use wsd_loadgen::{spawn_rpc_fleet, RpcClientConfig, RunTotals};
use wsd_netsim::{profiles, OverLimit, SimDuration, SimTime, Simulation};

use crate::topology::{dispatch_time, light_cpu, service_time};

/// The paper's x-axis (0–300 connections).
pub const CLIENT_COUNTS: &[usize] = &[1, 25, 50, 100, 150, 200, 250, 300];

/// Per-open-connection service-time penalty producing the post-plateau
/// droop ("after 200 connections message throughput ... even gets
/// slightly worsened due to contention").
pub const CONN_PENALTY: f64 = 0.0005;

/// Client-side processing between exchanges (the 2004 client's own SOAP
/// stack); this is what places the saturation knee near 200 connections
/// instead of saturating the service with a handful of clients.
pub const THINK_TIME: SimDuration = SimDuration(1_200_000);

/// One plotted point.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Concurrent clients.
    pub clients: usize,
    /// Direct messages per minute.
    pub direct_per_min: f64,
    /// Dispatched messages per minute.
    pub dispatched_per_min: f64,
    /// Losses (expected 0 in this environment).
    pub direct_not_sent: u64,
    /// Losses through the dispatcher.
    pub dispatched_not_sent: u64,
}

/// Runs one series point, returning raw totals.
pub fn run_one(clients: usize, via_dispatcher: bool, seconds: u64) -> RunTotals {
    run_point(clients, via_dispatcher, seconds, None)
}

/// Runs one series point with telemetry, returning the totals plus the
/// point's metric snapshot (timestamped in virtual time).
pub fn run_one_observed(
    clients: usize,
    via_dispatcher: bool,
    seconds: u64,
) -> (RunTotals, wsd_telemetry::Snapshot) {
    let obs = crate::Observed::new();
    let totals = run_point(clients, via_dispatcher, seconds, Some(&obs));
    (totals, obs.registry.snapshot())
}

fn run_point(
    clients: usize,
    via_dispatcher: bool,
    seconds: u64,
    obs: Option<&crate::Observed>,
) -> RunTotals {
    let mut sim = Simulation::new(0x0F15_0500 + clients as u64);
    if let Some(o) = obs {
        sim.bind_telemetry(&o.registry.scope("net"), o.clock.clone());
    }
    let ws_host = sim.add_host(
        light_cpu(profiles::inria_fast("ws"))
            .firewall(wsd_netsim::FirewallPolicy::Open)
            .accept_limit(2_000, OverLimit::Refuse),
    );
    let client_host = sim.add_host(light_cpu(profiles::iu_high("clients")));

    let service = SimEchoService::new(EchoMode::Rpc, service_time(3.4))
        .with_conn_penalty(CONN_PENALTY);
    let sp = sim.spawn(ws_host, Box::new(service));
    sim.listen(sp, 8888);

    let (target_host, target_port, path) = if via_dispatcher {
        let disp_host = sim.add_host(
            light_cpu(profiles::inria_fast("dispatcher"))
                .firewall(wsd_netsim::FirewallPolicy::Open)
                .accept_limit(2_000, OverLimit::Refuse),
        );
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        let dispatcher = SimRpcDispatcher::new(
            registry,
            dispatch_time(3.4),
            SimDuration::from_secs(3),
            SimDuration::from_secs(30),
        )
        .with_telemetry(&crate::Observed::scope_or_noop(obs, "rpc_dispatcher"));
        let dp = sim.spawn(disp_host, Box::new(dispatcher));
        sim.listen(dp, 8081);
        ("dispatcher".to_string(), 8081, "/svc/Echo".to_string())
    } else {
        ("ws".to_string(), 8888, "/echo".to_string())
    };

    let config = RpcClientConfig {
        target_host,
        target_port,
        path,
        connect_timeout: SimDuration::from_secs(3),
        response_timeout: SimDuration::from_secs(30),
        retry_backoff: SimDuration::from_millis(50),
        run_for: SimDuration::from_secs(seconds),
        think_time: THINK_TIME,
    };
    let fleet = spawn_rpc_fleet(
        &mut sim,
        ClientPlacement::SharedHost(client_host),
        clients,
        &config,
        SimDuration::from_secs(seconds.min(5)),
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(seconds));
    fleet.totals_with_telemetry(&crate::Observed::scope_or_noop(obs, "loadgen"))
}

/// Runs the full figure.
pub fn run(seconds: u64, counts: &[usize]) -> Vec<Fig5Row> {
    crate::parallel_map(counts.to_vec(), |clients| {
        let direct = run_one(clients, false, seconds);
        let dispatched = run_one(clients, true, seconds);
        Fig5Row {
            clients,
            direct_per_min: direct.per_minute(seconds as f64),
            dispatched_per_min: dispatched.per_minute(seconds as f64),
            direct_not_sent: direct.not_sent,
            dispatched_not_sent: dispatched.not_sent,
        }
    })
}

/// Runs the full figure with telemetry: the rows plus one snapshot
/// merged across every point and series.
pub fn run_observed(seconds: u64, counts: &[usize]) -> (Vec<Fig5Row>, wsd_telemetry::Snapshot) {
    let results = crate::parallel_map(counts.to_vec(), |clients| {
        let (direct, s1) = run_one_observed(clients, false, seconds);
        let (dispatched, s2) = run_one_observed(clients, true, seconds);
        let row = Fig5Row {
            clients,
            direct_per_min: direct.per_minute(seconds as f64),
            dispatched_per_min: dispatched.per_minute(seconds as f64),
            direct_not_sent: direct.not_sent,
            dispatched_not_sent: dispatched.not_sent,
        };
        (row, [s1, s2])
    });
    let mut rows = Vec::new();
    let mut snaps = Vec::new();
    for (row, s) in results {
        rows.push(row);
        snaps.extend(s);
    }
    (rows, crate::merge_snapshots(snaps))
}

/// Prints the figure's series.
pub fn print(rows: &[Fig5Row]) {
    println!("# Figure 5 — RPC communication: high connectivity (iuHigh -> inriaFast)");
    println!(
        "{:>8} {:>16} {:>16} {:>12} {:>12}",
        "clients", "direct_msg/min", "disp_msg/min", "direct_lost", "disp_lost"
    );
    for r in rows {
        println!(
            "{:>8} {:>16.0} {:>16.0} {:>12} {:>12}",
            r.clients,
            r.direct_per_min,
            r.dispatched_per_min,
            r.direct_not_sent,
            r.dispatched_not_sent
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECS: u64 = 10;

    #[test]
    fn no_losses_in_the_good_environment() {
        for clients in [25, 200] {
            let t = run_one(clients, false, SECS);
            assert_eq!(t.not_sent, 0, "clients={clients}: {t:?}");
            let t = run_one(clients, true, SECS);
            assert_eq!(t.not_sent, 0, "via dispatcher, clients={clients}: {t:?}");
        }
    }

    #[test]
    fn throughput_plateaus_in_the_paper_band() {
        let t = run_one(200, false, 20);
        let per_min = t.per_minute(20.0);
        assert!(
            (4_000.0..8_000.0).contains(&per_min),
            "plateau at {per_min}/min"
        );
    }

    #[test]
    fn plateau_does_not_grow_past_200() {
        let at200 = run_one(200, false, SECS).per_minute(SECS as f64);
        let at300 = run_one(300, false, SECS).per_minute(SECS as f64);
        assert!(
            at300 <= at200 * 1.1,
            "no improvement past 200: {at200} vs {at300}"
        );
    }

    #[test]
    fn dispatcher_close_to_direct() {
        let d = run_one(100, false, SECS).per_minute(SECS as f64);
        let v = run_one(100, true, SECS).per_minute(SECS as f64);
        assert!(v >= d * 0.6, "direct {d}, dispatched {v}");
    }
}
