//! Table 1 — "Possible interactions between Web Service peers using
//! WS-Dispatcher": the 2×2 matrix of {RPC, messaging} clients against
//! {RPC, messaging} services, reproduced as four measured scenarios.
//!
//! | | RPC service | Messaging service |
//! |---|---|---|
//! | **RPC client** | (1) limited but very popular — forwarded RPC | (2) very limited — fails when the reply is late |
//! | **Messaging client** | (3) limited — the dispatcher translates RPC responses into messages | (4) unlimited — no transport time limit |

use std::sync::Arc;

use wsd_core::config::MsgBoxConfig;
use wsd_core::msg::MsgCore;
use wsd_core::registry::Registry;
use wsd_core::sim::{
    EchoMode, SimEchoService, SimMsgBox, SimMsgDispatcher, SimRpcDispatcher, WsThreadConfig,
};
use wsd_core::url::Url;
use wsd_loadgen::ramp::ClientPlacement;
use wsd_loadgen::{
    spawn_msg_fleet, spawn_rpc_fleet, MsgClientConfig, ReplyMode, RpcClientConfig,
};
use wsd_netsim::{profiles, FirewallPolicy, SimDuration, SimTime, Simulation};

use crate::topology::{dispatch_time, light_cpu, service_time};

/// The four quadrants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quadrant {
    /// RPC client → RPC service, RPC-Dispatcher forwarding.
    RpcToRpc,
    /// RPC client → messaging service: the reply never returns on the
    /// client's connection.
    RpcToMsg,
    /// Messaging client → RPC service: the dispatcher translates
    /// synchronous responses into reply messages.
    MsgToRpc,
    /// Messaging client → messaging service: fully asynchronous.
    MsgToMsg,
}

/// One measured quadrant.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Which quadrant.
    pub quadrant: Quadrant,
    /// Completed request/response exchanges per minute.
    pub exchanges_per_min: f64,
    /// Failed attempts over the window.
    pub failures: u64,
    /// The paper's verdict for this cell.
    pub verdict: &'static str,
}

/// Clients used in every quadrant.
pub const CLIENTS: usize = 20;

/// A service slow enough to overrun the RPC client's response timeout in
/// quadrant 2 trials? No — the failure there is structural (the reply
/// flows as a separate message the RPC client cannot receive), so the
/// standard fast service is used everywhere.
pub fn run_one(quadrant: Quadrant, seconds: u64) -> Table1Row {
    match quadrant {
        Quadrant::RpcToRpc => rpc_client_run(false, seconds),
        Quadrant::RpcToMsg => rpc_client_run(true, seconds),
        Quadrant::MsgToRpc => msg_client_run(true, seconds),
        Quadrant::MsgToMsg => msg_client_run(false, seconds),
    }
}

/// Quadrants 1 and 2: an RPC client fleet, against an RPC service behind
/// the RPC-Dispatcher, or against a messaging service behind the
/// MSG-Dispatcher.
fn rpc_client_run(msg_service: bool, seconds: u64) -> Table1Row {
    let mut sim = Simulation::new(0x7AB1);
    let ws_host =
        sim.add_host(light_cpu(profiles::inria_fast("ws")).firewall(FirewallPolicy::Open));
    let disp_host = sim
        .add_host(light_cpu(profiles::inria_fast("dispatcher")).firewall(FirewallPolicy::Open));
    let client_host = sim.add_host(light_cpu(profiles::iu_high("clients")));

    let registry = Arc::new(Registry::new());
    registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());

    if msg_service {
        let service = SimEchoService::new(
            EchoMode::OneWay {
                workers: 16,
                connect_timeout: SimDuration::from_secs(3),
            },
            service_time(3.4),
        );
        let sp = sim.spawn(ws_host, Box::new(service));
        sim.listen(sp, 8888);
        let core = MsgCore::new(registry, "http://dispatcher:8080/msg", 3);
        let dispatcher =
            SimMsgDispatcher::new(core, dispatch_time(3.4), WsThreadConfig::default());
        let dp = sim.spawn(disp_host, Box::new(dispatcher));
        sim.listen(dp, 8080);
    } else {
        let service = SimEchoService::new(EchoMode::Rpc, service_time(3.4));
        let sp = sim.spawn(ws_host, Box::new(service));
        sim.listen(sp, 8888);
        let dispatcher = SimRpcDispatcher::new(
            registry,
            dispatch_time(3.4),
            SimDuration::from_secs(3),
            SimDuration::from_secs(10),
        );
        let dp = sim.spawn(disp_host, Box::new(dispatcher));
        sim.listen(dp, 8081);
    }

    let config = RpcClientConfig {
        target_host: "dispatcher".into(),
        target_port: if msg_service { 8080 } else { 8081 },
        path: if msg_service { "/msg".into() } else { "/svc/Echo".into() },
        connect_timeout: SimDuration::from_secs(3),
        response_timeout: SimDuration::from_secs(5),
        retry_backoff: SimDuration::from_millis(100),
        run_for: SimDuration::from_secs(seconds),
        think_time: SimDuration::ZERO,
    };
    let fleet = spawn_rpc_fleet(
        &mut sim,
        ClientPlacement::SharedHost(client_host),
        CLIENTS,
        &config,
        SimDuration::from_secs(2),
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(seconds));
    let totals = fleet.totals();
    Table1Row {
        quadrant: if msg_service {
            Quadrant::RpcToMsg
        } else {
            Quadrant::RpcToRpc
        },
        exchanges_per_min: totals.per_minute(seconds as f64),
        failures: totals.not_sent,
        verdict: if msg_service {
            "very limited (reply comes as a message the RPC client never sees)"
        } else {
            "limited but very popular (RPC connection is forwarded)"
        },
    }
}

/// Quadrants 3 and 4: a messaging client fleet with mailboxes, against
/// an RPC service (dispatcher translates) or a messaging service.
fn msg_client_run(rpc_service: bool, seconds: u64) -> Table1Row {
    let mut sim = Simulation::new(0x7AB2);
    let ws_host =
        sim.add_host(light_cpu(profiles::inria_fast("ws")).firewall(FirewallPolicy::Open));
    let disp_host = sim
        .add_host(light_cpu(profiles::inria_fast("dispatcher")).firewall(FirewallPolicy::Open));
    let mb_host =
        sim.add_host(light_cpu(profiles::inria_fast("msgbox")).firewall(FirewallPolicy::Open));
    let client_host = sim.add_host(
        light_cpu(profiles::iu_high("clients")).firewall(FirewallPolicy::OutboundOnly),
    );

    if rpc_service {
        let service = SimEchoService::new(EchoMode::Rpc, service_time(3.4));
        let sp = sim.spawn(ws_host, Box::new(service));
        sim.listen(sp, 8888);
    } else {
        let service = SimEchoService::new(
            EchoMode::OneWay {
                workers: 16,
                connect_timeout: SimDuration::from_secs(3),
            },
            service_time(3.4),
        );
        let sp = sim.spawn(ws_host, Box::new(service));
        sim.listen(sp, 8888);
    }

    let registry = Arc::new(Registry::new());
    registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
    let core = MsgCore::new(registry, "http://dispatcher:8080/msg", 3);
    let dispatcher = SimMsgDispatcher::new(core, dispatch_time(3.4), WsThreadConfig::default());
    let dp = sim.spawn(disp_host, Box::new(dispatcher));
    sim.listen(dp, 8080);

    let mbox = SimMsgBox::new(MsgBoxConfig::default(), SimDuration::from_millis(2), 5);
    let mp = sim.spawn(mb_host, Box::new(mbox));
    sim.listen(mp, 8082);

    let config = MsgClientConfig {
        target_host: "dispatcher".into(),
        target_port: 8080,
        path: "/msg".into(),
        to_address: "http://dispatcher/svc/Echo".into(),
        reply_mode: ReplyMode::Mailbox {
            host: "msgbox".into(),
            port: 8082,
            poll_interval: SimDuration::from_millis(500),
        },
        connect_timeout: SimDuration::from_secs(3),
        retry_backoff: SimDuration::from_millis(100),
        run_for: SimDuration::from_secs(seconds),
        client_name: "t1".into(),
    };
    let fleet = spawn_msg_fleet(
        &mut sim,
        ClientPlacement::SharedHost(client_host),
        CLIENTS,
        &config,
        SimDuration::from_secs(2),
    );
    // Grace window so final polls retrieve the tail of responses.
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(seconds + 2));
    let (_sent, failures, responses) = fleet.totals();
    Table1Row {
        quadrant: if rpc_service {
            Quadrant::MsgToRpc
        } else {
            Quadrant::MsgToMsg
        },
        exchanges_per_min: responses as f64 * 60.0 / seconds as f64,
        failures,
        verdict: if rpc_service {
            "limited: RPC server is a bottleneck (semantics translated at the dispatcher)"
        } else {
            "unlimited (no transport time limit on sending the response)"
        },
    }
}

/// Runs all four quadrants.
pub fn run(seconds: u64) -> Vec<Table1Row> {
    crate::parallel_map(
        vec![
            Quadrant::RpcToRpc,
            Quadrant::RpcToMsg,
            Quadrant::MsgToRpc,
            Quadrant::MsgToMsg,
        ],
        |q| run_one(q, seconds),
    )
}

/// Prints the matrix.
pub fn print(rows: &[Table1Row]) {
    println!("# Table 1 — interaction matrix ({CLIENTS} clients, completed exchanges/minute)");
    println!("{:>10} {:>16} {:>10}  verdict", "quadrant", "exchanges/min", "failures");
    for r in rows {
        println!(
            "{:>10} {:>16.0} {:>10}  {}",
            format!("{:?}", r.quadrant),
            r.exchanges_per_min,
            r.failures,
            r.verdict
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECS: u64 = 15;

    #[test]
    fn rpc_to_rpc_works() {
        let r = run_one(Quadrant::RpcToRpc, SECS);
        assert!(r.exchanges_per_min > 100.0, "{r:?}");
    }

    #[test]
    fn rpc_to_msg_fails_structurally() {
        let r = run_one(Quadrant::RpcToMsg, SECS);
        // The RPC client never receives its reply: zero completed
        // exchanges, plenty of timeouts.
        assert_eq!(r.exchanges_per_min, 0.0, "{r:?}");
        assert!(r.failures > 0, "{r:?}");
    }

    #[test]
    fn msg_to_rpc_works_via_translation() {
        let r = run_one(Quadrant::MsgToRpc, SECS);
        assert!(r.exchanges_per_min > 50.0, "{r:?}");
    }

    #[test]
    fn msg_to_msg_is_best_of_the_messaging_rows() {
        let q3 = run_one(Quadrant::MsgToRpc, SECS);
        let q4 = run_one(Quadrant::MsgToMsg, SECS);
        assert!(q4.exchanges_per_min > 50.0, "{q4:?}");
        // The paper ranks (4) unlimited vs (3) limited.
        assert!(
            q4.exchanges_per_min >= q3.exchanges_per_min * 0.8,
            "{q3:?} vs {q4:?}"
        );
    }
}
