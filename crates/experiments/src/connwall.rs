//! The connection wall (paper §4.3.2), on the threaded runtime.
//!
//! The paper's WS-MsgBox pins one native thread per client connection,
//! so ~50 simultaneous clients exhaust the JVM's thread budget and the
//! service dies with an `OutOfMemoryError`. This experiment holds real
//! kept-open connections against both designs:
//!
//! * **thread-per-message** with the paper's ~50-thread budget collapses
//!   as the client count crosses the budget;
//! * the **pooled + reactor** redesign serves 1000 held-open clients on
//!   one event-loop thread plus a fixed handler pool, flat.
//!
//! Unlike fig4/5/6 this runs on real OS threads (`wsd_core::rt`), not
//! the simulated network — the wall being reproduced *is* a native
//! threading limit.

use std::sync::Arc;

use wsd_core::config::{MsgBoxConfig, MsgBoxStrategy};
use wsd_core::rt::{MsgBoxServer, Network};
use wsd_http::{HttpClient, PipeStream, Request, Status};

/// Native-thread budget for the thread-per-message design — the paper's
/// observed ~50-client ceiling.
pub const THREAD_BUDGET: usize = 50;
/// Handler workers behind the reactor front end.
pub const POOL_WORKERS: usize = 8;
/// Client counts thrown at the thread-per-message design.
pub const TPM_COUNTS: &[usize] = &[25, 40, 50, 60, 75];
/// Client counts thrown at the reactor-fronted pooled design.
pub const REACTOR_COUNTS: &[usize] = &[50, 250, 1000];

/// One sweep point: `clients` held-open connections against one design.
#[derive(Debug, Clone)]
pub struct ConnWallPoint {
    /// Connections opened (and held) against the service.
    pub clients: usize,
    /// Whether the simulated `OutOfMemoryError` fired.
    pub crashed: bool,
    /// Peak concurrent service threads (budget leases in the
    /// thread-per-message design; event loop + pool workers behind the
    /// reactor).
    pub peak_threads: usize,
    /// Deposits the service accepted before/despite the wall.
    pub deposits: u64,
    /// Reactor-registered connections at the hold point (pooled only).
    pub open_conns: Option<usize>,
}

/// Both sweeps side by side.
#[derive(Debug, Clone)]
pub struct ConnWallOutcome {
    /// Thread-per-message points (budget [`THREAD_BUDGET`]).
    pub thread_per_message: Vec<ConnWallPoint>,
    /// Reactor-fronted pooled points ([`POOL_WORKERS`] workers).
    pub reactor: Vec<ConnWallPoint>,
}

/// Connects `clients` times, deposits once per connection, and keeps
/// every connection open; returns the held clients plus how many
/// deposits were acknowledged.
fn hold_clients(
    net: &Arc<Network>,
    box_id: &str,
    clients: usize,
) -> (Vec<HttpClient<PipeStream>>, u64) {
    let mut held = Vec::with_capacity(clients);
    let mut acked = 0u64;
    for i in 0..clients {
        // Past the wall the listener is gone: count the refusal and move on.
        let Ok(stream) = net.connect("msgbox", 8082) else {
            continue;
        };
        let mut client = HttpClient::new(stream);
        let req = Request::soap_post(
            "msgbox:8082",
            &format!("/deposit/{box_id}"),
            "text/xml",
            format!("<msg n=\"{i}\"/>").into_bytes(),
        );
        if client.call(&req).map(|r| r.status) == Ok(Status::ACCEPTED) {
            acked += 1;
        }
        held.push(client);
    }
    (held, acked)
}

fn run_point(strategy: MsgBoxStrategy, clients: usize) -> ConnWallPoint {
    let reg = wsd_telemetry::Registry::new();
    let net = Network::new();
    let cfg = MsgBoxConfig {
        strategy,
        thread_budget: THREAD_BUDGET,
        ..MsgBoxConfig::default()
    };
    let server =
        MsgBoxServer::start_with_telemetry(&net, "msgbox", 8082, cfg, 0xC0, &reg.scope("mb"));
    let (box_id, _key) = server.store().create(wsd_core::rt::now_us());
    let (held, _acked) = hold_clients(&net, &box_id, clients);
    let open_conns = server.open_connections();
    let peak_threads = match strategy {
        MsgBoxStrategy::ThreadPerMessage => server.peak_threads(),
        // Event loop + peak concurrently live handler workers.
        MsgBoxStrategy::Pooled { .. } => {
            1 + reg.snapshot().gauge_peak("mb.pool.workers") as usize
        }
    };
    let point = ConnWallPoint {
        clients,
        crashed: server.crashed(),
        peak_threads,
        deposits: server.deposits(),
        open_conns,
    };
    drop(held);
    server.shutdown();
    point
}

/// Runs both sweeps.
pub fn run(tpm_counts: &[usize], reactor_counts: &[usize]) -> ConnWallOutcome {
    ConnWallOutcome {
        thread_per_message: tpm_counts
            .iter()
            .map(|&n| run_point(MsgBoxStrategy::ThreadPerMessage, n))
            .collect(),
        reactor: reactor_counts
            .iter()
            .map(|&n| run_point(MsgBoxStrategy::Pooled { workers: POOL_WORKERS }, n))
            .collect(),
    }
}

/// Prints both sweeps the way the paper narrates them.
pub fn print(o: &ConnWallOutcome) {
    println!("# Connection wall (paper §4.3.2, threaded runtime)");
    println!("thread-per-message, budget {THREAD_BUDGET}:");
    for p in &o.thread_per_message {
        println!(
            "  clients={:5}  crashed={:5}  peak_threads={:4}  deposits={}",
            p.clients, p.crashed, p.peak_threads, p.deposits
        );
    }
    println!("reactor + pool of {POOL_WORKERS}:");
    for p in &o.reactor {
        println!(
            "  clients={:5}  crashed={:5}  peak_threads={:4}  deposits={}  open_conns={}",
            p.clients,
            p.crashed,
            p.peak_threads,
            p.deposits,
            p.open_conns.unwrap_or(0)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_fires_past_budget_and_reactor_stays_flat() {
        let o = run(&[THREAD_BUDGET + 10], &[200]);
        let tpm = &o.thread_per_message[0];
        assert!(tpm.crashed, "budget-crossing load must crash the service");
        assert!(tpm.peak_threads >= THREAD_BUDGET);
        let r = &o.reactor[0];
        assert!(!r.crashed);
        assert_eq!(r.deposits, 200);
        assert_eq!(r.open_conns, Some(200));
        assert!(
            r.peak_threads <= POOL_WORKERS + 1,
            "reactor used {} threads",
            r.peak_threads
        );
    }

    #[test]
    fn below_budget_thread_per_message_survives() {
        let o = run(&[10], &[]);
        let p = &o.thread_per_message[0];
        assert!(!p.crashed);
        assert_eq!(p.deposits, 10);
    }
}
