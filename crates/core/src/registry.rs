//! The service registry: logical → physical address mapping.
//!
//! Both dispatchers share it (paper §4.1: "Both dispatchers share a
//! common functionality: registry of services ... the registry is an
//! independent module"). Entries map a logical name to one or more
//! permanent physical addresses; the concurrent map mirrors the paper's
//! use of the Concurrent Java Library, and the text-file format mirrors
//! its "simple registry service that uses text files".
//!
//! The paper's future-work items are implemented here too: load balancing
//! across a farm of endpoints ([`BalanceStrategy`]), liveness marking
//! (`mark_down` / `mark_alive`, "checking if service is alive"), and a
//! browseable listing with WSDL metadata (the "Yellow Pages").

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use wsd_concurrent::ShardedMap;

use crate::error::WsdError;
use crate::url::Url;

/// Endpoint selection policy when an entry has several physical
/// addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BalanceStrategy {
    /// Always the first live endpoint (primary/backup).
    #[default]
    First,
    /// Rotate across live endpoints.
    RoundRobin,
    /// Pick the live endpoint with the fewest dispatched-in-flight
    /// requests.
    LeastPending,
}

/// One registered service.
#[derive(Debug)]
pub struct ServiceEntry {
    /// Logical name clients use (`/svc/<name>`).
    pub logical: String,
    /// Physical endpoints.
    endpoints: Vec<EndpointState>,
    /// Optional WSDL (or any descriptive metadata) for browsing.
    pub wsdl: Option<String>,
    rr_cursor: AtomicUsize,
}

#[derive(Debug)]
struct EndpointState {
    url: Url,
    alive: AtomicBool,
    pending: AtomicUsize,
}

impl ServiceEntry {
    fn new(logical: String, urls: Vec<Url>, wsdl: Option<String>) -> Self {
        ServiceEntry {
            logical,
            endpoints: urls
                .into_iter()
                .map(|url| EndpointState {
                    url,
                    alive: AtomicBool::new(true),
                    pending: AtomicUsize::new(0),
                })
                .collect(),
            wsdl,
            rr_cursor: AtomicUsize::new(0),
        }
    }

    /// All endpoint URLs, in registration order.
    pub fn endpoints(&self) -> Vec<Url> {
        self.endpoints.iter().map(|e| e.url.clone()).collect()
    }

    /// Endpoint URLs currently marked alive.
    pub fn live_endpoints(&self) -> Vec<Url> {
        self.endpoints
            .iter()
            .filter(|e| e.alive.load(Ordering::Relaxed))
            .map(|e| e.url.clone())
            .collect()
    }

    fn select(&self, strategy: BalanceStrategy) -> Option<Url> {
        let live: Vec<&EndpointState> = self
            .endpoints
            .iter()
            .filter(|e| e.alive.load(Ordering::Relaxed))
            .collect();
        if live.is_empty() {
            return None;
        }
        let chosen = match strategy {
            BalanceStrategy::First => live[0],
            BalanceStrategy::RoundRobin => {
                let i = self.rr_cursor.fetch_add(1, Ordering::Relaxed);
                live[i % live.len()]
            }
            BalanceStrategy::LeastPending => live
                .iter()
                .min_by_key(|e| e.pending.load(Ordering::Relaxed))
                .expect("non-empty"),
        };
        Some(chosen.url.clone())
    }

    fn state_of(&self, url: &Url) -> Option<&EndpointState> {
        self.endpoints.iter().find(|e| &e.url == url)
    }
}

/// The registry: a sharded concurrent map of entries plus a selection
/// strategy.
pub struct Registry {
    map: ShardedMap<String, Arc<ServiceEntry>>,
    strategy: BalanceStrategy,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry with the default (First) strategy.
    pub fn new() -> Self {
        Registry {
            map: ShardedMap::new(),
            strategy: BalanceStrategy::default(),
        }
    }

    /// Sets the balancing strategy. Returns `self` for chaining.
    pub fn with_strategy(mut self, strategy: BalanceStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The active strategy.
    pub fn strategy(&self) -> BalanceStrategy {
        self.strategy
    }

    /// Registers (or replaces) a service with one endpoint.
    pub fn register(&self, logical: impl Into<String>, url: Url) {
        self.register_many(logical, vec![url], None);
    }

    /// Registers (or replaces) a service with a farm of endpoints and
    /// optional WSDL metadata.
    pub fn register_many(&self, logical: impl Into<String>, urls: Vec<Url>, wsdl: Option<String>) {
        let logical = logical.into();
        let entry = Arc::new(ServiceEntry::new(logical.clone(), urls, wsdl));
        self.map.insert(logical, entry);
    }

    /// Removes a service; returns whether it existed.
    pub fn unregister(&self, logical: &str) -> bool {
        self.map.remove(logical).is_some()
    }

    /// Resolves a logical name to a physical endpoint per the strategy.
    pub fn lookup(&self, logical: &str) -> Result<Url, WsdError> {
        let entry = self
            .map
            .get(logical)
            .ok_or_else(|| WsdError::UnknownService(logical.to_string()))?;
        entry
            .select(self.strategy)
            .ok_or_else(|| WsdError::UnknownService(format!("{logical} (no live endpoint)")))
    }

    /// The full entry, for browsing.
    pub fn entry(&self, logical: &str) -> Option<Arc<ServiceEntry>> {
        self.map.get(logical)
    }

    /// Marks one endpoint of a service dead (liveness checking).
    pub fn mark_down(&self, logical: &str, url: &Url) {
        if let Some(entry) = self.map.get(logical) {
            if let Some(e) = entry.state_of(url) {
                e.alive.store(false, Ordering::Relaxed);
            }
        }
    }

    /// Marks one endpoint alive again.
    pub fn mark_alive(&self, logical: &str, url: &Url) {
        if let Some(entry) = self.map.get(logical) {
            if let Some(e) = entry.state_of(url) {
                e.alive.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Notes a request dispatched to `url` (LeastPending accounting).
    pub fn note_dispatched(&self, logical: &str, url: &Url) {
        if let Some(entry) = self.map.get(logical) {
            if let Some(e) = entry.state_of(url) {
                e.pending.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Notes a request to `url` completed.
    pub fn note_completed(&self, logical: &str, url: &Url) {
        if let Some(entry) = self.map.get(logical) {
            if let Some(e) = entry.state_of(url) {
                let _ = e
                    .pending
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
            }
        }
    }

    /// All logical names, sorted — the browseable "Yellow Pages".
    pub fn list(&self) -> Vec<String> {
        let mut names = self.map.keys();
        names.sort();
        names
    }

    /// Removes every entry — used when a replication follower installs
    /// a full-resync snapshot over whatever it held before.
    pub fn clear(&self) {
        self.map.clear();
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no services are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    // ----- text-file format (paper: "uses text files for mapping") -----
    //
    //   # comment / blank lines ignored
    //   <logical> <url>[,<url>...]
    //
    /// Loads entries from the text format, replacing same-named entries.
    /// Returns how many entries were loaded.
    pub fn load_from_str(&self, text: &str) -> Result<usize, WsdError> {
        let mut loaded = 0;
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (logical, rest) = line
                .split_once(char::is_whitespace)
                .ok_or_else(|| WsdError::BadAddress(line.to_string()))?;
            let urls = rest
                .trim()
                .split(',')
                .map(|u| Url::parse(u.trim()))
                .collect::<Result<Vec<_>, _>>()?;
            if urls.is_empty() {
                return Err(WsdError::BadAddress(line.to_string()));
            }
            self.register_many(logical, urls, None);
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Serializes every entry to the text format (sorted, stable).
    pub fn to_file_string(&self) -> String {
        let mut out = String::from("# WS-Dispatcher service registry\n");
        for name in self.list() {
            if let Some(entry) = self.map.get(&name) {
                let urls: Vec<String> =
                    entry.endpoints().iter().map(|u| u.to_string()).collect();
                out.push_str(&format!("{name} {}\n", urls.join(",")));
            }
        }
        out
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("services", &self.map.len())
            .field("strategy", &self.strategy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn register_lookup_unregister() {
        let r = Registry::new();
        r.register("Echo", url("http://ws1:8888/echo"));
        assert_eq!(r.lookup("Echo").unwrap(), url("http://ws1:8888/echo"));
        assert!(r.unregister("Echo"));
        assert!(matches!(
            r.lookup("Echo"),
            Err(WsdError::UnknownService(_))
        ));
        assert!(!r.unregister("Echo"));
    }

    #[test]
    fn round_robin_rotates_evenly() {
        let r = Registry::new().with_strategy(BalanceStrategy::RoundRobin);
        r.register_many(
            "S",
            vec![url("http://a/"), url("http://b/"), url("http://c/")],
            None,
        );
        let mut counts = std::collections::HashMap::new();
        for _ in 0..300 {
            *counts.entry(r.lookup("S").unwrap().host).or_insert(0) += 1;
        }
        assert_eq!(counts["a"], 100);
        assert_eq!(counts["b"], 100);
        assert_eq!(counts["c"], 100);
    }

    #[test]
    fn first_strategy_prefers_primary_until_down() {
        let r = Registry::new();
        r.register_many("S", vec![url("http://a/"), url("http://b/")], None);
        assert_eq!(r.lookup("S").unwrap().host, "a");
        r.mark_down("S", &url("http://a/"));
        assert_eq!(r.lookup("S").unwrap().host, "b");
        r.mark_alive("S", &url("http://a/"));
        assert_eq!(r.lookup("S").unwrap().host, "a");
    }

    #[test]
    fn all_endpoints_down_is_unknown() {
        let r = Registry::new();
        r.register_many("S", vec![url("http://a/")], None);
        r.mark_down("S", &url("http://a/"));
        assert!(r.lookup("S").is_err());
        assert!(r.entry("S").unwrap().live_endpoints().is_empty());
    }

    #[test]
    fn least_pending_prefers_idle_endpoint() {
        let r = Registry::new().with_strategy(BalanceStrategy::LeastPending);
        r.register_many("S", vec![url("http://a/"), url("http://b/")], None);
        r.note_dispatched("S", &url("http://a/"));
        r.note_dispatched("S", &url("http://a/"));
        r.note_dispatched("S", &url("http://b/"));
        assert_eq!(r.lookup("S").unwrap().host, "b");
        r.note_completed("S", &url("http://a/"));
        r.note_completed("S", &url("http://a/"));
        assert_eq!(r.lookup("S").unwrap().host, "a");
    }

    #[test]
    fn note_completed_never_underflows() {
        let r = Registry::new();
        r.register("S", url("http://a/"));
        r.note_completed("S", &url("http://a/"));
        r.note_completed("S", &url("http://a/"));
        // Still selectable.
        assert!(r.lookup("S").is_ok());
    }

    #[test]
    fn file_format_round_trips() {
        let r = Registry::new();
        r.register("Echo", url("http://ws1:8888/echo"));
        r.register_many(
            "Farm",
            vec![url("http://a:1/s"), url("http://b:2/s")],
            None,
        );
        let text = r.to_file_string();
        let r2 = Registry::new();
        assert_eq!(r2.load_from_str(&text).unwrap(), 2);
        assert_eq!(r2.lookup("Echo").unwrap(), url("http://ws1:8888/echo"));
        assert_eq!(r2.entry("Farm").unwrap().endpoints().len(), 2);
        assert_eq!(r2.list(), vec!["Echo".to_string(), "Farm".to_string()]);
    }

    #[test]
    fn file_format_tolerates_comments_and_blanks() {
        let text = "\n# registry\n  \nEcho http://a/x # trailing comment\n";
        let r = Registry::new();
        assert_eq!(r.load_from_str(text).unwrap(), 1);
        assert_eq!(r.lookup("Echo").unwrap(), url("http://a/x"));
    }

    #[test]
    fn file_format_rejects_garbage() {
        let r = Registry::new();
        assert!(r.load_from_str("just-one-token").is_err());
        assert!(r.load_from_str("name ftp://nope/").is_err());
    }

    #[test]
    fn wsdl_metadata_browseable() {
        let r = Registry::new();
        r.register_many(
            "Echo",
            vec![url("http://a/")],
            Some("<definitions/>".to_string()),
        );
        assert_eq!(
            r.entry("Echo").unwrap().wsdl.as_deref(),
            Some("<definitions/>")
        );
    }

    #[test]
    fn concurrent_lookups_and_registrations() {
        use std::sync::Arc;
        let r = Arc::new(Registry::new().with_strategy(BalanceStrategy::RoundRobin));
        r.register_many("S", vec![url("http://a/"), url("http://b/")], None);
        let mut hs = Vec::new();
        for t in 0..4 {
            let r = Arc::clone(&r);
            hs.push(std::thread::spawn(move || {
                for i in 0..200 {
                    r.lookup("S").unwrap();
                    r.register(format!("svc-{t}-{i}"), url("http://x/"));
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(r.len(), 1 + 4 * 200);
    }
}
