//! WS-Dispatcher: asynchronous peer-to-peer Web Services through firewalls.
//!
//! This crate is the paper's primary contribution (Caromel, di Costanzo,
//! Gannon, Slominski, IPDPS'05): an intermediary that lets Web-Service
//! peers behind firewalls — or with no network endpoint at all — hold
//! reliable, long-running conversations.
//!
//! # Components
//!
//! * [`registry`] — the shared service registry: logical → physical
//!   address mapping backed by a concurrent map and a text-file format,
//!   with the paper's future-work extensions (load balancing across
//!   endpoints, liveness marking, browseable listing).
//! * [`rpc`] — the RPC-Dispatcher: an HTTP/SOAP forwarding proxy that
//!   relays the response on the original connection.
//! * [`msg`] — the MSG-Dispatcher core: WS-Addressing header rewriting,
//!   the route table correlating replies to forwarded requests, and the
//!   per-destination FIFO ordering contract.
//! * [`msgbox`] — WS-MsgBox, the "post-office mailbox" for clients with
//!   no inbound endpoint: create / deposit / fetch / destroy, with access
//!   keys and message expiry.
//! * [`security`] — the message-inspection hook (size limits, required
//!   actions, single-sign-on tokens).
//! * [`reliable`] — hold/retry delivery with expiration (the paper's
//!   WS-ReliableMessaging-ish future work).
//!
//! # Runtimes
//!
//! The same logic runs on two substrates:
//!
//! * [`sim`] — actors on the [`wsd_netsim`] discrete-event network; every
//!   figure in the paper is regenerated on this runtime.
//! * [`rt`] — real OS threads from [`wsd_concurrent`] pools over
//!   in-memory byte streams; this is the "is the implementation language
//!   suitable?" half of the paper, with genuine parallelism.

#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod msg;
pub mod msgbox;
pub mod registry;
pub mod registry_repl;
pub mod registry_soap;
pub mod reliable;
pub mod rpc;
pub mod rt;
pub mod security;
pub mod sim;
pub mod url;

pub use config::{ConnFrontEnd, DispatcherConfig, FleetConfig, MsgBoxConfig, MsgBoxStrategy};
pub use error::WsdError;
pub use msg::{MsgCore, Routed, RoutedMeta, RoutedRaw};
pub use msgbox::MsgBoxStore;
pub use registry::{BalanceStrategy, Registry, ServiceEntry};
pub use url::Url;
