//! The crate-wide error type.

use wsd_soap::SoapError;

/// Errors surfaced by dispatcher components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WsdError {
    /// The message was not a usable SOAP envelope.
    Soap(SoapError),
    /// The logical service name is not registered.
    UnknownService(String),
    /// A physical/WSA address could not be parsed.
    BadAddress(String),
    /// The message carries no usable destination.
    NoDestination,
    /// Mailbox errors.
    MsgBox(crate::msgbox::MsgBoxError),
    /// A security policy rejected the message.
    Rejected(String),
    /// The component is saturated (queue full / out of workers).
    Overloaded,
}

impl std::fmt::Display for WsdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WsdError::Soap(e) => write!(f, "SOAP error: {e}"),
            WsdError::UnknownService(s) => write!(f, "unknown logical service {s:?}"),
            WsdError::BadAddress(a) => write!(f, "unparseable address {a:?}"),
            WsdError::NoDestination => f.write_str("message has no destination"),
            WsdError::MsgBox(e) => write!(f, "mailbox error: {e}"),
            WsdError::Rejected(why) => write!(f, "rejected by security policy: {why}"),
            WsdError::Overloaded => f.write_str("dispatcher overloaded"),
        }
    }
}

impl std::error::Error for WsdError {}

impl From<SoapError> for WsdError {
    fn from(e: SoapError) -> Self {
        WsdError::Soap(e)
    }
}

impl From<crate::msgbox::MsgBoxError> for WsdError {
    fn from(e: crate::msgbox::MsgBoxError) -> Self {
        WsdError::MsgBox(e)
    }
}
