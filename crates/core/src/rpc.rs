//! RPC-Dispatcher logic: HTTP-proxy-style forwarding.
//!
//! Paper §4.2: one thread parses the HTTP header, copies the XML message
//! into a new request for the target WS, performs the RPC, and relays the
//! result on the original client connection. This module is the
//! transport-agnostic part — deciding where a request goes and building
//! the forwarded request / relayed response — shared by the simulated and
//! threaded runtimes.

use wsd_http::{Bytes, Request, Response, Status};
use wsd_soap::{Envelope, Fault, FaultCode, SoapVersion};

use crate::error::WsdError;
use crate::registry::Registry;
use crate::security::PolicyChain;
use crate::url::Url;

/// Stats a dispatcher keeps (both runtimes increment them).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RpcDispatchStats {
    /// Requests accepted from clients.
    pub received: u64,
    /// Requests successfully forwarded to a service.
    pub forwarded: u64,
    /// Responses relayed back to clients.
    pub relayed: u64,
    /// Requests refused (unknown service, security, malformed).
    pub refused: u64,
    /// Forwards that failed (connect/timeout at the service side).
    pub upstream_failures: u64,
}

/// Decides the fate of one inbound client request.
///
/// On success, returns the resolved physical URL, the logical name it was
/// resolved from, and the rewritten request to send there (new `Host`,
/// physical path, `Via` marker; body forwarded verbatim).
pub fn plan_forward(
    registry: &Registry,
    policies: &PolicyChain,
    req: &Request,
) -> Result<(Url, String, Request), WsdError> {
    let logical = logical_name(&req.target)?;
    // Security inspection happens before any upstream work: parse the
    // envelope once and run the chain on it.
    if !policies.is_empty() {
        let body = std::str::from_utf8(&req.body)
            .map_err(|_| WsdError::Rejected("body is not UTF-8".to_string()))?;
        let env = Envelope::parse(body)?;
        policies.inspect(req.body.len(), &env)?;
    }
    let physical = registry.lookup(&logical)?;
    let mut forwarded = req.clone();
    forwarded.target = physical.path.clone();
    forwarded.headers.set("Host", physical.authority());
    forwarded.headers.set("Via", "1.1 wsd-rpc-dispatcher");
    Ok((physical, logical, forwarded))
}

/// Extracts the logical service name from a dispatcher request target
/// (`/svc/<name>`).
pub fn logical_name(target: &str) -> Result<String, WsdError> {
    let url = Url::new("dispatcher", 80, target);
    url.logical_service()
        .map(str::to_string)
        .ok_or_else(|| WsdError::UnknownService(target.to_string()))
}

/// Builds the client-facing error response for a failed dispatch.
///
/// SOAP 1.1 faults ride HTTP 500; addressing-level routing failures map
/// to 404/502/503 so plain HTTP clients see sensible statuses too.
pub fn error_response(version: SoapVersion, err: &WsdError) -> Response {
    let (status, code) = match err {
        WsdError::UnknownService(_) => (Status::NOT_FOUND, FaultCode::Sender),
        WsdError::Rejected(_) => (Status::BAD_REQUEST, FaultCode::Sender),
        WsdError::Soap(_) | WsdError::BadAddress(_) | WsdError::NoDestination => {
            (Status::BAD_REQUEST, FaultCode::Sender)
        }
        WsdError::Overloaded => (Status::SERVICE_UNAVAILABLE, FaultCode::Receiver),
        WsdError::MsgBox(_) => (Status::BAD_REQUEST, FaultCode::Sender),
    };
    fault_response(status, version, &code, &err.to_string())
}

/// Builds the 502 the client sees when the upstream call failed.
pub fn upstream_failure_response(version: SoapVersion, why: &str) -> Response {
    fault_response(
        Status::BAD_GATEWAY,
        version,
        &FaultCode::Receiver,
        &format!("upstream failure: {why}"),
    )
}

/// Writes the fault envelope through the raw byte path — pooled scratch
/// buffer, no tree construction — and wraps it in a `Response`. The one
/// copy into `Bytes` is unavoidable (the response owns its body); the
/// scratch returns to the pool for the next fault.
fn fault_response(
    status: Status,
    version: SoapVersion,
    code: &FaultCode,
    reason: &str,
) -> Response {
    let mut scratch = wsd_soap::checkout();
    Fault::push_fault_envelope(version, code, reason, &mut scratch.out);
    Response::new(
        status,
        version.content_type(),
        Bytes::copy_from_slice(scratch.out.as_bytes()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::security::{MaxSize, PolicyChain};
    use wsd_soap::rpc as soap_rpc;

    fn setup() -> Registry {
        let r = Registry::new();
        r.register("Echo", Url::parse("http://inria-slow:8888/real/echo").unwrap());
        r
    }

    fn echo_request(target: &str) -> Request {
        let body = soap_rpc::echo_request(SoapVersion::V11, "hi").to_xml();
        Request::soap_post("dispatcher", target, SoapVersion::V11.content_type(), body.into_bytes())
    }

    #[test]
    fn forwards_to_physical_address() {
        let registry = setup();
        let req = echo_request("/svc/Echo");
        let (url, logical, fwd) =
            plan_forward(&registry, &PolicyChain::new(), &req).unwrap();
        assert_eq!(url.host, "inria-slow");
        assert_eq!(logical, "Echo");
        assert_eq!(fwd.target, "/real/echo");
        assert_eq!(fwd.headers.get("host"), Some("inria-slow:8888"));
        assert_eq!(fwd.headers.get("via"), Some("1.1 wsd-rpc-dispatcher"));
        assert_eq!(fwd.body, req.body, "payload must be verbatim");
    }

    #[test]
    fn unknown_service_is_error() {
        let registry = setup();
        let req = echo_request("/svc/Nope");
        assert!(matches!(
            plan_forward(&registry, &PolicyChain::new(), &req),
            Err(WsdError::UnknownService(_))
        ));
    }

    #[test]
    fn non_svc_target_is_error() {
        let registry = setup();
        let req = echo_request("/other/path");
        assert!(plan_forward(&registry, &PolicyChain::new(), &req).is_err());
    }

    #[test]
    fn security_rejection_stops_forwarding() {
        let registry = setup();
        let policies = PolicyChain::new().with(MaxSize(10));
        let req = echo_request("/svc/Echo");
        assert!(matches!(
            plan_forward(&registry, &policies, &req),
            Err(WsdError::Rejected(_))
        ));
    }

    #[test]
    fn malformed_body_rejected_when_policies_active() {
        let registry = setup();
        let policies = PolicyChain::new().with(MaxSize(1_000_000));
        let mut req = echo_request("/svc/Echo");
        req.body = b"not xml at all".to_vec().into();
        assert!(plan_forward(&registry, &policies, &req).is_err());
        // Without policies the proxy does not look inside (fast path).
        assert!(plan_forward(&registry, &PolicyChain::new(), &req).is_ok());
    }

    #[test]
    fn error_responses_carry_faults_and_statuses() {
        let resp = error_response(
            SoapVersion::V11,
            &WsdError::UnknownService("X".to_string()),
        );
        assert_eq!(resp.status, Status::NOT_FOUND);
        let env = Envelope::parse(&resp.body_utf8()).unwrap();
        assert!(env.as_fault().unwrap().reason.contains("X"));

        let resp = error_response(SoapVersion::V11, &WsdError::Overloaded);
        assert_eq!(resp.status, Status::SERVICE_UNAVAILABLE);

        let resp = upstream_failure_response(SoapVersion::V12, "connect timed out");
        assert_eq!(resp.status, Status::BAD_GATEWAY);
        let env = Envelope::parse(&resp.body_utf8()).unwrap();
        assert_eq!(env.version, SoapVersion::V12);
        assert!(env.as_fault().unwrap().reason.contains("connect timed out"));
    }

    #[test]
    fn logical_name_parsing() {
        assert_eq!(logical_name("/svc/Echo").unwrap(), "Echo");
        assert!(logical_name("/").is_err());
        assert!(logical_name("/svc/").is_err());
    }
}
