//! Registry replication: one leader, N followers, PSYNC shape.
//!
//! Every dispatcher instance in a fleet needs the same logical →
//! physical mapping, but only one instance (the leader) accepts
//! registrations. Mutations are serialized into a compact command
//! stream — `+<logical> <url>[,<url>...]` registers or replaces,
//! `-<logical>` unregisters — and replicated the way Redis does it:
//!
//! * a follower **attaches** by sending the offset it has applied up
//!   to; if that offset is still inside the leader's bounded backlog it
//!   gets a **partial resync** (just the missed commands), otherwise a
//!   **full resync** (the registry's text-file snapshot plus the offset
//!   it corresponds to);
//! * after attach the follower tails the stream through a
//!   [`FollowerCursor`], which rejects offset regressions (a replayed
//!   command must never double-apply) and turns gaps into a fresh full
//!   resync.
//!
//! The snapshot *is* the paper's text-file registry format
//! ([`Registry::to_file_string`]) — replication is literally "ship the
//! text file, then tail the edits".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use wsd_fleet::{Admit, FollowerCursor, ReplLog};

use crate::error::WsdError;
use crate::registry::Registry;
use crate::url::Url;

/// What the leader hands a follower at attach time.
#[derive(Debug, Clone)]
pub enum Attach {
    /// The follower's offset was reachable from the backlog: replay
    /// just these `(offset, command)` pairs.
    Partial(Vec<(u64, String)>),
    /// The follower is too far behind (or brand new): install this
    /// snapshot, then start a cursor at `offset`.
    Full {
        /// Registry text-file snapshot ([`Registry::to_file_string`]).
        snapshot: String,
        /// Leader replication offset the snapshot corresponds to.
        offset: u64,
    },
}

/// Leader side: owns the authoritative [`Registry`] and the command
/// backlog. All mutations must flow through it so they replicate.
pub struct RegistryLeader {
    registry: Arc<Registry>,
    log: Mutex<ReplLog>,
}

impl RegistryLeader {
    /// Wraps `registry` as the authoritative copy, retaining up to
    /// `backlog` commands for partial resync.
    pub fn new(registry: Arc<Registry>, backlog: usize) -> RegistryLeader {
        RegistryLeader {
            registry,
            log: Mutex::new(ReplLog::new(backlog)),
        }
    }

    /// The authoritative registry (read-only use; mutate via the
    /// leader so changes replicate).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Current replication offset (`master_repl_offset`).
    pub fn offset(&self) -> u64 {
        self.log.lock().offset()
    }

    /// Registers (or replaces) a service and replicates the command.
    /// Returns the command's offset.
    pub fn register_many(&self, logical: &str, urls: Vec<Url>) -> u64 {
        let joined = urls
            .iter()
            .map(|u| u.to_string())
            .collect::<Vec<_>>()
            .join(",");
        self.registry.register_many(logical, urls, None);
        self.log.lock().append(format!("+{logical} {joined}"))
    }

    /// Single-endpoint convenience for [`RegistryLeader::register_many`].
    pub fn register(&self, logical: &str, url: Url) -> u64 {
        self.register_many(logical, vec![url])
    }

    /// Unregisters a service and replicates the command.
    pub fn unregister(&self, logical: &str) -> u64 {
        self.registry.unregister(logical);
        self.log.lock().append(format!("-{logical}"))
    }

    /// Attach decision for a follower that has applied up to `from`
    /// (`None` = brand new, always a full resync).
    pub fn attach(&self, from: Option<u64>) -> Attach {
        let log = self.log.lock();
        if let Some(from) = from {
            if let Some(cmds) = log.commands_since(from) {
                return Attach::Partial(
                    cmds.into_iter().map(|(o, c)| (o, c.to_string())).collect(),
                );
            }
        }
        // Snapshot and offset under one lock hold, so they agree.
        Attach::Full {
            snapshot: self.registry.to_file_string(),
            offset: log.offset(),
        }
    }

    /// The `(offset, command)` stream since `from`, if the backlog
    /// still reaches that far; the live tailing path between control
    /// ticks.
    pub fn commands_since(&self, from: u64) -> Option<Vec<(u64, String)>> {
        self.log
            .lock()
            .commands_since(from)
            .map(|cmds| cmds.into_iter().map(|(o, c)| (o, c.to_string())).collect())
    }
}

impl std::fmt::Debug for RegistryLeader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistryLeader")
            .field("offset", &self.offset())
            .field("services", &self.registry.len())
            .finish()
    }
}

/// Follower side: a local [`Registry`] replica plus the apply cursor
/// and resync counters.
pub struct RegistryFollower {
    registry: Arc<Registry>,
    cursor: Mutex<FollowerCursor>,
    attached: Mutex<bool>,
    stale_rejected: AtomicU64,
    full_resyncs: AtomicU64,
}

impl RegistryFollower {
    /// Wraps `registry` as this instance's replica. It starts
    /// detached: the first [`RegistryFollower::catch_up`] performs a
    /// full resync regardless of what the replica holds.
    pub fn new(registry: Arc<Registry>) -> RegistryFollower {
        RegistryFollower {
            registry,
            cursor: Mutex::new(FollowerCursor::start_at(0)),
            attached: Mutex::new(false),
            stale_rejected: AtomicU64::new(0),
            full_resyncs: AtomicU64::new(0),
        }
    }

    /// The local replica (reads only — it mirrors the leader).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Offset of the next command this follower expects.
    pub fn offset(&self) -> u64 {
        self.cursor.lock().offset()
    }

    /// Commands rejected as offset regressions so far.
    pub fn stale_rejected(&self) -> u64 {
        self.stale_rejected.load(Ordering::Relaxed)
    }

    /// Full resyncs performed so far (1 = just the initial attach).
    pub fn full_resyncs(&self) -> u64 {
        self.full_resyncs.load(Ordering::Relaxed)
    }

    /// Installs a full-resync snapshot, replacing the replica's
    /// contents and restarting the cursor at `offset`.
    pub fn install_snapshot(&self, snapshot: &str, offset: u64) -> Result<usize, WsdError> {
        self.registry.clear();
        let loaded = self.registry.load_from_str(snapshot)?;
        *self.cursor.lock() = FollowerCursor::start_at(offset);
        *self.attached.lock() = true;
        self.full_resyncs.fetch_add(1, Ordering::Relaxed);
        Ok(loaded)
    }

    /// Offers one replicated command stamped `offset`. Applies it only
    /// if it is the next expected offset; regressions bump the
    /// `stale_rejected` counter, gaps tell the caller to full-resync.
    pub fn apply(&self, offset: u64, command: &str) -> Result<Admit, WsdError> {
        let mut cursor = self.cursor.lock();
        // Probe a copy: the cursor only advances once the command has
        // actually applied, so a parse error cannot desync the replica.
        let mut probe = *cursor;
        let verdict = probe.admit(offset);
        match verdict {
            Admit::Apply => {
                self.apply_command(command)?;
                *cursor = probe;
            }
            Admit::StaleRejected => {
                self.stale_rejected.fetch_add(1, Ordering::Relaxed);
            }
            Admit::GapResync => {}
        }
        Ok(verdict)
    }

    /// Pulls this follower up to the leader's current offset:
    /// partial-resyncs through the backlog when possible, falls back
    /// to a full snapshot install when not (first attach, backlog
    /// overrun, or a detected gap). Returns the commands applied.
    pub fn catch_up(&self, leader: &RegistryLeader) -> Result<usize, WsdError> {
        let from = {
            let attached = self.attached.lock();
            if *attached {
                Some(self.cursor.lock().offset())
            } else {
                None
            }
        };
        match leader.attach(from) {
            Attach::Partial(cmds) => {
                let mut applied = 0;
                for (off, cmd) in cmds {
                    match self.apply(off, &cmd)? {
                        Admit::Apply => applied += 1,
                        Admit::StaleRejected => {}
                        Admit::GapResync => {
                            // The stream and our cursor disagree;
                            // start over from a snapshot.
                            return self.full_resync(leader);
                        }
                    }
                }
                Ok(applied)
            }
            Attach::Full { snapshot, offset } => {
                self.install_snapshot(&snapshot, offset)?;
                Ok(0)
            }
        }
    }

    fn full_resync(&self, leader: &RegistryLeader) -> Result<usize, WsdError> {
        match leader.attach(None) {
            Attach::Full { snapshot, offset } => {
                self.install_snapshot(&snapshot, offset)?;
                Ok(0)
            }
            Attach::Partial(_) => unreachable!("attach(None) is always a full resync"),
        }
    }

    fn apply_command(&self, command: &str) -> Result<(), WsdError> {
        if let Some(rest) = command.strip_prefix('+') {
            let (logical, urls) = rest
                .split_once(' ')
                .ok_or_else(|| WsdError::BadAddress(command.to_string()))?;
            let urls = urls
                .split(',')
                .map(|u| Url::parse(u.trim()))
                .collect::<Result<Vec<_>, _>>()?;
            self.registry.register_many(logical, urls, None);
            Ok(())
        } else if let Some(logical) = command.strip_prefix('-') {
            self.registry.unregister(logical);
            Ok(())
        } else {
            Err(WsdError::BadAddress(command.to_string()))
        }
    }
}

impl std::fmt::Debug for RegistryFollower {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistryFollower")
            .field("offset", &self.offset())
            .field("services", &self.registry.len())
            .field("stale_rejected", &self.stale_rejected())
            .field("full_resyncs", &self.full_resyncs())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn leader_with(n: usize, backlog: usize) -> RegistryLeader {
        let leader = RegistryLeader::new(Arc::new(Registry::new()), backlog);
        for i in 0..n {
            leader.register(&format!("svc-{i}"), url(&format!("http://h{i}:1/s")));
        }
        leader
    }

    fn converged(leader: &RegistryLeader, follower: &RegistryFollower) -> bool {
        follower.offset() == leader.offset()
            && follower.registry().to_file_string() == leader.registry().to_file_string()
    }

    #[test]
    fn fresh_follower_full_resyncs_then_tails() {
        let leader = leader_with(3, 64);
        let follower = RegistryFollower::new(Arc::new(Registry::new()));
        follower.catch_up(&leader).unwrap();
        assert_eq!(follower.full_resyncs(), 1);
        assert!(converged(&leader, &follower));

        // Leader keeps mutating; the follower partial-resyncs.
        leader.register("late", url("http://late:9/s"));
        leader.unregister("svc-0");
        assert_eq!(follower.catch_up(&leader).unwrap(), 2);
        assert_eq!(follower.full_resyncs(), 1, "no second snapshot needed");
        assert!(converged(&leader, &follower));
        assert!(follower.registry().lookup("svc-0").is_err());
        assert_eq!(
            follower.registry().lookup("late").unwrap(),
            url("http://late:9/s")
        );
    }

    // Satellite 3: follower attaching mid-stream gets a snapshot plus
    // catch-up and converges.
    #[test]
    fn attach_mid_stream_converges() {
        let leader = leader_with(5, 64);
        // Attach while traffic is in flight...
        let follower = RegistryFollower::new(Arc::new(Registry::new()));
        follower.catch_up(&leader).unwrap();
        // ...and more commands land between control ticks.
        for i in 5..12 {
            leader.register(&format!("svc-{i}"), url(&format!("http://h{i}:1/s")));
        }
        follower.catch_up(&leader).unwrap();
        assert!(converged(&leader, &follower));
        assert_eq!(follower.registry().len(), 12);
    }

    // Satellite 3: offset regression (a replayed command batch) is
    // rejected, not double-applied.
    #[test]
    fn offset_regression_is_rejected() {
        let leader = leader_with(2, 64);
        let follower = RegistryFollower::new(Arc::new(Registry::new()));
        follower.catch_up(&leader).unwrap();
        let off = leader.register("dup", url("http://dup:1/s"));
        assert_eq!(follower.apply(off, "+dup http://dup:1/s").unwrap(), Admit::Apply);
        // The same batch arrives again (duplicated tick, retried pull).
        assert_eq!(
            follower.apply(off, "+dup http://dup:1/s").unwrap(),
            Admit::StaleRejected
        );
        // A stale *unregister* regression must not un-apply state.
        assert_eq!(follower.apply(0, "-svc-0").unwrap(), Admit::StaleRejected);
        assert!(follower.registry().lookup("svc-0").is_ok());
        assert_eq!(follower.stale_rejected(), 2);
        assert!(converged(&leader, &follower));
    }

    #[test]
    fn backlog_overrun_falls_back_to_full_resync() {
        let leader = leader_with(2, 4);
        let follower = RegistryFollower::new(Arc::new(Registry::new()));
        follower.catch_up(&leader).unwrap();
        // Blow well past the 4-command backlog while detached.
        for i in 0..32 {
            leader.register(&format!("burst-{i}"), url("http://b:1/s"));
        }
        follower.catch_up(&leader).unwrap();
        assert_eq!(follower.full_resyncs(), 2, "overrun forces a snapshot");
        assert!(converged(&leader, &follower));
    }

    #[test]
    fn gap_in_stream_forces_full_resync() {
        let leader = leader_with(1, 64);
        let follower = RegistryFollower::new(Arc::new(Registry::new()));
        follower.catch_up(&leader).unwrap();
        // A gapped offset arrives out of band.
        let verdict = follower.apply(leader.offset() + 5, "+ghost http://g:1/s").unwrap();
        assert_eq!(verdict, Admit::GapResync);
        assert!(follower.registry().lookup("ghost").is_err());
        // The next catch_up repairs via snapshot even though the cursor
        // never advanced past the gap.
        leader.register("after-gap", url("http://a:1/s"));
        follower.catch_up(&leader).unwrap();
        assert!(converged(&leader, &follower));
    }

    #[test]
    fn malformed_commands_error_cleanly() {
        let follower = RegistryFollower::new(Arc::new(Registry::new()));
        follower.install_snapshot("", 0).unwrap();
        assert!(follower.apply(0, "?what").is_err());
        assert!(follower.apply(0, "+no-urls").is_err());
    }
}
