//! MSG-Dispatcher core: the `CxThread` stage's decision logic.
//!
//! Paper §4.2, Figure 3: a `CxThread` maps the logical address to the
//! physical WS address and rewrites the WS-Addressing headers so replies
//! return through the dispatcher; a `WsThread` owns a FIFO queue per
//! destination and a kept-open connection. This module implements the
//! decision ("where does this envelope go next?") and the route table
//! correlating replies; queues and threads belong to the runtimes.

use std::borrow::Cow;

use wsd_concurrent::ShardedMap;
use wsd_soap::Envelope;
use wsd_telemetry::{Counter, Scope};
use wsd_wsa::{correlation_id, rewrite_for_forward, rewrite_for_reply, MsgIdGen, RouteRecord, WsaHeaders};

use crate::error::WsdError;
use crate::registry::Registry;
use crate::security::PolicyChain;
use crate::url::Url;

/// Where the dispatcher decided an envelope must go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Routed {
    /// A client request: forward to the resolved service endpoint.
    Forward {
        /// Physical destination.
        to: Url,
        /// Logical name it resolved from.
        logical: String,
        /// The rewritten envelope.
        envelope: Envelope,
    },
    /// A service reply: deliver to the client's original reply endpoint
    /// (or its mailbox).
    Reply {
        /// Destination (reply endpoint or mailbox service).
        to: Url,
        /// The rewritten envelope.
        envelope: Envelope,
    },
}

/// [`Routed`] for the raw hot path: the rewritten envelope is already
/// serialized (spliced byte-for-byte when the fast path applied), and the
/// `MessageID` the queues need for correlation is carried alongside so no
/// stage downstream has to re-parse the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutedRaw {
    /// A client request: forward to the resolved service endpoint.
    Forward {
        /// Physical destination.
        to: Url,
        /// Logical name it resolved from.
        logical: String,
        /// The rewritten envelope, serialized.
        body: String,
        /// `MessageID` of the forwarded request (always present: the
        /// dispatcher mints one when the client sent none).
        message_id: String,
    },
    /// A service reply: deliver to the client's original reply endpoint
    /// (or its mailbox).
    Reply {
        /// Destination (reply endpoint or mailbox service).
        to: Url,
        /// The rewritten envelope, serialized.
        body: String,
        /// The reply's own `MessageID`, if it carries one.
        message_id: Option<String>,
    },
}

/// [`RoutedRaw`] minus the body: the routing decision for
/// [`MsgCore::route_raw_into`], which writes the rewritten envelope into
/// a caller-supplied buffer instead of returning an owned `String`. The
/// reply `MessageID` borrows from the input envelope when the splice
/// fast path applied, so steady-state replies allocate nothing for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutedMeta<'a> {
    /// A client request: forward to the resolved service endpoint.
    Forward {
        /// Physical destination.
        to: Url,
        /// Logical name it resolved from.
        logical: String,
        /// `MessageID` of the forwarded request (always present: the
        /// dispatcher mints one when the client sent none).
        message_id: String,
    },
    /// A service reply: deliver to the client's original reply endpoint
    /// (or its mailbox).
    Reply {
        /// Destination (reply endpoint or mailbox service).
        to: Url,
        /// The reply's own `MessageID`, if it carries one — borrowed
        /// from the scanned envelope on the fast path.
        message_id: Option<Cow<'a, str>>,
    },
}

/// Hot-path instruments: how many envelopes the single-pass splice
/// rewrite handled vs. fell back to parse + tree rewrite + re-serialize.
struct CoreTelemetry {
    fastpath_hits: Counter,
    fastpath_fallbacks: Counter,
}

impl CoreTelemetry {
    fn new(scope: &Scope) -> Self {
        CoreTelemetry {
            fastpath_hits: scope.counter("fastpath_hits"),
            fastpath_fallbacks: scope.counter("fastpath_fallbacks"),
        }
    }
}

/// Stats the MSG dispatcher keeps.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MsgDispatchStats {
    /// Envelopes accepted.
    pub received: u64,
    /// Requests routed toward services.
    pub forwarded: u64,
    /// Replies routed toward clients/mailboxes.
    pub replied: u64,
    /// Envelopes with no usable route.
    pub unroutable: u64,
    /// Security rejections.
    pub rejected: u64,
}

/// A route-table entry: the [`RouteRecord`] plus its insertion time (µs)
/// for TTL cleanup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingRoute {
    /// What the reply path needs.
    pub record: RouteRecord,
    /// Insertion time, µs on the runtime's clock.
    pub stored_at: u64,
}

/// The MSG-Dispatcher decision core. Thread-safe.
pub struct MsgCore {
    registry: std::sync::Arc<Registry>,
    routes: ShardedMap<String, PendingRoute>,
    /// The address services reply to (this dispatcher).
    pub dispatcher_address: String,
    /// Mailbox service address used when a client gave no reply
    /// endpoint, if a WS-MsgBox is deployed.
    pub mailbox_fallback: Option<String>,
    ids: MsgIdGen,
    policies: PolicyChain,
    tele: CoreTelemetry,
}

impl MsgCore {
    /// Creates the core. `dispatcher_address` is the URL services use to
    /// reach this dispatcher (it becomes the rewritten `ReplyTo`).
    pub fn new(
        registry: std::sync::Arc<Registry>,
        dispatcher_address: impl Into<String>,
        seed: u64,
    ) -> Self {
        MsgCore {
            registry,
            routes: ShardedMap::new(),
            dispatcher_address: dispatcher_address.into(),
            mailbox_fallback: None,
            ids: MsgIdGen::new(seed),
            policies: PolicyChain::new(),
            tele: CoreTelemetry::new(&Scope::noop()),
        }
    }

    /// Registers the fast-path counters (`fastpath_hits`,
    /// `fastpath_fallbacks`) under `scope`.
    pub fn bind_telemetry(&mut self, scope: &Scope) {
        self.tele = CoreTelemetry::new(scope);
    }

    /// Sets the mailbox fallback address. Returns `self` for chaining.
    pub fn with_mailbox(mut self, address: impl Into<String>) -> Self {
        self.mailbox_fallback = Some(address.into());
        self
    }

    /// Installs a security policy chain. Returns `self` for chaining.
    pub fn with_policies(mut self, policies: PolicyChain) -> Self {
        self.policies = policies;
        self
    }

    /// The registry this core resolves against.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Number of forwarded requests still awaiting replies.
    pub fn pending_routes(&self) -> usize {
        self.routes.len()
    }

    /// Drops route entries older than `ttl_us`; returns how many.
    pub fn expire_routes(&self, now: u64, ttl_us: u64) -> usize {
        let before = self.routes.len();
        self.routes
            .retain(|_, r| now.saturating_sub(r.stored_at) < ttl_us);
        before - self.routes.len()
    }

    /// Routes one inbound envelope: a reply if its `RelatesTo` matches a
    /// pending route, a fresh request otherwise.
    ///
    /// `serialized_len` is the on-the-wire size (for security policies);
    /// `now` is µs on the runtime's clock.
    pub fn route(
        &self,
        mut env: Envelope,
        serialized_len: usize,
        now: u64,
    ) -> Result<Routed, WsdError> {
        self.policies.inspect(serialized_len, &env)?;
        // Reply path: correlate via RelatesTo.
        if let Ok(Some(rel)) = correlation_id(&env) {
            if let Some(pending) = self.routes.remove(&rel) {
                let dest = rewrite_for_reply(
                    &mut env,
                    &pending.record,
                    self.mailbox_fallback.as_deref(),
                )
                .map_err(|e| WsdError::Rejected(e.to_string()))?
                .ok_or(WsdError::NoDestination)?;
                let to = Url::parse(&dest)?;
                return Ok(Routed::Reply { to, envelope: env });
            }
        }
        // Request path: resolve the logical To.
        let headers =
            WsaHeaders::from_envelope(&env).map_err(|e| WsdError::Rejected(e.to_string()))?;
        let to = headers.to.ok_or(WsdError::NoDestination)?;
        let logical = Url::parse(&to)?
            .logical_service()
            .map(str::to_string)
            .ok_or_else(|| WsdError::UnknownService(to.clone()))?;
        let physical = self.registry.lookup(&logical)?;
        // Ensure the request has a MessageID so the reply can correlate.
        let mut env = env;
        let message_id = match headers.message_id {
            Some(id) => id,
            None => {
                let id = self.ids.next_id();
                let mut h = WsaHeaders::from_envelope(&env)
                    .map_err(|e| WsdError::Rejected(e.to_string()))?;
                h.message_id = Some(id.clone());
                h.apply(&mut env);
                id
            }
        };
        let record = rewrite_for_forward(&mut env, &physical.to_string(), &self.dispatcher_address)
            .map_err(|e| WsdError::Rejected(e.to_string()))?;
        self.routes.insert(
            message_id,
            PendingRoute {
                record,
                stored_at: now,
            },
        );
        Ok(Routed::Forward {
            to: physical,
            logical,
            envelope: env,
        })
    }

    /// Routes one serialized envelope, avoiding the parse → rebuild →
    /// re-serialize cycle whenever possible.
    ///
    /// The fast path runs [`wsd_wsa::scan`] — one streaming pass locating
    /// the WS-Addressing headers — and splices the rewritten headers into
    /// the original bytes; the body is copied verbatim, never parsed. Any
    /// anomaly (non-canonical serialization, foreign headers, reference
    /// parameters, …) and the fast path declines: the envelope takes
    /// [`MsgCore::route`] instead. Installed security policies also force
    /// the tree path, since they inspect the parsed envelope. Both
    /// outcomes are counted (`fastpath_hits` / `fastpath_fallbacks`) when
    /// telemetry is bound.
    pub fn route_raw(
        &self,
        xml: &str,
        serialized_len: usize,
        now: u64,
    ) -> Result<RoutedRaw, WsdError> {
        let mut out = String::new();
        match self.route_raw_into(xml, serialized_len, now, &mut out)? {
            RoutedMeta::Forward { to, logical, message_id } => Ok(RoutedRaw::Forward {
                to,
                logical,
                body: out,
                message_id,
            }),
            RoutedMeta::Reply { to, message_id } => Ok(RoutedRaw::Reply {
                to,
                body: out,
                message_id: message_id.map(Cow::into_owned),
            }),
        }
    }

    /// [`route_raw`](Self::route_raw), writing the rewritten envelope
    /// into the caller's buffer (a checked-out
    /// [`wsd_soap::EnvelopeScratch`]) instead of allocating one.
    ///
    /// This is the zero-allocation entry point: on the steady-state reply
    /// splice path the only allocations left are the two `String`s inside
    /// the parsed destination [`Url`] — the body is spliced into `out`,
    /// the destination is taken by value from the consumed
    /// [`PendingRoute`], and the reply's `MessageID` is returned borrowed
    /// from `xml`.
    pub fn route_raw_into<'a>(
        &self,
        xml: &'a str,
        serialized_len: usize,
        now: u64,
        out: &mut String,
    ) -> Result<RoutedMeta<'a>, WsdError> {
        if self.policies.is_empty() {
            if let Some(scanned) = wsd_wsa::scan(xml) {
                self.tele.fastpath_hits.inc();
                return self.route_spliced_into(&scanned, now, out);
            }
        }
        self.tele.fastpath_fallbacks.inc();
        // wsd-lint: allow(alloc-in-drain): anomaly fallback — the full tree route allocates by design; canonical traffic never enters it
        self.route_tree_fallback(xml, serialized_len, now, out)
    }

    /// The anomaly path behind [`route_raw_into`](Self::route_raw_into):
    /// full parse → tree route → re-serialize. Envelopes the splice
    /// scanner cannot handle (non-canonical prefixes, policy rewrites)
    /// land here; it allocates freely and is deliberately outside the
    /// `alloc-in-drain` zero-alloc domain.
    fn route_tree_fallback<'a>(
        &self,
        xml: &'a str,
        serialized_len: usize,
        now: u64,
        out: &mut String,
    ) -> Result<RoutedMeta<'a>, WsdError> {
        let env = Envelope::parse(xml)?;
        match self.route(env, serialized_len, now)? {
            Routed::Forward { to, logical, envelope } => {
                let message_id = WsaHeaders::from_envelope(&envelope)
                    .ok()
                    .and_then(|h| h.message_id)
                    .unwrap_or_default();
                wsd_xml::write_element_into(&envelope.to_element(), out);
                Ok(RoutedMeta::Forward {
                    to,
                    logical,
                    message_id,
                })
            }
            Routed::Reply { to, envelope } => {
                let message_id = WsaHeaders::from_envelope(&envelope)
                    .ok()
                    .and_then(|h| h.message_id)
                    .map(Cow::Owned);
                wsd_xml::write_element_into(&envelope.to_element(), out);
                Ok(RoutedMeta::Reply { to, message_id })
            }
        }
    }

    /// The splice fast path: same decisions as [`MsgCore::route`], output
    /// byte-identical to the tree rewrite for canonical envelopes.
    fn route_spliced_into<'a>(
        &self,
        scanned: &wsd_wsa::ScannedWsa<'a>,
        now: u64,
        out: &mut String,
    ) -> Result<RoutedMeta<'a>, WsdError> {
        // Reply path: correlate via RelatesTo.
        if let Some(rel) = scanned.correlation_id() {
            if let Some(pending) = self.routes.remove(rel) {
                // The consumed PendingRoute owns the destination string:
                // take it by value rather than cloning.
                let destination = pending
                    .record
                    .original_reply_to
                    .filter(|epr| !epr.is_anonymous())
                    .map(|epr| epr.address)
                    .or_else(|| self.mailbox_fallback.clone())
                    .ok_or(WsdError::NoDestination)?;
                // wsd-lint: allow(alloc-in-drain): the reply path's two budgeted allocations (Url host + path), gated by reply_allocs_per_op in the bench
                let to = Url::parse(&destination)?;
                scanned.splice_reply_into(Some(&destination), out);
                return Ok(RoutedMeta::Reply {
                    to,
                    message_id: scanned.message_id_cow(),
                });
            }
        }
        // Request path: resolve the logical To.
        let logical_to = scanned.to().ok_or(WsdError::NoDestination)?;
        // wsd-lint: allow(alloc-in-drain): forward-path naming allocations (logical service, URL, error detail) — counted by forward_allocs_per_op in the bench
        let logical = Url::parse(logical_to)?
            .logical_service()
            .map(str::to_string)
            .ok_or_else(|| WsdError::UnknownService(logical_to.to_string()))?; // wsd-lint: allow(alloc-in-drain): error detail, not steady state
        let physical = self.registry.lookup(&logical)?;
        // Ensure the request has a MessageID so the reply can correlate.
        let minted = match scanned.message_id() {
            Some(_) => None,
            // wsd-lint: allow(alloc-in-drain): minting covers for clients that omitted MessageID — anomalous traffic mints one fresh String
            None => Some(self.ids.next_id()),
        };
        let record = scanned.splice_forward_into(
            // wsd-lint: allow(alloc-in-drain): forward serializes the physical URL once per forward — counted by forward_allocs_per_op in the bench
            &physical.to_string(),
            &self.dispatcher_address,
            minted.as_deref(),
            out,
        );
        let message_id = record.message_id.clone().expect("forward always carries an id");
        self.routes.insert(
            message_id.clone(),
            PendingRoute {
                record,
                stored_at: now,
            },
        );
        Ok(RoutedMeta::Forward {
            to: physical,
            logical,
            message_id,
        })
    }
}

impl std::fmt::Debug for MsgCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsgCore")
            .field("dispatcher_address", &self.dispatcher_address)
            .field("pending_routes", &self.routes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wsd_soap::{rpc as soap_rpc, SoapVersion};
    use wsd_wsa::EndpointReference;

    fn core() -> MsgCore {
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws-host:8888/echo").unwrap());
        MsgCore::new(registry, "http://dispatcher/msg", 7)
            .with_mailbox("http://msgbox/deposit")
    }

    fn request(reply_to: Option<&str>, message_id: Option<&str>) -> Envelope {
        let mut env = soap_rpc::echo_request(SoapVersion::V11, "ping");
        let mut h = WsaHeaders::new().to("http://dispatcher/svc/Echo");
        if let Some(r) = reply_to {
            h = h.reply_to(EndpointReference::new(r));
        }
        if let Some(id) = message_id {
            h = h.message_id(id);
        }
        h.apply(&mut env);
        env
    }

    #[test]
    fn request_forwards_to_physical_endpoint() {
        let c = core();
        let routed = c.route(request(Some("http://client/cb"), Some("uuid:1")), 483, 0).unwrap();
        match routed {
            Routed::Forward { to, logical, envelope } => {
                assert_eq!(to, Url::parse("http://ws-host:8888/echo").unwrap());
                assert_eq!(logical, "Echo");
                let h = WsaHeaders::from_envelope(&envelope).unwrap();
                assert_eq!(h.to.as_deref(), Some("http://ws-host:8888/echo"));
                assert_eq!(h.reply_to.unwrap().address, "http://dispatcher/msg");
            }
            other => panic!("expected Forward, got {other:?}"),
        }
        assert_eq!(c.pending_routes(), 1);
    }

    #[test]
    fn reply_routes_back_to_original_client() {
        let c = core();
        c.route(request(Some("http://client:9999/cb"), Some("uuid:42")), 483, 0)
            .unwrap();
        // Service reply relating to uuid:42.
        let mut reply = soap_rpc::echo_response(SoapVersion::V11, "ping");
        WsaHeaders::new()
            .to("http://dispatcher/msg")
            .relates_to("uuid:42")
            .apply(&mut reply);
        let routed = c.route(reply, 500, 1).unwrap();
        match routed {
            Routed::Reply { to, envelope } => {
                assert_eq!(to, Url::parse("http://client:9999/cb").unwrap());
                let h = WsaHeaders::from_envelope(&envelope).unwrap();
                assert_eq!(h.to.as_deref(), Some("http://client:9999/cb"));
            }
            other => panic!("expected Reply, got {other:?}"),
        }
        assert_eq!(c.pending_routes(), 0, "route must be consumed");
    }

    #[test]
    fn anonymous_reply_to_falls_back_to_mailbox() {
        let c = core();
        c.route(request(Some(wsd_wsa::ANONYMOUS), Some("uuid:a")), 483, 0)
            .unwrap();
        let mut reply = soap_rpc::echo_response(SoapVersion::V11, "x");
        WsaHeaders::new().relates_to("uuid:a").apply(&mut reply);
        match c.route(reply, 400, 1).unwrap() {
            Routed::Reply { to, .. } => {
                assert_eq!(to, Url::parse("http://msgbox/deposit").unwrap());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_reply_to_without_mailbox_is_no_destination() {
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws/e").unwrap());
        let c = MsgCore::new(registry, "http://d/msg", 1); // no mailbox
        c.route(request(None, Some("uuid:n")), 483, 0).unwrap();
        let mut reply = soap_rpc::echo_response(SoapVersion::V11, "x");
        WsaHeaders::new().relates_to("uuid:n").apply(&mut reply);
        assert_eq!(c.route(reply, 100, 1), Err(WsdError::NoDestination));
    }

    #[test]
    fn message_id_minted_when_absent() {
        let c = core();
        let routed = c.route(request(Some("http://cl/cb"), None), 483, 0).unwrap();
        let Routed::Forward { envelope, .. } = routed else {
            panic!()
        };
        let h = WsaHeaders::from_envelope(&envelope).unwrap();
        let id = h.message_id.expect("id must be minted");
        assert!(id.starts_with("uuid:"));
        // And the minted id routes the reply.
        let mut reply = soap_rpc::echo_response(SoapVersion::V11, "x");
        WsaHeaders::new().relates_to(id).apply(&mut reply);
        assert!(matches!(c.route(reply, 1, 1), Ok(Routed::Reply { .. })));
    }

    #[test]
    fn unknown_logical_service_is_error() {
        let c = core();
        let mut env = soap_rpc::echo_request(SoapVersion::V11, "x");
        WsaHeaders::new()
            .to("http://dispatcher/svc/Missing")
            .apply(&mut env);
        assert!(matches!(
            c.route(env, 1, 0),
            Err(WsdError::UnknownService(_))
        ));
    }

    #[test]
    fn envelope_without_to_is_no_destination() {
        let c = core();
        let env = soap_rpc::echo_request(SoapVersion::V11, "x");
        assert_eq!(c.route(env, 1, 0), Err(WsdError::NoDestination));
    }

    #[test]
    fn unmatched_relates_to_is_treated_as_request() {
        // A reply whose route expired: RelatesTo matches nothing, and it
        // has no To → NoDestination (not a crash, not a misroute).
        let c = core();
        let mut reply = soap_rpc::echo_response(SoapVersion::V11, "x");
        WsaHeaders::new().relates_to("uuid:expired").apply(&mut reply);
        assert_eq!(c.route(reply, 1, 0), Err(WsdError::NoDestination));
    }

    #[test]
    fn route_expiry_drops_stale_entries() {
        let c = core();
        c.route(request(Some("http://cl/cb"), Some("uuid:old")), 1, 1000)
            .unwrap();
        c.route(request(Some("http://cl/cb"), Some("uuid:new")), 1, 9000)
            .unwrap();
        assert_eq!(c.pending_routes(), 2);
        assert_eq!(c.expire_routes(10_000, 5_000), 1);
        assert_eq!(c.pending_routes(), 1);
    }

    #[test]
    fn security_policy_applies_to_all_messages() {
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws/e").unwrap());
        let c = MsgCore::new(registry, "http://d/msg", 1)
            .with_policies(crate::security::PolicyChain::new().with(crate::security::MaxSize(100)));
        let env = request(Some("http://cl/cb"), Some("uuid:1"));
        assert!(matches!(c.route(env, 500, 0), Err(WsdError::Rejected(_))));
    }

    #[test]
    fn route_raw_fastpath_is_byte_identical_to_tree_route() {
        // Two cores with the same seed mint the same ids; exercising the
        // minting path (no MessageID) covers the hardest case.
        let fast = core();
        let tree = core();
        let xml = request(Some("http://client/cb"), None).to_xml();
        let raw = fast.route_raw(&xml, xml.len(), 0).unwrap();
        let routed = tree
            .route(Envelope::parse(&xml).unwrap(), xml.len(), 0)
            .unwrap();
        match (raw, routed) {
            (
                RoutedRaw::Forward { to, logical, body, message_id },
                Routed::Forward { to: t_to, logical: t_logical, envelope },
            ) => {
                assert_eq!(to, t_to);
                assert_eq!(logical, t_logical);
                assert_eq!(body, envelope.to_xml(), "spliced bytes must match the tree path");
                let h = WsaHeaders::from_envelope(&envelope).unwrap();
                assert_eq!(Some(message_id), h.message_id);
            }
            other => panic!("expected two Forwards, got {other:?}"),
        }
        assert_eq!(fast.pending_routes(), 1);
    }

    #[test]
    fn route_raw_reply_round_trip_counts_fastpath_hits() {
        let reg = wsd_telemetry::Registry::new();
        let mut c = core();
        c.bind_telemetry(&reg.scope("core"));
        let req_xml = request(Some("http://client:9999/cb"), Some("uuid:42")).to_xml();
        c.route_raw(&req_xml, req_xml.len(), 0).unwrap();
        let mut reply = soap_rpc::echo_response(SoapVersion::V11, "pong");
        WsaHeaders::new()
            .to("http://dispatcher/msg")
            .relates_to("uuid:42")
            .message_id("uuid:r1")
            .apply(&mut reply);
        let xml = reply.to_xml();
        match c.route_raw(&xml, xml.len(), 1).unwrap() {
            RoutedRaw::Reply { to, body, message_id } => {
                assert_eq!(to, Url::parse("http://client:9999/cb").unwrap());
                assert!(body.contains("http://client:9999/cb"));
                assert_eq!(message_id.as_deref(), Some("uuid:r1"));
            }
            other => panic!("expected Reply, got {other:?}"),
        }
        assert_eq!(c.pending_routes(), 0, "route must be consumed");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("core.fastpath_hits"), 2);
        assert_eq!(snap.counter("core.fastpath_fallbacks"), 0);
    }

    #[test]
    fn route_raw_policies_force_the_tree_path() {
        let reg = wsd_telemetry::Registry::new();
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws-host:8888/echo").unwrap());
        let mut c = MsgCore::new(registry, "http://dispatcher/msg", 7).with_policies(
            crate::security::PolicyChain::new().with(crate::security::MaxSize(1 << 20)),
        );
        c.bind_telemetry(&reg.scope("core"));
        let xml = request(Some("http://client/cb"), Some("uuid:p1")).to_xml();
        assert!(matches!(
            c.route_raw(&xml, xml.len(), 0),
            Ok(RoutedRaw::Forward { .. })
        ));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("core.fastpath_hits"), 0);
        assert_eq!(snap.counter("core.fastpath_fallbacks"), 1);
    }

    #[test]
    fn route_raw_malformed_envelope_is_soap_error() {
        let c = core();
        assert!(matches!(
            c.route_raw("<not-xml", 8, 0),
            Err(WsdError::Soap(_))
        ));
    }

    #[test]
    fn round_robin_farm_spreads_forwards() {
        let registry = Arc::new(
            Registry::new().with_strategy(crate::registry::BalanceStrategy::RoundRobin),
        );
        registry.register_many(
            "Echo",
            vec![
                Url::parse("http://ws-a/e").unwrap(),
                Url::parse("http://ws-b/e").unwrap(),
            ],
            None,
        );
        let c = MsgCore::new(registry, "http://d/msg", 1);
        let mut hosts = std::collections::HashSet::new();
        for i in 0..4 {
            let env = {
                let mut e = soap_rpc::echo_request(SoapVersion::V11, "x");
                WsaHeaders::new()
                    .to("http://d/svc/Echo")
                    .message_id(format!("uuid:{i}"))
                    .apply(&mut e);
                e
            };
            if let Routed::Forward { to, .. } = c.route(env, 1, 0).unwrap() {
                hosts.insert(to.host);
            }
        }
        assert_eq!(hosts.len(), 2, "both endpoints must be used");
    }
}
