//! Hold/retry delivery with expiration.
//!
//! Paper §4.4 (future work): "improve forwarding service by adding
//! hold/retry on delivery to simple one way messaging with messages
//! stored ... with expiration time", related to WS-ReliableMessaging.
//! This module is the pure policy + per-message state machine; both
//! runtimes drive it with their own clocks (virtual or wall).

/// Retry policy: exponential backoff, bounded attempts, absolute TTL.
/// Times are in microseconds so the simulated and threaded runtimes share
/// the arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum delivery attempts (including the first).
    pub max_attempts: u32,
    /// Delay before the second attempt; doubles each retry.
    pub base_backoff_us: u64,
    /// Cap on a single backoff interval.
    pub max_backoff_us: u64,
    /// Message time-to-live from enqueue; expired messages are dropped
    /// even if attempts remain.
    pub ttl_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff_us: 500_000,        // 0.5 s
            max_backoff_us: 30_000_000,      // 30 s
            ttl_us: 300_000_000,             // 5 min
        }
    }
}

impl RetryPolicy {
    /// Backoff before attempt number `attempt` (attempt 1 is the first
    /// try and has no backoff). `None` once attempts are exhausted.
    pub fn backoff_before(&self, attempt: u32) -> Option<u64> {
        if attempt <= 1 {
            return if self.max_attempts >= 1 { Some(0) } else { None };
        }
        if attempt > self.max_attempts {
            return None;
        }
        let shift = (attempt - 2).min(30);
        Some((self.base_backoff_us << shift).min(self.max_backoff_us))
    }
}

/// Outcome of a failed delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryDecision {
    /// Try again at this absolute time (µs).
    RetryAt(u64),
    /// Attempts exhausted.
    GiveUp,
    /// TTL exceeded.
    Expired,
}

/// Per-message delivery state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryState {
    /// Attempts made so far.
    pub attempts: u32,
    /// Enqueue time (µs).
    pub enqueued_at: u64,
}

impl DeliveryState {
    /// A message enqueued at `now`.
    pub fn new(now: u64) -> Self {
        DeliveryState {
            attempts: 0,
            enqueued_at: now,
        }
    }

    /// Whether the message is past its TTL at `now`.
    pub fn expired(&self, policy: &RetryPolicy, now: u64) -> bool {
        now.saturating_sub(self.enqueued_at) >= policy.ttl_us
    }

    /// Records a delivery attempt starting now.
    pub fn begin_attempt(&mut self) {
        self.attempts += 1;
    }

    /// Decides what to do after the current attempt failed at `now`.
    pub fn on_failure(&self, policy: &RetryPolicy, now: u64) -> RetryDecision {
        if self.expired(policy, now) {
            return RetryDecision::Expired;
        }
        match policy.backoff_before(self.attempts + 1) {
            None => RetryDecision::GiveUp,
            Some(backoff) => {
                let at = now + backoff;
                if at.saturating_sub(self.enqueued_at) >= policy.ttl_us {
                    RetryDecision::Expired
                } else {
                    RetryDecision::RetryAt(at)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_us: 100,
            max_backoff_us: 300,
            ttl_us: 10_000,
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = policy();
        assert_eq!(p.backoff_before(1), Some(0));
        assert_eq!(p.backoff_before(2), Some(100));
        assert_eq!(p.backoff_before(3), Some(200));
        assert_eq!(p.backoff_before(4), Some(300)); // capped (400 → 300)
        assert_eq!(p.backoff_before(5), None);
    }

    #[test]
    fn state_machine_walks_through_retries_then_gives_up() {
        let p = policy();
        let mut st = DeliveryState::new(0);
        let mut now = 0;
        let mut retries = 0;
        loop {
            st.begin_attempt();
            match st.on_failure(&p, now) {
                RetryDecision::RetryAt(at) => {
                    assert!(at > now || st.attempts == 0);
                    now = at;
                    retries += 1;
                }
                RetryDecision::GiveUp => break,
                RetryDecision::Expired => panic!("should give up before TTL here"),
            }
        }
        assert_eq!(st.attempts, p.max_attempts);
        assert_eq!(retries, (p.max_attempts - 1) as usize);
    }

    #[test]
    fn expiry_wins_over_remaining_attempts() {
        let p = RetryPolicy {
            ttl_us: 200,
            ..policy()
        };
        let mut st = DeliveryState::new(1000);
        st.begin_attempt();
        // First failure at enqueue+50: retry at +150 → still inside TTL.
        assert_eq!(st.on_failure(&p, 1050), RetryDecision::RetryAt(1150));
        // The next failure lands exactly at the TTL edge: expired.
        st.begin_attempt();
        assert_eq!(st.on_failure(&p, 1200), RetryDecision::Expired);
    }

    #[test]
    fn expired_checks_absolute_age() {
        let p = policy();
        let st = DeliveryState::new(500);
        assert!(!st.expired(&p, 500));
        assert!(!st.expired(&p, 10_499));
        assert!(st.expired(&p, 10_500));
    }

    #[test]
    fn zero_attempt_policy_never_tries() {
        let p = RetryPolicy {
            max_attempts: 0,
            ..policy()
        };
        assert_eq!(p.backoff_before(1), None);
    }

    #[test]
    fn retry_at_respects_ttl_boundary() {
        let p = RetryPolicy {
            ttl_us: 250,
            ..policy()
        };
        let mut st = DeliveryState::new(0);
        st.begin_attempt();
        st.begin_attempt();
        // Next backoff is 200; failure at 100 → retry would be at 300 ≥ TTL.
        assert_eq!(st.on_failure(&p, 100), RetryDecision::Expired);
    }
}
