//! A threaded echo Web Service for tests, examples and benches.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use wsd_concurrent::{PoolConfig, RejectionPolicy, ThreadPool};
use wsd_http::{serve_connection, Limits, Request, Response, Status};
use wsd_soap::{rpc as soap_rpc, Envelope};

use crate::rt::Network;

/// A running echo service: each request costs `service_delay` of (slept)
/// CPU and echoes the SOAP payload back.
pub struct EchoServer {
    pool: Arc<ThreadPool>,
    served: Arc<AtomicU64>,
    net: Arc<Network>,
    conns: Arc<crate::rt::ConnTracker>,
    host: String,
    port: u16,
}

impl EchoServer {
    /// Starts the service on `host:port` with `workers` handler threads
    /// and default parser limits.
    pub fn start(
        net: &Arc<Network>,
        host: &str,
        port: u16,
        workers: usize,
        service_delay: Duration,
    ) -> EchoServer {
        Self::start_with_limits(net, host, port, workers, service_delay, Limits::default())
    }

    /// Like [`EchoServer::start`], with operator-supplied parser limits
    /// bounding head/body sizes on every accepted connection.
    pub fn start_with_limits(
        net: &Arc<Network>,
        host: &str,
        port: u16,
        workers: usize,
        service_delay: Duration,
        limits: Limits,
    ) -> EchoServer {
        let pool = Arc::new(
            ThreadPool::new(
                PoolConfig::fixed(format!("echo-{host}"), workers)
                    .rejection(RejectionPolicy::Block),
            )
            .expect("pool"),
        );
        let served = Arc::new(AtomicU64::new(0));
        let conns = crate::rt::ConnTracker::new();
        {
            let pool2 = Arc::clone(&pool);
            let served = Arc::clone(&served);
            let conns = Arc::clone(&conns);
            net.listen(host, port, move |stream| {
                let served = Arc::clone(&served);
                conns.track(&stream);
                let _ = pool2.execute(move || {
                    let _ = serve_connection(stream, &limits, |req| {
                        if !service_delay.is_zero() {
                            std::thread::sleep(service_delay);
                        }
                        served.fetch_add(1, Ordering::Relaxed);
                        echo_handler(req)
                    });
                });
            });
        }
        EchoServer {
            pool,
            served,
            net: Arc::clone(net),
            conns,
            host: host.to_string(),
            port,
        }
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Stops accepting, closes live connections and joins the workers.
    pub fn shutdown(&self) {
        self.net.unlisten(&self.host, self.port);
        self.conns.close_all();
        self.pool.shutdown();
    }
}

fn echo_handler(req: Request) -> Response {
    let Ok(env) = Envelope::parse(&req.body_utf8()) else {
        return Response::empty(Status::BAD_REQUEST);
    };
    let text = soap_rpc::parse_echo(&env).unwrap_or_default();
    let reply = soap_rpc::echo_response(env.version, &text);
    Response::new(
        Status::OK,
        env.version.content_type(),
        reply.to_xml().into_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsd_http::HttpClient;
    use wsd_soap::SoapVersion;

    #[test]
    fn echoes_over_the_network() {
        let net = Network::new();
        let server = EchoServer::start(&net, "ws", 8888, 4, Duration::ZERO);
        let stream = net.connect("ws", 8888).unwrap();
        let mut client = HttpClient::new(stream);
        let env = soap_rpc::echo_request(SoapVersion::V11, "hello-rt");
        let req = Request::soap_post(
            "ws:8888",
            "/echo",
            SoapVersion::V11.content_type(),
            env.to_xml().into_bytes(),
        );
        let resp = client.call(&req).unwrap();
        assert_eq!(resp.status, Status::OK);
        let renv = Envelope::parse(&resp.body_utf8()).unwrap();
        assert_eq!(soap_rpc::parse_echo_response(&renv).unwrap(), "hello-rt");
        assert_eq!(server.served(), 1);
        server.shutdown();
    }

    #[test]
    fn parallel_clients_all_served() {
        let net = Network::new();
        let server = EchoServer::start(&net, "ws", 8888, 8, Duration::from_millis(2));
        let mut handles = Vec::new();
        for i in 0..16 {
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                let stream = net.connect("ws", 8888).unwrap();
                let mut client = HttpClient::new(stream);
                for j in 0..5 {
                    let text = format!("c{i}-m{j}");
                    let env = soap_rpc::echo_request(SoapVersion::V11, &text);
                    let req = Request::soap_post(
                        "ws:8888",
                        "/echo",
                        SoapVersion::V11.content_type(),
                        env.to_xml().into_bytes(),
                    );
                    let resp = client.call(&req).unwrap();
                    let renv = Envelope::parse(&resp.body_utf8()).unwrap();
                    assert_eq!(soap_rpc::parse_echo_response(&renv).unwrap(), text);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.served(), 80);
        server.shutdown();
    }

    #[test]
    fn operator_limits_bound_body_size() {
        let net = Network::new();
        let server = EchoServer::start_with_limits(
            &net,
            "ws",
            8888,
            2,
            Duration::ZERO,
            Limits {
                max_body: 32,
                ..Limits::default()
            },
        );
        let stream = net.connect("ws", 8888).unwrap();
        let mut client = HttpClient::new(stream);
        let req = Request::soap_post("ws:8888", "/echo", "text/xml", vec![b'x'; 64]);
        // The server tears the connection down on the oversized body.
        assert!(client.call(&req).is_err());
        server.shutdown();
    }

    #[test]
    fn bad_request_gets_400() {
        let net = Network::new();
        let server = EchoServer::start(&net, "ws", 8888, 2, Duration::ZERO);
        let stream = net.connect("ws", 8888).unwrap();
        let mut client = HttpClient::new(stream);
        let req = Request::soap_post("ws:8888", "/echo", "text/xml", b"junk".to_vec());
        let resp = client.call(&req).unwrap();
        assert_eq!(resp.status, Status::BAD_REQUEST);
        server.shutdown();
    }
}
