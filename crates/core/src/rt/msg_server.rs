//! The threaded MSG-Dispatcher (paper §4.2, Figure 3): a `CxThread`
//! pool accepts and routes messages; a `WsThread` pool drains
//! per-destination FIFO queues, reusing one connection per destination.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use wsd_concurrent::{
    FifoQueue, OrderedMutex, PoolConfig, RejectionPolicy, ShardedMap, ThreadPool,
};
use wsd_http::{serve_connection, HttpClient, Request, Response, Status};
use wsd_soap::{Envelope, SoapVersion};
use wsd_telemetry::{Counter, Scope};

use crate::config::{ConnFrontEnd, DispatcherConfig};
use crate::msg::{MsgCore, RoutedMeta};
use crate::rt::{now_us, Network, ReactorFrontEnd};
use crate::url::Url;

/// Stop signal for the route-table janitor: a flag under a mutex plus a
/// condvar, so `shutdown()` interrupts the sweep wait immediately instead
/// of being noticed at the next fixed-tick wakeup.
pub(crate) struct JanitorSignal {
    stopped: OrderedMutex<bool>,
    cv: Condvar,
}

impl JanitorSignal {
    pub(crate) fn new() -> Arc<JanitorSignal> {
        Arc::new(JanitorSignal {
            stopped: OrderedMutex::new("msg.janitor", false),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn stop(&self) {
        *self.stopped.lock() = true;
        self.cv.notify_all();
    }

    /// Parks for `wait`; returns `true` when the janitor should exit.
    /// A timed-out wait means "run a sweep"; a signaled one means stop.
    pub(crate) fn wait_or_stopped(&self, wait: std::time::Duration) -> bool {
        let mut stopped = self.stopped.lock();
        if *stopped {
            return true;
        }
        stopped.wait_timeout(&self.cv, wait);
        *stopped
    }
}

/// Counters for the threaded MSG dispatcher.
#[derive(Debug, Default)]
pub struct MsgServerStats {
    /// Messages accepted (`202`).
    pub accepted: AtomicU64,
    /// Messages delivered to their destination.
    pub delivered: AtomicU64,
    /// Messages dropped (queue overflow, dead destination).
    pub dropped: AtomicU64,
    /// Messages rejected by routing/security.
    pub rejected: AtomicU64,
}

/// One queued outbound message: the serialized request plus the
/// `MessageID` captured at enqueue time, so translating a synchronous RPC
/// response never re-parses the request envelope.
struct QueuedMsg {
    req: Request,
    msg_id: Option<String>,
}

struct Dest {
    host: String,
    port: u16,
    queue: FifoQueue<QueuedMsg>,
    /// Whether a `WsThread` currently owns this destination.
    active: AtomicBool,
}

/// Telemetry instruments mirroring [`MsgServerStats`], plus a counter
/// for connection reuse on the `WsThread` side.
struct RtMsgTelemetry {
    scope: Scope,
    accepted: Counter,
    delivered: Counter,
    dropped: Counter,
    rejected: Counter,
    connects: Counter,
    reused_sends: Counter,
}

impl RtMsgTelemetry {
    fn new(scope: &Scope) -> Self {
        RtMsgTelemetry {
            scope: scope.clone(),
            accepted: scope.counter("accepted"),
            delivered: scope.counter("delivered"),
            dropped: scope.counter("dropped"),
            rejected: scope.counter("rejected"),
            connects: scope.counter("connects"),
            reused_sends: scope.counter("reused_sends"),
        }
    }
}

/// A running MSG dispatcher.
pub struct MsgDispatcherServer {
    core: Arc<MsgCore>,
    janitor: Arc<JanitorSignal>,
    janitor_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    front: Option<ReactorFrontEnd>,
    cx_pool: Arc<ThreadPool>,
    ws_pool: Arc<ThreadPool>,
    dests: Arc<ShardedMap<String, Arc<Dest>>>,
    stats: Arc<MsgServerStats>,
    tele: RtMsgTelemetry,
    net: Arc<Network>,
    conns: Arc<crate::rt::ConnTracker>,
    host: String,
    port: u16,
}

impl MsgDispatcherServer {
    /// Starts the dispatcher on `host:port` around a routing core.
    pub fn start(
        net: &Arc<Network>,
        host: &str,
        port: u16,
        core: MsgCore,
        config: DispatcherConfig,
    ) -> Arc<MsgDispatcherServer> {
        Self::start_with_telemetry(net, host, port, core, config, &Scope::noop())
    }

    /// Like [`MsgDispatcherServer::start`], with telemetry instruments
    /// registered under `scope`: message counters, `cx_pool`/`ws_pool`
    /// sub-scopes, and one labeled `dest{host:port}` queue scope per
    /// destination.
    pub fn start_with_telemetry(
        net: &Arc<Network>,
        host: &str,
        port: u16,
        core: MsgCore,
        config: DispatcherConfig,
        scope: &Scope,
    ) -> Arc<MsgDispatcherServer> {
        let cx_pool = Arc::new(
            ThreadPool::new(
                PoolConfig::growable(
                    format!("CxThread-{host}"),
                    config.cx_core_threads,
                    config.cx_max_threads,
                )
                .rejection(RejectionPolicy::Block)
                .telemetry(scope.child("cx_pool")),
            )
            .expect("cx pool"),
        );
        let ws_pool = Arc::new(
            ThreadPool::new(
                PoolConfig::growable(
                    format!("WsThread-{host}"),
                    config.ws_core_threads,
                    config.ws_max_threads,
                )
                .rejection(RejectionPolicy::Block)
                .telemetry(scope.child("ws_pool")),
            )
            .expect("ws pool"),
        );
        let mut core = core;
        core.bind_telemetry(&scope.child("core"));
        let core = Arc::new(core);
        // Route-table janitor: drop forwarded requests whose replies
        // never came (paper §4.4's expiration-time future work). Parks on
        // a condvar so shutdown() tears it down without a tick of lag.
        let janitor = JanitorSignal::new();
        let janitor_thread = {
            let core = Arc::clone(&core);
            let signal = Arc::clone(&janitor);
            let ttl = config.route_ttl;
            // wsd-lint: allow(raw-thread-spawn): single long-lived maintenance thread parked on a condvar; pooling it would pin a pool slot forever
            std::thread::Builder::new()
                .name(format!("route-janitor-{host}"))
                .spawn(move || {
                    let sweep_every = (ttl / 4).max(std::time::Duration::from_millis(50));
                    while !signal.wait_or_stopped(sweep_every) {
                        core.expire_routes(crate::rt::now_us(), ttl.as_micros() as u64);
                    }
                })
                .expect("janitor thread")
        };
        let front = match config.front_end {
            ConnFrontEnd::Reactor => Some(ReactorFrontEnd::start(
                format!("reactor-{host}"),
                Arc::clone(&cx_pool),
                &scope.child("reactor"),
            )),
            ConnFrontEnd::ThreadPerConn => None,
        };
        let server = Arc::new(MsgDispatcherServer {
            core,
            janitor,
            janitor_thread: Mutex::new(Some(janitor_thread)),
            front,
            cx_pool,
            ws_pool,
            dests: Arc::new(ShardedMap::new()),
            stats: Arc::new(MsgServerStats::default()),
            tele: RtMsgTelemetry::new(scope),
            net: Arc::clone(net),
            conns: crate::rt::ConnTracker::new(),
            host: host.to_string(),
            port,
        });
        {
            let server2 = Arc::clone(&server);
            let config = config.clone();
            let limits = config.limits;
            net.listen(host, port, move |stream| {
                let server = Arc::clone(&server2);
                let config = config.clone();
                server.conns.track(&stream);
                match &server.front {
                    Some(front) => {
                        let handler = Arc::clone(&server);
                        front.serve(
                            stream,
                            limits,
                            Arc::new(move |req| handler.accept(&config, req)),
                        );
                    }
                    None => {
                        let pool = Arc::clone(&server.cx_pool);
                        let _ = pool.execute(move || {
                            let _ = serve_connection(stream, &limits, |req| {
                                server.accept(&config, req)
                            });
                        });
                    }
                }
            });
        }
        server
    }

    /// Counters.
    pub fn stats(&self) -> &MsgServerStats {
        &self.stats
    }

    /// The routing core (for inspecting pending routes).
    pub fn core(&self) -> &MsgCore {
        &self.core
    }

    /// Reactor front-end telemetry view (open connections), when the
    /// reactor front end is configured.
    pub fn open_connections(&self) -> Option<usize> {
        self.front.as_ref().map(ReactorFrontEnd::open_connections)
    }

    /// Stops accepting, closes connections and queues, joins both pools.
    pub fn shutdown(&self) {
        self.janitor.stop();
        if let Some(h) = self.janitor_thread.lock().take() {
            let _ = h.join();
        }
        self.net.unlisten(&self.host, self.port);
        self.conns.close_all();
        if let Some(front) = &self.front {
            front.shutdown();
        }
        self.dests.for_each(|_, d| d.queue.close());
        self.cx_pool.shutdown();
        self.ws_pool.shutdown();
    }

    /// CxThread work: route (splice fast path when possible), enqueue, ack.
    fn accept(self: &Arc<Self>, config: &DispatcherConfig, req: Request) -> Response {
        let Some(xml) = req.body_str() else {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            self.tele.rejected.inc();
            return Response::empty(Status::BAD_REQUEST);
        };
        // Splice into a pooled scratch buffer; the queue takes ownership
        // of the rewritten bytes, the scratch returns to the pool.
        let mut scratch = wsd_soap::checkout();
        match self.core.route_raw_into(xml, req.body.len(), now_us(), &mut scratch.out) {
            Ok(RoutedMeta::Forward { to, message_id, .. }) => {
                let body = scratch.take_out();
                self.ack_enqueue(config, &to, body, Some(message_id))
            }
            Ok(RoutedMeta::Reply { to, message_id }) => {
                let message_id = message_id.map(std::borrow::Cow::into_owned);
                let body = scratch.take_out();
                self.ack_enqueue(config, &to, body, message_id)
            }
            Err(e) => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                self.tele.rejected.inc();
                crate::rpc::error_response(SoapVersion::V11, &e)
            }
        }
    }

    fn ack_enqueue(
        self: &Arc<Self>,
        config: &DispatcherConfig,
        to: &Url,
        body: String,
        msg_id: Option<String>,
    ) -> Response {
        if self.enqueue(config, to, body, msg_id) {
            self.stats.accepted.fetch_add(1, Ordering::Relaxed);
            self.tele.accepted.inc();
            Response::empty(Status::ACCEPTED)
        } else {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            self.tele.dropped.inc();
            Response::empty(Status::SERVICE_UNAVAILABLE)
        }
    }

    fn enqueue(
        self: &Arc<Self>,
        config: &DispatcherConfig,
        to: &Url,
        body: String,
        msg_id: Option<String>,
    ) -> bool {
        let fwd = Request::soap_post(
            &to.authority(),
            &to.path,
            SoapVersion::V11.content_type(),
            body.into_bytes(),
        );
        let authority = to.authority();
        let dest = self.dests.get_or_insert_with(authority.clone(), || {
            let queue = FifoQueue::bounded(config.queue_capacity);
            queue.bind_telemetry(&self.tele.scope.labeled("dest", &authority));
            Arc::new(Dest {
                host: to.host.clone(),
                port: to.port,
                queue,
                active: AtomicBool::new(false),
            })
        });
        if dest.queue.try_push(QueuedMsg { req: fwd, msg_id }).is_err() {
            return false;
        }
        self.activate(config, dest);
        true
    }

    /// Hands the destination to a WsThread if none owns it.
    fn activate(self: &Arc<Self>, config: &DispatcherConfig, dest: Arc<Dest>) {
        if dest.active.swap(true, Ordering::AcqRel) {
            return; // someone is already draining it
        }
        let server = Arc::clone(self);
        let config = config.clone();
        let pool = Arc::clone(&self.ws_pool);
        // wsd-lint: allow(alloc-in-drain): WsThread handoff — pool growth and closure boxing are per-activation, not per-message
        let _ = pool.execute(move || server.drain(&config, dest));
    }

    /// WsThread work: drain the queue over one kept-open connection,
    /// coalescing up to `drain_batch` envelopes per pass — one reusable
    /// serialization buffer, one write, one flush, then the responses are
    /// read back in order.
    fn drain(self: &Arc<Self>, config: &DispatcherConfig, dest: Arc<Dest>) {
        let mut client: Option<HttpClient<wsd_http::PipeStream>> = None;
        let mut buf: Vec<u8> = Vec::with_capacity(4096);
        // Keep the thread (and connection) for `connection_linger` of
        // idleness, then hand the slot back.
        while let Ok(mut batch) = dest
            .queue
            .pop_timeout_batch(config.connection_linger, config.drain_batch)
        {
            let mut delivered = 0u64;
            for _attempt in 0..2 {
                if batch.is_empty() {
                    break;
                }
                let fresh_conn = client.is_none();
                if fresh_conn {
                    // wsd-lint: allow(alloc-in-drain): connection setup — amortized across every batch the kept-open connection drains
                    match self.net.connect(&dest.host, dest.port) {
                        Ok(stream) => {
                            self.tele.connects.inc();
                            client = Some(HttpClient::new(stream));
                        }
                        Err(_) => break, // dead destination
                    }
                }
                // `client` is set above on this same pass; a `None` here
                // means the connect raced a shutdown — hand the batch to
                // the drop accounting below rather than panic mid-drain.
                let Some(c) = client.as_mut() else { break };
                match c.call_pipelined(batch.iter().map(|m| &m.req), &mut buf) {
                    Ok(resps) => {
                        delivered += batch.len() as u64;
                        // The first send on a fresh connection opens it;
                        // every other message in the batch reuses it.
                        let reused = batch.len() - usize::from(fresh_conn);
                        self.tele.reused_sends.add(reused as u64);
                        for (msg, resp) in batch.drain(..).zip(resps) {
                            if resp.status.0 == 200 {
                                // An RPC service answered synchronously:
                                // translate the response into a reply
                                // message (Table 1 quadrant 3).
                                // wsd-lint: allow(alloc-in-drain): quadrant-3 translation constructs a fresh reply request — message creation, not the pure drain loop
                                self.translate_rpc_response(config, msg.msg_id.as_deref(), &resp);
                            }
                        }
                        break;
                    }
                    Err(_) => {
                        // Stale connection: rebuild once and resend the
                        // whole batch.
                        client = None;
                    }
                }
            }
            if delivered > 0 {
                self.stats.delivered.fetch_add(delivered, Ordering::Relaxed);
                self.tele.delivered.add(delivered);
            }
            let dropped = batch.len() as u64;
            if dropped > 0 {
                self.stats.dropped.fetch_add(dropped, Ordering::Relaxed);
                self.tele.dropped.add(dropped);
            }
        }
        dest.active.store(false, Ordering::Release);
        // Re-activate if messages raced in while we were shutting down.
        if !dest.queue.is_empty() && !dest.queue.is_closed() {
            self.activate(config, dest);
        }
    }

    /// Translates a `200` response from an RPC-style destination into a
    /// reply message routed back to the original sender. `req_msg_id` is
    /// the forwarded request's `MessageID`, captured when the request was
    /// enqueued — the request envelope is never re-parsed here.
    fn translate_rpc_response(
        self: &Arc<Self>,
        config: &DispatcherConfig,
        req_msg_id: Option<&str>,
        resp: &Response,
    ) {
        let Some(xml) = resp.body_str() else {
            return;
        };
        // A canonically-serialized reply that already correlates itself
        // routes as raw bytes; otherwise parse and inject RelatesTo from
        // the carried request id.
        let owned;
        let routable: &str = if wsd_wsa::scan(xml).is_some_and(|s| s.correlation_id().is_some()) {
            xml
        } else {
            let Ok(mut env) = Envelope::parse(xml) else {
                return;
            };
            if let Ok(mut h) = wsd_wsa::WsaHeaders::from_envelope(&env) {
                if h.relates_to.is_empty() {
                    if let Some(id) = req_msg_id {
                        h.relates_to.push((id.to_string(), None));
                        h.apply(&mut env);
                    }
                }
            }
            owned = env.to_xml();
            &owned
        };
        let mut scratch = wsd_soap::checkout();
        match self.core.route_raw_into(routable, routable.len(), now_us(), &mut scratch.out) {
            Ok(RoutedMeta::Reply { to, message_id }) => {
                let message_id = message_id.map(std::borrow::Cow::into_owned);
                let body = scratch.take_out();
                let _ = self.enqueue(config, &to, body, message_id);
            }
            Ok(RoutedMeta::Forward { to, message_id, .. }) => {
                let body = scratch.take_out();
                let _ = self.enqueue(config, &to, body, Some(message_id));
            }
            Err(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::rt::echo_server::EchoServer;
    use std::time::Duration;
    use wsd_http::Limits;
    use wsd_soap::rpc as soap_rpc;
    use wsd_wsa::{EndpointReference, WsaHeaders};

    fn quick_config() -> DispatcherConfig {
        DispatcherConfig {
            connection_linger: Duration::from_millis(50),
            ..DispatcherConfig::default()
        }
    }

    /// Serves a tiny callback endpoint collecting POSTed envelopes.
    fn start_callback(
        net: &Arc<Network>,
        host: &str,
        port: u16,
    ) -> Arc<parking_lot::Mutex<Vec<String>>> {
        let got = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let got2 = Arc::clone(&got);
        net.listen(host, port, move |stream| {
            let got = Arc::clone(&got2);
            std::thread::spawn(move || {
                let _ = serve_connection(stream, &Limits::default(), |req| {
                    got.lock().push(req.body_utf8().to_string());
                    Response::empty(Status::ACCEPTED)
                });
            });
        });
        got
    }

    fn one_way(net: &Arc<Network>, reply_to: &str, id: &str, text: &str) -> Status {
        let mut env = soap_rpc::echo_request(SoapVersion::V11, text);
        WsaHeaders::new()
            .to("http://dispatcher/svc/Echo")
            .reply_to(EndpointReference::new(reply_to))
            .message_id(id)
            .apply(&mut env);
        let req = Request::soap_post(
            "dispatcher:8080",
            "/msg",
            SoapVersion::V11.content_type(),
            env.to_xml().into_bytes(),
        );
        let stream = net.connect("dispatcher", 8080).unwrap();
        let mut client = HttpClient::new(stream);
        client.call(&req).unwrap().status
    }

    /// An echo WS in one-way style: accepts a message, replies by POSTing
    /// a new message back to the dispatcher.
    fn start_oneway_ws(net: &Arc<Network>, dispatcher: (String, u16)) {
        let net2 = Arc::clone(net);
        net.listen("ws", 8888, move |stream| {
            let net = Arc::clone(&net2);
            let _dispatcher = dispatcher.clone();
            std::thread::spawn(move || {
                let _ = serve_connection(stream, &Limits::default(), |req| {
                    let env = Envelope::parse(&req.body_utf8()).unwrap();
                    let h = WsaHeaders::from_envelope(&env).unwrap();
                    let text = soap_rpc::parse_echo(&env).unwrap_or_default();
                    let mut reply = soap_rpc::echo_response(env.version, &text);
                    let mut rh = WsaHeaders::new();
                    if let Some(r) = &h.reply_to {
                        rh = rh.to(r.address.clone());
                    }
                    if let Some(id) = &h.message_id {
                        rh = rh.relates_to(id.clone());
                    }
                    rh.apply(&mut reply);
                    // Fire the reply at the dispatcher (ReplyTo).
                    if let Some(r) = &h.reply_to {
                        if let Ok(url) = Url::parse(&r.address) {
                            if let Ok(s) = net.connect(&url.host, url.port) {
                                let mut c = HttpClient::new(s);
                                let rr = Request::soap_post(
                                    &url.authority(),
                                    &url.path,
                                    SoapVersion::V11.content_type(),
                                    reply.to_xml().into_bytes(),
                                );
                                let _ = c.call(&rr);
                            }
                        }
                    }
                    Response::empty(Status::ACCEPTED)
                });
            });
        });
    }

    #[test]
    fn shutdown_is_immediate_despite_long_route_ttl() {
        let net = Network::new();
        let core = MsgCore::new(Arc::new(Registry::new()), "http://dispatcher:8080/msg", 3);
        let config = DispatcherConfig {
            route_ttl: Duration::from_secs(300), // sweep tick would be 75 s
            ..DispatcherConfig::default()
        };
        let disp = MsgDispatcherServer::start(&net, "dispatcher", 8080, core, config);
        let t0 = std::time::Instant::now();
        disp.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "shutdown must interrupt the janitor's sweep wait immediately"
        );
    }

    #[test]
    fn thread_per_conn_front_end_still_serves() {
        let net = Network::new();
        let ws = EchoServer::start(&net, "ws", 8888, 4, Duration::ZERO);
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        let core = MsgCore::new(registry, "http://dispatcher:8080/msg", 3);
        let config = DispatcherConfig {
            front_end: ConnFrontEnd::ThreadPerConn,
            ..quick_config()
        };
        let disp = MsgDispatcherServer::start(&net, "dispatcher", 8080, core, config);
        assert!(disp.open_connections().is_none());
        for i in 0..3 {
            let status = one_way(&net, "http://client:9000/cb", &format!("uuid:tpc{i}"), "x");
            assert_eq!(status, Status::ACCEPTED);
        }
        for _ in 0..100 {
            if disp.stats().delivered.load(Ordering::Relaxed) == 3 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(disp.stats().delivered.load(Ordering::Relaxed), 3);
        disp.shutdown();
        ws.shutdown();
    }

    #[test]
    fn reactor_open_connection_gauge_returns_to_zero() {
        let reg = wsd_telemetry::Registry::new();
        let net = Network::new();
        let core = MsgCore::new(Arc::new(Registry::new()), "http://dispatcher:8080/msg", 3);
        let disp = MsgDispatcherServer::start_with_telemetry(
            &net,
            "dispatcher",
            8080,
            core,
            quick_config(),
            &reg.scope("rt.msg"),
        );
        // Hold open keep-alive connections without completing a request.
        let mut held = Vec::new();
        for _ in 0..6 {
            held.push(net.connect("dispatcher", 8080).unwrap());
        }
        for _ in 0..100 {
            if disp.open_connections() == Some(6) {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(disp.open_connections(), Some(6));
        disp.shutdown();
        assert_eq!(disp.open_connections(), Some(0));
        let snap = reg.snapshot();
        let open = match snap.get("rt.msg.reactor.open_conns") {
            Some(wsd_telemetry::MetricValue::Gauge { value, .. }) => *value,
            other => panic!("expected gauge, got {other:?}"),
        };
        assert_eq!(open, 0);
        drop(held);
    }

    #[test]
    fn forwards_one_way_messages_to_service() {
        let net = Network::new();
        let ws = EchoServer::start(&net, "ws", 8888, 4, Duration::ZERO);
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        let core = MsgCore::new(registry, "http://dispatcher:8080/msg", 3);
        let disp =
            MsgDispatcherServer::start(&net, "dispatcher", 8080, core, quick_config());
        for i in 0..5 {
            let status = one_way(&net, "http://client:9000/cb", &format!("uuid:{i}"), "x");
            assert_eq!(status, Status::ACCEPTED);
        }
        // Wait for the WsThread to drain.
        for _ in 0..100 {
            if disp.stats().delivered.load(Ordering::Relaxed) == 5 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(disp.stats().delivered.load(Ordering::Relaxed), 5);
        assert_eq!(ws.served(), 5);
        disp.shutdown();
        ws.shutdown();
    }

    #[test]
    fn telemetry_counts_messages_and_connection_reuse() {
        let reg = wsd_telemetry::Registry::new();
        let net = Network::new();
        let ws = EchoServer::start(&net, "ws", 8888, 4, Duration::ZERO);
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        let core = MsgCore::new(registry, "http://dispatcher:8080/msg", 3);
        let disp = MsgDispatcherServer::start_with_telemetry(
            &net,
            "dispatcher",
            8080,
            core,
            quick_config(),
            &reg.scope("rt.msg"),
        );
        for i in 0..5 {
            let status = one_way(&net, "http://client:9000/cb", &format!("uuid:t{i}"), "x");
            assert_eq!(status, Status::ACCEPTED);
        }
        for _ in 0..100 {
            if disp.stats().delivered.load(Ordering::Relaxed) == 5 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        disp.shutdown();
        ws.shutdown();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("rt.msg.accepted"), 5);
        assert_eq!(snap.counter("rt.msg.delivered"), 5);
        // One kept-open connection serves the whole run: at least one
        // send must have reused it.
        assert!(snap.counter("rt.msg.connects") < 5);
        assert!(snap.counter("rt.msg.reused_sends") >= 1);
        // Per-destination queue instruments appear under a labeled scope.
        assert_eq!(snap.counter("rt.msg.dest{ws:8888}.pushed"), 5);
        assert!(snap.counter("rt.msg.cx_pool.completed") >= 1);
        // Canonical envelopes take the splice fast path.
        assert!(snap.counter("rt.msg.core.fastpath_hits") >= 5);
    }

    #[test]
    fn full_reply_cycle_reaches_client_callback() {
        let net = Network::new();
        start_oneway_ws(&net, ("dispatcher".into(), 8080));
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        let core = MsgCore::new(registry, "http://dispatcher:8080/msg", 3);
        let disp =
            MsgDispatcherServer::start(&net, "dispatcher", 8080, core, quick_config());
        let got = start_callback(&net, "client", 9000);
        let status = one_way(&net, "http://client:9000/cb", "uuid:rt-1", "voila");
        assert_eq!(status, Status::ACCEPTED);
        for _ in 0..200 {
            if !got.lock().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let replies = got.lock();
        assert_eq!(replies.len(), 1, "reply must reach the client callback");
        assert!(replies[0].contains("voila"));
        assert!(replies[0].contains("uuid:rt-1"));
        drop(replies);
        disp.shutdown();
    }

    #[test]
    fn firewalled_client_reply_is_dropped() {
        let net = Network::new();
        start_oneway_ws(&net, ("dispatcher".into(), 8080));
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        let core = MsgCore::new(registry, "http://dispatcher:8080/msg", 3);
        let disp =
            MsgDispatcherServer::start(&net, "dispatcher", 8080, core, quick_config());
        let _got = start_callback(&net, "client", 9000);
        net.set_firewalled("client", true);
        let status = one_way(&net, "http://client:9000/cb", "uuid:fw", "x");
        assert_eq!(status, Status::ACCEPTED);
        for _ in 0..200 {
            if disp.stats().dropped.load(Ordering::Relaxed) >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(disp.stats().dropped.load(Ordering::Relaxed) >= 1);
        disp.shutdown();
    }

    #[test]
    fn unroutable_message_rejected_with_fault() {
        let net = Network::new();
        let core = MsgCore::new(Arc::new(Registry::new()), "http://dispatcher:8080/msg", 3);
        let disp =
            MsgDispatcherServer::start(&net, "dispatcher", 8080, core, quick_config());
        let env = soap_rpc::echo_request(SoapVersion::V11, "x"); // no WSA headers
        let req = Request::soap_post(
            "dispatcher:8080",
            "/msg",
            SoapVersion::V11.content_type(),
            env.to_xml().into_bytes(),
        );
        let stream = net.connect("dispatcher", 8080).unwrap();
        let mut client = HttpClient::new(stream);
        let resp = client.call(&req).unwrap();
        assert_eq!(resp.status, Status::BAD_REQUEST);
        assert_eq!(disp.stats().rejected.load(Ordering::Relaxed), 1);
        disp.shutdown();
    }

    #[test]
    fn many_concurrent_senders_nothing_lost() {
        let net = Network::new();
        let ws = EchoServer::start(&net, "ws", 8888, 8, Duration::ZERO);
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        let core = MsgCore::new(registry, "http://dispatcher:8080/msg", 3);
        let disp =
            MsgDispatcherServer::start(&net, "dispatcher", 8080, core, quick_config());
        let mut handles = Vec::new();
        for t in 0..8 {
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                for i in 0..10 {
                    let status = one_way(
                        &net,
                        "http://client:9000/cb",
                        &format!("uuid:{t}-{i}"),
                        "x",
                    );
                    assert_eq!(status, Status::ACCEPTED);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for _ in 0..300 {
            if disp.stats().delivered.load(Ordering::Relaxed) == 80 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(disp.stats().delivered.load(Ordering::Relaxed), 80);
        assert_eq!(ws.served(), 80);
        disp.shutdown();
        ws.shutdown();
    }
}
