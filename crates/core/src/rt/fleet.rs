//! The sharded dispatcher fleet on the threaded runtime: N complete
//! [`Deployment`]s behind one consistent-hash ring.
//!
//! Instance 0's registry is the replication leader; every other
//! instance runs a [`RegistryFollower`] that tails it ([`FleetDeployment::sync`]
//! is the control tick). Clients route a logical service name through
//! [`FleetDeployment::route`] — the ring owner — before dispatching to
//! that instance's ports, the same route-then-enqueue shape the
//! simulated fleet (and the `shard-route-before-enqueue` lint rule)
//! enforces.
//!
//! Ownership handoff of durable mailboxes is modeled on the simulated
//! runtime (`sim::fleet`), where kills are injectable and virtual
//! time makes recovery measurable; here [`FleetDeployment::stop_instance`]
//! reassigns the dead instance's arcs so routing stays total.

use std::sync::Arc;

use parking_lot::RwLock;

use wsd_fleet::{InstanceId, ShardRing};

use crate::config::FleetConfig;
use crate::registry::Registry;
use crate::registry_repl::{RegistryFollower, RegistryLeader};
use crate::rt::{Deployment, Network};
use crate::url::Url;
use crate::WsdError;

/// One member of the fleet: a full dispatcher deployment plus its
/// replication role.
pub struct FleetMember {
    id: InstanceId,
    host: String,
    deployment: Deployment,
    /// `None` on the leader (instance 0), which applies writes locally.
    follower: Option<RegistryFollower>,
}

impl FleetMember {
    /// The ring identity of this member.
    pub fn id(&self) -> InstanceId {
        self.id
    }

    /// The host this member's services listen on.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The member's running deployment.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The member's replication offset (the leader is always current).
    pub fn repl_offset(&self, leader: &RegistryLeader) -> u64 {
        match &self.follower {
            Some(f) => f.offset(),
            None => leader.offset(),
        }
    }
}

/// N dispatcher instances behind a seeded consistent-hash ring, with
/// the registry replicated leader → followers.
pub struct FleetDeployment {
    ring: RwLock<ShardRing>,
    leader: Arc<RegistryLeader>,
    members: Vec<Option<FleetMember>>,
}

impl FleetDeployment {
    /// Starts `cfg.instances` deployments on hosts `{base}-0` ..
    /// `{base}-{n-1}`, instance 0 holding the registry leader.
    pub fn start(net: &Arc<Network>, base_host: &str, cfg: &FleetConfig) -> FleetDeployment {
        let leader = Arc::new(RegistryLeader::new(
            Arc::new(Registry::new()),
            cfg.repl_backlog,
        ));
        let members = (0..cfg.instances.max(1) as u32)
            .map(|i| {
                let host = format!("{base_host}-{i}");
                let (registry, follower) = if i == 0 {
                    (Arc::clone(leader.registry()), None)
                } else {
                    let follower = RegistryFollower::new(Arc::new(Registry::new()));
                    (Arc::clone(follower.registry()), Some(follower))
                };
                let deployment = Deployment::builder(net, &host)
                    .registry(registry)
                    .seed(cfg.ring_seed ^ u64::from(i))
                    .start();
                Some(FleetMember {
                    id: InstanceId(i),
                    host,
                    deployment,
                    follower,
                })
            })
            .collect();
        FleetDeployment {
            ring: RwLock::new(cfg.ring()),
            leader,
            members,
        }
    }

    /// The registry replication leader (instance 0's registry).
    pub fn leader(&self) -> &RegistryLeader {
        &self.leader
    }

    /// Live members, in instance order.
    pub fn members(&self) -> impl Iterator<Item = &FleetMember> {
        self.members.iter().flatten()
    }

    /// Registers a service at the leader. Followers see it on the next
    /// [`sync`](FleetDeployment::sync).
    pub fn register(&self, logical: &str, url: Url) -> u64 {
        self.leader.register(logical, url)
    }

    /// Removes a service at the leader.
    pub fn unregister(&self, logical: &str) -> u64 {
        self.leader.unregister(logical)
    }

    /// One replication tick: every follower tails the leader. Returns
    /// the total number of commands applied.
    pub fn sync(&self) -> Result<usize, WsdError> {
        let mut applied = 0;
        for member in self.members.iter().flatten() {
            if let Some(follower) = &member.follower {
                applied += follower.catch_up(&self.leader)?;
            }
        }
        Ok(applied)
    }

    /// Routes a logical service name to the owning live member. This
    /// is the step every fleet client must take before enqueuing.
    pub fn route(&self, logical: &str) -> Option<&FleetMember> {
        let owner = self.ring.read().owner_of(logical)?;
        self.members.get(owner.0 as usize)?.as_ref()
    }

    /// Stops one instance and reassigns its ring arcs, so
    /// [`route`](FleetDeployment::route) stays total over live members.
    /// Returns how many arcs moved.
    pub fn stop_instance(&mut self, id: InstanceId) -> usize {
        let Some(member) = self.members.get_mut(id.0 as usize).and_then(Option::take) else {
            return 0;
        };
        member.deployment.shutdown();
        self.ring.write().remove_instance(id).len()
    }

    /// Stops every member.
    pub fn shutdown(&self) {
        for member in self.members.iter().flatten() {
            member.deployment.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt::{rpc_call, EchoServer};
    use std::time::Duration;
    use wsd_soap::{rpc, SoapVersion};

    fn fleet_cfg(n: usize) -> FleetConfig {
        FleetConfig {
            instances: n,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_routes_and_replicates() {
        let net = Network::new();
        let ws = EchoServer::start(&net, "ws", 8888, 2, Duration::ZERO);
        let mut fleet = FleetDeployment::start(&net, "fleet", &fleet_cfg(3));

        fleet.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        fleet.sync().unwrap();

        // Every member's registry converged on the same entry.
        for member in fleet.members() {
            assert!(
                member.deployment().registry().lookup("Echo").is_ok(),
                "{} missing Echo",
                member.host()
            );
            assert_eq!(member.repl_offset(fleet.leader()), fleet.leader().offset());
        }

        // Route, then dispatch at the owner — through its own stack.
        let owner = fleet.route("Echo").expect("ring is non-empty");
        let resp = rpc_call(
            &net,
            owner.host(),
            owner.deployment().rpc_port(),
            "/svc/Echo",
            &rpc::echo_request(SoapVersion::V11, "fleet"),
            None,
        )
        .unwrap();
        assert_eq!(rpc::parse_echo_response(&resp).unwrap(), "fleet");

        // Kill the owner: routing must fail over to a live member and
        // keep serving.
        let dead = owner.id();
        let moved = fleet.stop_instance(dead);
        assert!(moved > 0, "dead instance owned arcs");
        let successor = fleet.route("Echo").expect("ring still non-empty");
        assert_ne!(successor.id(), dead);
        let resp = rpc_call(
            &net,
            successor.host(),
            successor.deployment().rpc_port(),
            "/svc/Echo",
            &rpc::echo_request(SoapVersion::V11, "again"),
            None,
        )
        .unwrap();
        assert_eq!(rpc::parse_echo_response(&resp).unwrap(), "again");

        fleet.shutdown();
        ws.shutdown();
    }

    #[test]
    fn single_instance_fleet_is_a_plain_deployment() {
        let net = Network::new();
        let fleet = FleetDeployment::start(&net, "solo", &fleet_cfg(1));
        fleet.register("Svc", Url::parse("http://ws:1/x").unwrap());
        assert_eq!(fleet.sync().unwrap(), 0, "no followers to catch up");
        let owner = fleet.route("Svc").unwrap();
        assert_eq!(owner.id(), InstanceId(0));
        fleet.shutdown();
    }
}
