//! The threaded RPC-Dispatcher: forwards an RPC invocation on a new
//! upstream connection and relays the response on the client's
//! connection (paper §4.2, "the first phase of the implementation").

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use wsd_concurrent::{PoolConfig, RejectionPolicy, ThreadPool};
use wsd_http::{serve_connection, HttpClient, Request, Response};
use wsd_soap::SoapVersion;
use wsd_telemetry::{Counter, Scope};

use crate::config::{ConnFrontEnd, DispatcherConfig};
use crate::registry::Registry;
use crate::rpc::{error_response, plan_forward, upstream_failure_response, RpcDispatchStats};
use crate::rt::{Network, ReactorFrontEnd};
use crate::security::PolicyChain;

/// Telemetry instruments mirroring [`RpcDispatchStats`].
struct RtRpcTelemetry {
    received: Counter,
    forwarded: Counter,
    relayed: Counter,
    refused: Counter,
    upstream_failures: Counter,
}

impl RtRpcTelemetry {
    fn new(scope: &Scope) -> Self {
        RtRpcTelemetry {
            received: scope.counter("received"),
            forwarded: scope.counter("forwarded"),
            relayed: scope.counter("relayed"),
            refused: scope.counter("refused"),
            upstream_failures: scope.counter("upstream_failures"),
        }
    }
}

/// A running RPC dispatcher.
pub struct RpcDispatcherServer {
    pool: Arc<ThreadPool>,
    front: Option<ReactorFrontEnd>,
    stats: Arc<Mutex<RpcDispatchStats>>,
    net: Arc<Network>,
    conns: Arc<crate::rt::ConnTracker>,
    host: String,
    port: u16,
}

impl RpcDispatcherServer {
    /// Starts the dispatcher on `host:port`.
    pub fn start(
        net: &Arc<Network>,
        host: &str,
        port: u16,
        registry: Arc<Registry>,
        policies: PolicyChain,
        config: DispatcherConfig,
    ) -> RpcDispatcherServer {
        Self::start_with_telemetry(net, host, port, registry, policies, config, &Scope::noop())
    }

    /// Like [`RpcDispatcherServer::start`], with telemetry instruments
    /// registered under `scope` (request counters plus a `pool` sub-scope
    /// for the connection-handling thread pool).
    pub fn start_with_telemetry(
        net: &Arc<Network>,
        host: &str,
        port: u16,
        registry: Arc<Registry>,
        policies: PolicyChain,
        config: DispatcherConfig,
        scope: &Scope,
    ) -> RpcDispatcherServer {
        let tele = Arc::new(RtRpcTelemetry::new(scope));
        let pool = Arc::new(
            ThreadPool::new(
                PoolConfig::growable(
                    format!("rpc-disp-{host}"),
                    config.cx_core_threads,
                    config.cx_max_threads,
                )
                .rejection(RejectionPolicy::Block)
                .telemetry(scope.child("pool")),
            )
            .expect("pool"),
        );
        let stats = Arc::new(Mutex::new(RpcDispatchStats::default()));
        let policies = Arc::new(policies);
        let conns = crate::rt::ConnTracker::new();
        let front = match config.front_end {
            ConnFrontEnd::Reactor => Some(ReactorFrontEnd::start(
                format!("reactor-rpc-{host}"),
                Arc::clone(&pool),
                &scope.child("reactor"),
            )),
            ConnFrontEnd::ThreadPerConn => None,
        };
        {
            let pool2 = Arc::clone(&pool);
            let stats = Arc::clone(&stats);
            let net2 = Arc::clone(net);
            let conns = Arc::clone(&conns);
            let tele = Arc::clone(&tele);
            let front = front.clone();
            let response_timeout = config.response_timeout;
            let limits = config.limits;
            net.listen(host, port, move |stream| {
                let registry = Arc::clone(&registry);
                let policies = Arc::clone(&policies);
                let stats = Arc::clone(&stats);
                let net = Arc::clone(&net2);
                let tele = Arc::clone(&tele);
                conns.track(&stream);
                match &front {
                    Some(front) => front.serve(
                        stream,
                        limits,
                        Arc::new(move |req| {
                            handle(&net, &registry, &policies, &stats, &tele, response_timeout, req)
                        }),
                    ),
                    None => {
                        let _ = pool2.execute(move || {
                            let _ = serve_connection(stream, &limits, |req| {
                                handle(
                                    &net,
                                    &registry,
                                    &policies,
                                    &stats,
                                    &tele,
                                    response_timeout,
                                    req,
                                )
                            });
                        });
                    }
                }
            });
        }
        RpcDispatcherServer {
            pool,
            front,
            stats,
            net: Arc::clone(net),
            conns,
            host: host.to_string(),
            port,
        }
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> RpcDispatchStats {
        self.stats.lock().clone()
    }

    /// Stops accepting, closes live connections and joins the workers.
    pub fn shutdown(&self) {
        self.net.unlisten(&self.host, self.port);
        self.conns.close_all();
        if let Some(front) = &self.front {
            front.shutdown();
        }
        self.pool.shutdown();
    }
}

fn handle(
    net: &Arc<Network>,
    registry: &Registry,
    policies: &PolicyChain,
    stats: &Mutex<RpcDispatchStats>,
    tele: &RtRpcTelemetry,
    response_timeout: Duration,
    req: Request,
) -> Response {
    stats.lock().received += 1;
    tele.received.inc();
    let (url, logical, fwd) = match plan_forward(registry, policies, &req) {
        Ok(plan) => plan,
        Err(e) => {
            stats.lock().refused += 1;
            tele.refused.inc();
            return error_response(SoapVersion::V11, &e);
        }
    };
    registry.note_dispatched(&logical, &url);
    let result = forward_once(net, &url.host, url.port, &fwd, response_timeout);
    registry.note_completed(&logical, &url);
    match result {
        Ok(mut resp) => {
            stats.lock().forwarded += 1;
            stats.lock().relayed += 1;
            tele.forwarded.inc();
            tele.relayed.inc();
            // The upstream hop's connection semantics must not leak to
            // the client connection.
            resp.headers.remove("connection");
            resp
        }
        Err(why) => {
            stats.lock().upstream_failures += 1;
            tele.upstream_failures.inc();
            // A dead endpoint is marked down so the balancer can fail
            // over (the liveness future-work item).
            registry.mark_down(&logical, &url);
            upstream_failure_response(SoapVersion::V11, &why)
        }
    }
}

fn forward_once(
    net: &Arc<Network>,
    host: &str,
    port: u16,
    fwd: &Request,
    response_timeout: Duration,
) -> Result<Response, String> {
    let stream = net
        .connect(host, port)
        .map_err(|e| format!("connect to {host}:{port} failed: {e}"))?;
    let mut client = HttpClient::new(stream);
    client
        .set_response_timeout(Some(response_timeout))
        .map_err(|e| e.to_string())?;
    let mut one_shot = fwd.clone();
    one_shot.headers.set("Connection", "close");
    client.call(&one_shot).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt::echo_server::EchoServer;
    use crate::url::Url;
    use wsd_http::Status;
    use wsd_soap::{rpc as soap_rpc, Envelope};

    fn call_dispatcher(net: &Arc<Network>, text: &str) -> Response {
        let stream = net.connect("dispatcher", 8081).unwrap();
        let mut client = HttpClient::new(stream);
        let env = soap_rpc::echo_request(SoapVersion::V11, text);
        let req = Request::soap_post(
            "dispatcher:8081",
            "/svc/Echo",
            SoapVersion::V11.content_type(),
            env.to_xml().into_bytes(),
        );
        client.call(&req).unwrap()
    }

    #[test]
    fn forwards_and_relays() {
        let net = Network::new();
        let ws = EchoServer::start(&net, "ws", 8888, 4, Duration::ZERO);
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        let disp = RpcDispatcherServer::start(
            &net,
            "dispatcher",
            8081,
            registry,
            PolicyChain::new(),
            DispatcherConfig::default(),
        );
        let resp = call_dispatcher(&net, "through-the-proxy");
        assert_eq!(resp.status, Status::OK);
        let env = Envelope::parse(&resp.body_utf8()).unwrap();
        assert_eq!(
            soap_rpc::parse_echo_response(&env).unwrap(),
            "through-the-proxy"
        );
        let s = disp.stats();
        assert_eq!((s.received, s.forwarded, s.relayed), (1, 1, 1));
        disp.shutdown();
        ws.shutdown();
    }

    #[test]
    fn telemetry_counts_relays_and_pool_work() {
        let reg = wsd_telemetry::Registry::new();
        let net = Network::new();
        let ws = EchoServer::start(&net, "ws", 8888, 4, Duration::ZERO);
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        let disp = RpcDispatcherServer::start_with_telemetry(
            &net,
            "dispatcher",
            8081,
            registry,
            PolicyChain::new(),
            DispatcherConfig::default(),
            &reg.scope("rt.rpc"),
        );
        let resp = call_dispatcher(&net, "counted");
        assert_eq!(resp.status, Status::OK);
        disp.shutdown();
        ws.shutdown();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("rt.rpc.received"), 1);
        assert_eq!(snap.counter("rt.rpc.relayed"), 1);
        assert!(snap.counter("rt.rpc.pool.completed") >= 1);
    }

    #[test]
    fn unknown_service_is_404() {
        let net = Network::new();
        let disp = RpcDispatcherServer::start(
            &net,
            "dispatcher",
            8081,
            Arc::new(Registry::new()),
            PolicyChain::new(),
            DispatcherConfig::default(),
        );
        let resp = call_dispatcher(&net, "x");
        assert_eq!(resp.status, Status::NOT_FOUND);
        assert_eq!(disp.stats().refused, 1);
        disp.shutdown();
    }

    #[test]
    fn dead_upstream_is_502_and_marked_down() {
        let net = Network::new();
        let registry = Arc::new(Registry::new());
        registry.register_many(
            "Echo",
            vec![
                Url::parse("http://dead:1/e").unwrap(),
                Url::parse("http://ws:8888/echo").unwrap(),
            ],
            None,
        );
        let _ws = EchoServer::start(&net, "ws", 8888, 2, Duration::ZERO);
        let disp = RpcDispatcherServer::start(
            &net,
            "dispatcher",
            8081,
            Arc::clone(&registry),
            PolicyChain::new(),
            DispatcherConfig::default(),
        );
        // First call hits the dead primary → 502, and fails it over.
        let resp = call_dispatcher(&net, "a");
        assert_eq!(resp.status, Status::BAD_GATEWAY);
        // Second call lands on the live backup.
        let resp = call_dispatcher(&net, "b");
        assert_eq!(resp.status, Status::OK);
        assert_eq!(disp.stats().upstream_failures, 1);
        disp.shutdown();
    }

    #[test]
    fn slow_upstream_times_out() {
        let net = Network::new();
        let _ws = EchoServer::start(&net, "ws", 8888, 2, Duration::from_millis(300));
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        let config = DispatcherConfig {
            response_timeout: Duration::from_millis(50),
            ..DispatcherConfig::default()
        };
        let disp = RpcDispatcherServer::start(
            &net,
            "dispatcher",
            8081,
            registry,
            PolicyChain::new(),
            config,
        );
        let resp = call_dispatcher(&net, "too-slow");
        assert_eq!(resp.status, Status::BAD_GATEWAY);
        assert_eq!(disp.stats().upstream_failures, 1);
        disp.shutdown();
    }

    #[test]
    fn concurrent_clients_through_dispatcher() {
        let net = Network::new();
        let ws = EchoServer::start(&net, "ws", 8888, 8, Duration::from_millis(1));
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        let disp = RpcDispatcherServer::start(
            &net,
            "dispatcher",
            8081,
            registry,
            PolicyChain::new(),
            DispatcherConfig::default(),
        );
        let mut handles = Vec::new();
        for i in 0..12 {
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                let resp = call_dispatcher(&net, &format!("c{i}"));
                assert_eq!(resp.status, Status::OK);
                let env = Envelope::parse(&resp.body_utf8()).unwrap();
                assert_eq!(soap_rpc::parse_echo_response(&env).unwrap(), format!("c{i}"));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(disp.stats().relayed, 12);
        assert_eq!(ws.served(), 12);
        disp.shutdown();
        ws.shutdown();
    }
}
