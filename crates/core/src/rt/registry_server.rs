//! The registry as its own browseable service (paper §4.1: "this
//! registry of services could be used like a directory or Yellow Pages,
//! possibly as a simple browseable list of WSDL files with metadata" and
//! §4.4: "allow simple interactions such as checking if service is
//! alive").
//!
//! Plain HTTP GET, so any client — even a browser — can use it:
//!
//! * `GET /registry` — all logical names, one per line;
//! * `GET /registry/<name>` — the entry: endpoints with live flags, and
//!   the WSDL metadata if registered;
//! * `GET /alive/<name>` — actively probes every endpoint right now,
//!   updating the registry's live flags, and reports the result.

use std::sync::Arc;

use wsd_concurrent::{PoolConfig, RejectionPolicy, ThreadPool};
use wsd_http::{serve_connection, HttpClient, Limits, Method, Request, Response, Status};

use crate::registry::Registry;
use crate::rt::Network;

/// A running registry service.
pub struct RegistryServer {
    pool: Arc<ThreadPool>,
    net: Arc<Network>,
    conns: Arc<crate::rt::ConnTracker>,
    host: String,
    port: u16,
}

impl RegistryServer {
    /// Starts the service on `host:port` with default parser limits.
    pub fn start(
        net: &Arc<Network>,
        host: &str,
        port: u16,
        registry: Arc<Registry>,
    ) -> RegistryServer {
        Self::start_with_limits(net, host, port, registry, Limits::default())
    }

    /// Like [`RegistryServer::start`], with operator-supplied parser
    /// limits (threaded from [`crate::config::DispatcherConfig`] by the
    /// deployment builder).
    pub fn start_with_limits(
        net: &Arc<Network>,
        host: &str,
        port: u16,
        registry: Arc<Registry>,
        limits: Limits,
    ) -> RegistryServer {
        let pool = Arc::new(
            ThreadPool::new(
                PoolConfig::fixed(format!("registry-{host}"), 2)
                    .rejection(RejectionPolicy::Block),
            )
            .expect("pool"),
        );
        let conns = crate::rt::ConnTracker::new();
        {
            let pool2 = Arc::clone(&pool);
            let net2 = Arc::clone(net);
            let conns = Arc::clone(&conns);
            net.listen(host, port, move |stream| {
                conns.track(&stream);
                let registry = Arc::clone(&registry);
                let net = Arc::clone(&net2);
                let _ = pool2.execute(move || {
                    let _ = serve_connection(stream, &limits, |req| {
                        handle(&net, &registry, req)
                    });
                });
            });
        }
        RegistryServer {
            pool,
            net: Arc::clone(net),
            conns,
            host: host.to_string(),
            port,
        }
    }

    /// Stops the service.
    pub fn shutdown(&self) {
        self.net.unlisten(&self.host, self.port);
        self.conns.close_all();
        self.pool.shutdown();
    }
}

fn handle(net: &Arc<Network>, registry: &Registry, req: Request) -> Response {
    // POST /registry carries the SOAP registration operations
    // (register / unregister / lookup / list) — services register
    // themselves remotely.
    if req.method == Method::Post {
        if req.target != "/registry" {
            return Response::empty(Status::NOT_FOUND);
        }
        let Ok(env) = wsd_soap::Envelope::parse(&req.body_utf8()) else {
            return Response::empty(Status::BAD_REQUEST);
        };
        let resp_env = crate::registry_soap::handle_soap(registry, &env);
        return Response::new(
            Status::OK,
            env.version.content_type(),
            resp_env.to_xml().into_bytes(),
        );
    }
    if req.method != Method::Get {
        return Response::empty(Status::BAD_REQUEST);
    }
    if req.target == "/registry" {
        let body = registry.to_file_string();
        return Response::new(Status::OK, "text/plain; charset=utf-8", body.into_bytes());
    }
    if let Some(name) = req.target.strip_prefix("/registry/") {
        let Some(entry) = registry.entry(name) else {
            return Response::empty(Status::NOT_FOUND);
        };
        let live = entry.live_endpoints();
        let mut body = format!("service: {name}\n");
        for url in entry.endpoints() {
            let status = if live.contains(&url) { "alive" } else { "down" };
            body.push_str(&format!("endpoint: {url} [{status}]\n"));
        }
        if let Some(wsdl) = &entry.wsdl {
            body.push_str("wsdl:\n");
            body.push_str(wsdl);
            body.push('\n');
        }
        return Response::new(Status::OK, "text/plain; charset=utf-8", body.into_bytes());
    }
    if let Some(name) = req.target.strip_prefix("/alive/") {
        let Some(entry) = registry.entry(name) else {
            return Response::empty(Status::NOT_FOUND);
        };
        let mut body = String::new();
        for url in entry.endpoints() {
            let alive = probe(net, &url);
            if alive {
                registry.mark_alive(name, &url);
            } else {
                registry.mark_down(name, &url);
            }
            body.push_str(&format!(
                "{url} {}\n",
                if alive { "alive" } else { "down" }
            ));
        }
        return Response::new(Status::OK, "text/plain; charset=utf-8", body.into_bytes());
    }
    Response::empty(Status::NOT_FOUND)
}

/// Is anything answering at `url`? A successful HTTP exchange — any
/// status — counts as alive; connect failure counts as down.
fn probe(net: &Arc<Network>, url: &crate::url::Url) -> bool {
    let Ok(stream) = net.connect(&url.host, url.port) else {
        return false;
    };
    let mut client = HttpClient::new(stream);
    let _ = client.set_response_timeout(Some(std::time::Duration::from_secs(2)));
    let mut req = Request::get(&url.authority(), &url.path);
    req.headers.set("Connection", "close");
    client.call(&req).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt::echo_server::EchoServer;
    use crate::url::Url;
    use std::time::Duration;

    fn get(net: &Arc<Network>, target: &str) -> (Status, String) {
        let stream = net.connect("registry", 8090).unwrap();
        let mut client = HttpClient::new(stream);
        let mut req = Request::get("registry:8090", target);
        req.headers.set("Connection", "close");
        let resp = client.call(&req).unwrap();
        (resp.status, resp.body_utf8().to_string())
    }

    fn setup(net: &Arc<Network>) -> (Arc<Registry>, RegistryServer) {
        let registry = Arc::new(Registry::new());
        registry.register_many(
            "Echo",
            vec![
                Url::parse("http://ws:8888/echo").unwrap(),
                Url::parse("http://ws-dead:8888/echo").unwrap(),
            ],
            Some("<definitions name=\"Echo\"/>".into()),
        );
        let server = RegistryServer::start(net, "registry", 8090, Arc::clone(&registry));
        (registry, server)
    }

    #[test]
    fn lists_services_in_file_format() {
        let net = Network::new();
        let (_registry, server) = setup(&net);
        let (status, body) = get(&net, "/registry");
        assert_eq!(status, Status::OK);
        assert!(body.contains("Echo http://ws:8888/echo,http://ws-dead:8888/echo"), "{body}");
        // The browse output is itself loadable registry configuration.
        let reloaded = Registry::new();
        assert_eq!(reloaded.load_from_str(&body).unwrap(), 1);
        server.shutdown();
    }

    #[test]
    fn shows_entry_with_wsdl() {
        let net = Network::new();
        let (_registry, server) = setup(&net);
        let (status, body) = get(&net, "/registry/Echo");
        assert_eq!(status, Status::OK);
        assert!(body.contains("endpoint: http://ws:8888/echo [alive]"));
        assert!(body.contains("<definitions name=\"Echo\"/>"));
        let (status, _) = get(&net, "/registry/Nope");
        assert_eq!(status, Status::NOT_FOUND);
        server.shutdown();
    }

    #[test]
    fn alive_probe_updates_liveness() {
        let net = Network::new();
        let (registry, server) = setup(&net);
        // Only one of the two endpoints actually runs.
        let ws = EchoServer::start(&net, "ws", 8888, 2, Duration::ZERO);
        let (status, body) = get(&net, "/alive/Echo");
        assert_eq!(status, Status::OK);
        assert!(body.contains("http://ws:8888/echo alive"), "{body}");
        assert!(body.contains("http://ws-dead:8888/echo down"), "{body}");
        // The probe updated the registry: lookups now avoid the corpse.
        let entry = registry.entry("Echo").unwrap();
        assert_eq!(entry.live_endpoints().len(), 1);
        // And a second probe can revive it if it comes back.
        let revived = EchoServer::start(&net, "ws-dead", 8888, 2, Duration::ZERO);
        let (_, body) = get(&net, "/alive/Echo");
        assert!(body.contains("http://ws-dead:8888/echo alive"), "{body}");
        assert_eq!(registry.entry("Echo").unwrap().live_endpoints().len(), 2);
        revived.shutdown();
        ws.shutdown();
        server.shutdown();
    }

    #[test]
    fn malformed_post_rejected() {
        let net = Network::new();
        let (_registry, server) = setup(&net);
        let stream = net.connect("registry", 8090).unwrap();
        let mut client = HttpClient::new(stream);
        let mut req =
            Request::soap_post("registry:8090", "/registry", "text/xml", b"junk".to_vec());
        req.headers.set("Connection", "close");
        assert_eq!(client.call(&req).unwrap().status, Status::BAD_REQUEST);
        server.shutdown();
    }

    #[test]
    fn remote_service_registers_itself_over_soap() {
        use crate::registry_soap::ops;
        use wsd_soap::{Envelope, SoapVersion};
        let net = Network::new();
        let registry = Arc::new(Registry::new());
        let server = RegistryServer::start(&net, "registry", 8090, Arc::clone(&registry));
        // A service announces itself.
        let env = ops::register(
            SoapVersion::V11,
            "SelfRegistered",
            &["http://me:7000/svc".into()],
            None,
        );
        let resp = crate::rt::client::rpc_call(&net, "registry", 8090, "/registry", &env, None)
            .unwrap();
        assert!(resp.as_fault().is_none());
        assert_eq!(
            registry.lookup("SelfRegistered").unwrap().to_string(),
            "http://me:7000/svc"
        );
        // And a peer discovers it by lookup.
        let env = ops::lookup(SoapVersion::V11, "SelfRegistered");
        let resp: Envelope =
            crate::rt::client::rpc_call(&net, "registry", 8090, "/registry", &env, None).unwrap();
        assert_eq!(
            ops::parse_lookup_response(&resp).as_deref(),
            Some("http://me:7000/svc")
        );
        server.shutdown();
    }
}
