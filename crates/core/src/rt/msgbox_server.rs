//! The threaded WS-MsgBox service, in both designs.
//!
//! [`MsgBoxStrategy::ThreadPerMessage`] spawns a real OS thread per
//! connection, gated by a [`ThreadBudget`]; exhausting the budget sets
//! the crashed flag and the service goes dark — the honest in-process
//! version of the paper's `OutOfMemoryError`. The pooled design serves
//! from a bounded [`ThreadPool`] and survives the same load.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use wsd_concurrent::{PoolConfig, RejectionPolicy, ThreadBudget, ThreadPool};
use wsd_http::{serve_connection, Limits, Request, Response, Status};
use wsd_soap::Envelope;
use wsd_telemetry::{Counter, Scope};

use crate::config::{MsgBoxConfig, MsgBoxStrategy};
use crate::msgbox::{handle_soap, MsgBoxStore};
use crate::rt::{now_us, Network, ReactorFrontEnd};

/// Telemetry instruments for the threaded WS-MsgBox service. The
/// thread budget binds its own `budget` sub-scope (live gauge plus
/// acquired/denials counters).
struct MsgBoxTelemetry {
    deposits: Counter,
    rpc_calls: Counter,
    crashes: Counter,
}

impl MsgBoxTelemetry {
    fn new(scope: &Scope) -> Self {
        MsgBoxTelemetry {
            deposits: scope.counter("deposits"),
            rpc_calls: scope.counter("rpc_calls"),
            crashes: scope.counter("crashes"),
        }
    }
}

/// A running WS-MsgBox service.
pub struct MsgBoxServer {
    store: Arc<MsgBoxStore>,
    pool: Option<Arc<ThreadPool>>,
    /// Present in the pooled design: connections are multiplexed on a
    /// reactor instead of pinning a pool thread each, so the service
    /// scales past the worker count in open sockets.
    front: Option<ReactorFrontEnd>,
    limits: Limits,
    budget: ThreadBudget,
    crashed: Arc<AtomicBool>,
    deposits: Arc<AtomicU64>,
    rpc_calls: Arc<AtomicU64>,
    tele: MsgBoxTelemetry,
    net: Arc<Network>,
    conns: Arc<crate::rt::ConnTracker>,
    host: String,
    port: u16,
}

impl MsgBoxServer {
    /// Starts the service on `host:port`.
    pub fn start(
        net: &Arc<Network>,
        host: &str,
        port: u16,
        config: MsgBoxConfig,
        seed: u64,
    ) -> Arc<MsgBoxServer> {
        Self::start_with_telemetry(net, host, port, config, seed, &Scope::noop())
    }

    /// Like [`MsgBoxServer::start`], with telemetry instruments
    /// registered under `scope` (operation counters, a `budget`
    /// sub-scope, and a `pool` sub-scope in the pooled design).
    pub fn start_with_telemetry(
        net: &Arc<Network>,
        host: &str,
        port: u16,
        config: MsgBoxConfig,
        seed: u64,
        scope: &Scope,
    ) -> Arc<MsgBoxServer> {
        // The store hangs its WAL/spill metrics (durable backend) off a
        // `store` sub-scope; the memory backend registers nothing.
        let store = Arc::new(MsgBoxStore::with_telemetry(
            config.clone(),
            seed,
            &scope.child("store"),
        ));
        let budget = ThreadBudget::new(config.thread_budget);
        budget.bind_telemetry(&scope.child("budget"));
        let pool = match config.strategy {
            MsgBoxStrategy::Pooled { workers } => Some(Arc::new(
                ThreadPool::new(
                    PoolConfig::fixed(format!("msgbox-{host}"), workers)
                        .rejection(RejectionPolicy::Block)
                        .telemetry(scope.child("pool")),
                )
                .expect("pool"),
            )),
            MsgBoxStrategy::ThreadPerMessage => None,
        };
        // The pooled redesign gets the reactor front end; thread-per-message
        // keeps the paper's original architecture (and its OOM wall).
        let front = pool.as_ref().map(|pool| {
            ReactorFrontEnd::start(
                format!("reactor-msgbox-{host}"),
                Arc::clone(pool),
                &scope.child("reactor"),
            )
        });
        let server = Arc::new(MsgBoxServer {
            store,
            pool,
            front,
            limits: config.limits,
            budget,
            crashed: Arc::new(AtomicBool::new(false)),
            deposits: Arc::new(AtomicU64::new(0)),
            rpc_calls: Arc::new(AtomicU64::new(0)),
            tele: MsgBoxTelemetry::new(scope),
            net: Arc::clone(net),
            conns: crate::rt::ConnTracker::new(),
            host: host.to_string(),
            port,
        });
        {
            let server2 = Arc::clone(&server);
            net.listen(host, port, move |stream| {
                server2.conns.track(&stream);
                server2.on_connection(stream);
            });
        }
        server
    }

    fn on_connection(self: &Arc<Self>, stream: wsd_http::PipeStream) {
        if self.crashed.load(Ordering::Acquire) {
            return; // dead JVM: the socket just hangs
        }
        let server = Arc::clone(self);
        match &self.front {
            Some(front) => {
                front.serve(
                    stream,
                    self.limits,
                    Arc::new(move |req| {
                        if server.crashed.load(Ordering::Acquire) {
                            return Response::empty(Status::SERVICE_UNAVAILABLE);
                        }
                        server.handle(req)
                    }),
                );
            }
            None => {
                // Thread-per-connection, gated by the native-thread budget.
                match self.budget.try_acquire() {
                    Ok(lease) => {
                        // wsd-lint: allow(raw-thread-spawn): deliberate thread-per-message architecture reproducing the paper's WS-MsgBox OOM wall, gated by ThreadBudget
                        let spawned = std::thread::Builder::new()
                            .name("msgbox-msg".into())
                            .spawn(move || {
                                let _lease = lease;
                                server.serve(stream);
                            });
                        if spawned.is_err() {
                            self.mark_crashed();
                        }
                    }
                    Err(_) => self.mark_crashed(),
                }
            }
        }
    }

    fn mark_crashed(&self) {
        if !self.crashed.swap(true, Ordering::AcqRel) {
            self.tele.crashes.inc();
            // OutOfMemoryError: stop accepting anything new.
            self.net.unlisten(&self.host, self.port);
        }
    }

    fn serve(&self, stream: wsd_http::PipeStream) {
        let crashed = &self.crashed;
        let _ = serve_connection(stream, &self.limits, |req| {
            if crashed.load(Ordering::Acquire) {
                return Response::empty(Status::SERVICE_UNAVAILABLE);
            }
            self.handle(req)
        });
    }

    fn handle(&self, req: Request) -> Response {
        if let Some(box_id) = req.target.strip_prefix("/deposit/") {
            let box_id = box_id.to_string();
            return match self.store.deposit(&box_id, req.body_utf8().to_string(), now_us()) {
                Ok(()) => {
                    self.deposits.fetch_add(1, Ordering::Relaxed);
                    self.tele.deposits.inc();
                    Response::empty(Status::ACCEPTED)
                }
                Err(_) => Response::empty(Status::NOT_FOUND),
            };
        }
        let Ok(env) = Envelope::parse(&req.body_utf8()) else {
            return Response::empty(Status::BAD_REQUEST);
        };
        self.rpc_calls.fetch_add(1, Ordering::Relaxed);
        self.tele.rpc_calls.inc();
        let resp_env = handle_soap(&self.store, &env, now_us());
        Response::new(
            Status::OK,
            env.version.content_type(),
            resp_env.to_xml().into_bytes(),
        )
    }

    /// Whether the simulated OOM fired.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// Deposits accepted.
    pub fn deposits(&self) -> u64 {
        self.deposits.load(Ordering::Relaxed)
    }

    /// RPC operations served.
    pub fn rpc_calls(&self) -> u64 {
        self.rpc_calls.load(Ordering::Relaxed)
    }

    /// Peak concurrently live message threads (thread-per-message mode).
    pub fn peak_threads(&self) -> usize {
        self.budget.peak()
    }

    /// Direct access to the store (for assertions in tests).
    pub fn store(&self) -> &MsgBoxStore {
        &self.store
    }

    /// Open connections on the reactor front end (pooled design only).
    pub fn open_connections(&self) -> Option<usize> {
        self.front.as_ref().map(ReactorFrontEnd::open_connections)
    }

    /// Stops the service.
    pub fn shutdown(&self) {
        self.net.unlisten(&self.host, self.port);
        self.conns.close_all();
        if let Some(front) = &self.front {
            front.shutdown();
        }
        if let Some(pool) = &self.pool {
            pool.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msgbox::ops;
    use crate::rt::client::MailboxClient;
    use std::time::Duration;
    use wsd_http::HttpClient;
    use wsd_soap::SoapVersion;

    fn pooled() -> MsgBoxConfig {
        MsgBoxConfig {
            strategy: MsgBoxStrategy::Pooled { workers: 4 },
            ..MsgBoxConfig::default()
        }
    }

    #[test]
    fn mailbox_lifecycle_over_the_network() {
        let net = Network::new();
        let server = MsgBoxServer::start(&net, "msgbox", 8082, pooled(), 11);
        let mbox = MailboxClient::create(&net, "msgbox", 8082).unwrap();
        // Deposit directly (as a dispatcher would).
        let inner = wsd_soap::rpc::echo_response(SoapVersion::V11, "stored!").to_xml();
        let stream = net.connect("msgbox", 8082).unwrap();
        let mut c = HttpClient::new(stream);
        let req = Request::soap_post(
            "msgbox:8082",
            &format!("/deposit/{}", mbox.box_id()),
            "text/xml",
            inner.clone().into_bytes(),
        );
        assert_eq!(c.call(&req).unwrap().status, Status::ACCEPTED);
        // Poll.
        let messages = mbox.poll(10).unwrap();
        assert_eq!(messages.len(), 1);
        assert_eq!(
            wsd_soap::rpc::parse_echo_response(&messages[0]).unwrap(),
            "stored!"
        );
        // Empty after fetch; destroy works.
        assert!(mbox.poll(10).unwrap().is_empty());
        mbox.destroy().unwrap();
        assert_eq!(server.deposits(), 1);
        assert!(server.rpc_calls() >= 3);
        server.shutdown();
    }

    #[test]
    fn durable_backend_survives_server_restart() {
        let dir = std::env::temp_dir().join("wsd-rt-durable-msgbox-test");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = MsgBoxConfig {
            strategy: MsgBoxStrategy::Pooled { workers: 2 },
            backend: crate::config::MailboxBackend::Durable {
                dir: Some(dir.clone()),
                store: wsd_store::StoreConfig::default(),
            },
            ..MsgBoxConfig::default()
        };
        let net = Network::new();
        let server = MsgBoxServer::start(&net, "msgbox", 8082, cfg.clone(), 11);
        let mbox = MailboxClient::create(&net, "msgbox", 8082).unwrap();
        let inner = wsd_soap::rpc::echo_response(SoapVersion::V11, "precious").to_xml();
        let stream = net.connect("msgbox", 8082).unwrap();
        let mut c = HttpClient::new(stream);
        let req = Request::soap_post(
            "msgbox:8082",
            &format!("/deposit/{}", mbox.box_id()),
            "text/xml",
            inner.into_bytes(),
        );
        assert_eq!(c.call(&req).unwrap().status, Status::ACCEPTED);
        let (id, key) = (mbox.box_id().to_string(), mbox.access_key().to_string());
        server.shutdown();
        // A new process over the same WAL directory: the deposit (acked
        // with 202 before the crash) must still be there.
        let server = MsgBoxServer::start(&net, "msgbox", 8083, cfg, 12);
        let mbox = MailboxClient::attach(&net, "msgbox", 8083, id, key);
        let messages = mbox.poll(10).unwrap();
        assert_eq!(messages.len(), 1);
        assert_eq!(
            wsd_soap::rpc::parse_echo_response(&messages[0]).unwrap(),
            "precious"
        );
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn thread_per_message_crashes_past_budget() {
        let reg = wsd_telemetry::Registry::new();
        let net = Network::new();
        let cfg = MsgBoxConfig {
            strategy: MsgBoxStrategy::ThreadPerMessage,
            thread_budget: 8,
            ..MsgBoxConfig::default()
        };
        let server =
            MsgBoxServer::start_with_telemetry(&net, "msgbox", 8082, cfg, 11, &reg.scope("mb"));
        // Open many connections that hold their thread by keeping the
        // exchange open (slow readers).
        let mut held = Vec::new();
        for _ in 0..8 {
            // Connect without sending: the serve thread blocks in read.
            held.push(net.connect("msgbox", 8082).unwrap());
        }
        // Give the spawned threads a moment to start.
        std::thread::sleep(Duration::from_millis(50));
        // The 9th message is the OutOfMemoryError.
        let _ = net.connect("msgbox", 8082);
        for _ in 0..100 {
            if server.crashed() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(server.crashed(), "budget exhaustion must crash the service");
        assert!(server.peak_threads() >= 8);
        // The crashed service no longer accepts connections.
        assert!(net.connect("msgbox", 8082).is_err());
        let snap = reg.snapshot();
        assert_eq!(snap.counter("mb.crashes"), 1);
        assert!(snap.counter("mb.budget.denials") >= 1);
        assert!(snap.gauge_peak("mb.budget.live") >= 8);
        server.shutdown();
    }

    #[test]
    fn pooled_design_survives_connection_burst() {
        let net = Network::new();
        let cfg = MsgBoxConfig {
            strategy: MsgBoxStrategy::Pooled { workers: 4 },
            thread_budget: 8,
            ..MsgBoxConfig::default()
        };
        let server = MsgBoxServer::start(&net, "msgbox", 8082, cfg, 11);
        let mut handles = Vec::new();
        for _ in 0..16 {
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                let stream = net.connect("msgbox", 8082).unwrap();
                let mut c = HttpClient::new(stream);
                let mut req = Request::soap_post(
                    "msgbox:8082",
                    "/msgbox",
                    SoapVersion::V11.content_type(),
                    ops::create(SoapVersion::V11).to_xml().into_bytes(),
                );
                req.headers.set("Connection", "close");
                c.call(&req).unwrap().status
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), Status::OK);
        }
        assert!(!server.crashed());
        assert_eq!(server.store().box_count(), 16);
        server.shutdown();
    }

    #[test]
    fn deposit_to_missing_box_is_404() {
        let net = Network::new();
        let server = MsgBoxServer::start(&net, "msgbox", 8082, pooled(), 11);
        let stream = net.connect("msgbox", 8082).unwrap();
        let mut c = HttpClient::new(stream);
        let req = Request::soap_post(
            "msgbox:8082",
            "/deposit/mbox-missing",
            "text/xml",
            b"<x/>".to_vec(),
        );
        assert_eq!(c.call(&req).unwrap().status, Status::NOT_FOUND);
        server.shutdown();
    }
}
