//! Client-side helpers for the threaded runtime: RPC calls through the
//! dispatcher, one-way sends, and the mailbox client a peer with no
//! endpoint uses (paper §3: create a mailbox, hand out its address,
//! poll, destroy).

use std::sync::Arc;
use std::time::Duration;

use wsd_http::{HttpClient, Request, Status};
use wsd_soap::{Envelope, SoapVersion};

use crate::error::WsdError;
use crate::msgbox::ops;
use crate::rt::Network;

/// Performs one SOAP-RPC exchange: connect, POST, parse the response
/// envelope.
pub fn rpc_call(
    net: &Arc<Network>,
    host: &str,
    port: u16,
    target: &str,
    env: &Envelope,
    response_timeout: Option<Duration>,
) -> Result<Envelope, WsdError> {
    let stream = net
        .connect(host, port)
        .map_err(|e| WsdError::Rejected(format!("connect failed: {e}")))?;
    let mut client = HttpClient::new(stream);
    if let Some(t) = response_timeout {
        client
            .set_response_timeout(Some(t))
            .map_err(|e| WsdError::Rejected(e.to_string()))?;
    }
    let mut req = Request::soap_post(
        &format!("{host}:{port}"),
        target,
        env.version.content_type(),
        env.to_xml().into_bytes(),
    );
    req.headers.set("Connection", "close");
    let resp = client
        .call(&req)
        .map_err(|e| WsdError::Rejected(format!("call failed: {e}")))?;
    Envelope::parse(&resp.body_utf8()).map_err(WsdError::from)
}

/// Sends a one-way message; succeeds on `202 Accepted`.
pub fn send_oneway(
    net: &Arc<Network>,
    host: &str,
    port: u16,
    target: &str,
    env: &Envelope,
) -> Result<(), WsdError> {
    let stream = net
        .connect(host, port)
        .map_err(|e| WsdError::Rejected(format!("connect failed: {e}")))?;
    let mut client = HttpClient::new(stream);
    let mut req = Request::soap_post(
        &format!("{host}:{port}"),
        target,
        env.version.content_type(),
        env.to_xml().into_bytes(),
    );
    req.headers.set("Connection", "close");
    let resp = client
        .call(&req)
        .map_err(|e| WsdError::Rejected(format!("send failed: {e}")))?;
    if resp.status == Status::ACCEPTED {
        Ok(())
    } else {
        Err(WsdError::Rejected(format!(
            "one-way send answered {}",
            resp.status.0
        )))
    }
}

/// A client-held mailbox on a WS-MsgBox service.
pub struct MailboxClient {
    net: Arc<Network>,
    host: String,
    port: u16,
    box_id: String,
    key: String,
}

impl MailboxClient {
    /// Creates a mailbox on the service at `host:port`.
    pub fn create(net: &Arc<Network>, host: &str, port: u16) -> Result<MailboxClient, WsdError> {
        let resp = rpc_call(
            net,
            host,
            port,
            "/msgbox",
            &ops::create(SoapVersion::V11),
            Some(Duration::from_secs(10)),
        )?;
        let (box_id, key) = ops::parse_create_response(&resp)
            .ok_or(WsdError::Soap(wsd_soap::SoapError::BadRpc(
                "malformed createResponse",
            )))?;
        Ok(MailboxClient {
            net: Arc::clone(net),
            host: host.to_string(),
            port,
            box_id,
            key,
        })
    }

    /// Re-attaches to an existing mailbox (e.g. one that survived a
    /// service restart under the durable backend) without creating a
    /// new one. No network round trip: the next `poll` validates the
    /// key.
    pub fn attach(
        net: &Arc<Network>,
        host: &str,
        port: u16,
        box_id: impl Into<String>,
        key: impl Into<String>,
    ) -> MailboxClient {
        MailboxClient {
            net: Arc::clone(net),
            host: host.to_string(),
            port,
            box_id: box_id.into(),
            key: key.into(),
        }
    }

    /// The mailbox id.
    pub fn box_id(&self) -> &str {
        &self.box_id
    }

    /// The secret access key (needed to re-[`attach`](Self::attach)
    /// after a restart).
    pub fn access_key(&self) -> &str {
        &self.key
    }

    /// The deposit URL other peers (or the dispatcher) use as this
    /// client's `wsa:ReplyTo`.
    pub fn deposit_url(&self) -> String {
        format!("http://{}:{}/deposit/{}", self.host, self.port, self.box_id)
    }

    /// Fetches up to `max` stored messages, parsing each back into an
    /// envelope.
    pub fn poll(&self, max: usize) -> Result<Vec<Envelope>, WsdError> {
        let resp = rpc_call(
            &self.net,
            &self.host,
            self.port,
            "/msgbox",
            &ops::fetch(SoapVersion::V11, &self.box_id, &self.key, max),
            Some(Duration::from_secs(10)),
        )?;
        if let Some(f) = resp.as_fault() {
            return Err(WsdError::Rejected(f.reason.clone()));
        }
        let bodies = ops::parse_fetch_response(&resp)
            .ok_or(WsdError::Soap(wsd_soap::SoapError::BadRpc(
                "malformed fetchResponse",
            )))?;
        bodies
            .iter()
            .map(|b| Envelope::parse(b).map_err(WsdError::from))
            .collect()
    }

    /// Polls repeatedly until at least one message arrives or `deadline`
    /// elapses.
    pub fn poll_until(
        &self,
        max: usize,
        interval: Duration,
        deadline: Duration,
    ) -> Result<Vec<Envelope>, WsdError> {
        use wsd_telemetry::Clock;
        let clock = wsd_telemetry::WallClock::new();
        let deadline_us = deadline.as_micros() as u64;
        loop {
            let got = self.poll(max)?;
            if !got.is_empty() || clock.now_us() >= deadline_us {
                return Ok(got);
            }
            std::thread::sleep(interval);
        }
    }

    /// Destroys the mailbox.
    pub fn destroy(&self) -> Result<(), WsdError> {
        let resp = rpc_call(
            &self.net,
            &self.host,
            self.port,
            "/msgbox",
            &ops::destroy(SoapVersion::V11, &self.box_id, &self.key),
            Some(Duration::from_secs(10)),
        )?;
        if let Some(f) = resp.as_fault() {
            return Err(WsdError::Rejected(f.reason.clone()));
        }
        Ok(())
    }
}

impl std::fmt::Debug for MailboxClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MailboxClient")
            .field("box_id", &self.box_id)
            .field("service", &format!("{}:{}", self.host, self.port))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MsgBoxConfig;
    use crate::rt::echo_server::EchoServer;
    use crate::rt::msgbox_server::MsgBoxServer;
    use wsd_soap::rpc as soap_rpc;

    #[test]
    fn rpc_call_against_echo_service() {
        let net = Network::new();
        let ws = EchoServer::start(&net, "ws", 8888, 2, Duration::ZERO);
        let env = soap_rpc::echo_request(SoapVersion::V11, "direct");
        let resp = rpc_call(&net, "ws", 8888, "/echo", &env, None).unwrap();
        assert_eq!(soap_rpc::parse_echo_response(&resp).unwrap(), "direct");
        ws.shutdown();
    }

    #[test]
    fn rpc_call_to_dead_host_errors() {
        let net = Network::new();
        let env = soap_rpc::echo_request(SoapVersion::V11, "x");
        assert!(rpc_call(&net, "ghost", 1, "/", &env, None).is_err());
    }

    #[test]
    fn mailbox_deposit_url_shape() {
        let net = Network::new();
        let server = MsgBoxServer::start(&net, "msgbox", 8082, MsgBoxConfig::default(), 3);
        let mbox = MailboxClient::create(&net, "msgbox", 8082).unwrap();
        let url = mbox.deposit_url();
        assert!(url.starts_with("http://msgbox:8082/deposit/mbox-"), "{url}");
        mbox.destroy().unwrap();
        // Destroyed: polling now faults.
        assert!(mbox.poll(1).is_err());
        server.shutdown();
    }

    #[test]
    fn poll_until_waits_for_arrival() {
        let net = Network::new();
        let server = MsgBoxServer::start(&net, "msgbox", 8082, MsgBoxConfig::default(), 3);
        let mbox = MailboxClient::create(&net, "msgbox", 8082).unwrap();
        let store = Arc::clone(&{
            // Deposit from another thread after a delay.
            let net = Arc::clone(&net);
            let deposit_url = mbox.deposit_url();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                let url = crate::url::Url::parse(&deposit_url).unwrap();
                let stream = net.connect(&url.host, url.port).unwrap();
                let mut c = HttpClient::new(stream);
                let body = soap_rpc::echo_response(SoapVersion::V11, "late").to_xml();
                let req = Request::soap_post(
                    &url.authority(),
                    &url.path,
                    "text/xml",
                    body.into_bytes(),
                );
                c.call(&req).unwrap();
            });
            Arc::new(())
        });
        let got = mbox
            .poll_until(10, Duration::from_millis(10), Duration::from_secs(5))
            .unwrap();
        drop(store);
        assert_eq!(got.len(), 1);
        assert_eq!(soap_rpc::parse_echo_response(&got[0]).unwrap(), "late");
        server.shutdown();
    }
}
