//! The threaded runtime: dispatcher components on real OS threads.
//!
//! This is the "is the implementation language suitable?" half of the
//! paper: the same registry / dispatcher / mailbox logic, run on
//! [`wsd_concurrent`] thread pools over in-memory byte streams
//! ([`wsd_http::duplex`]), with genuine parallelism and back-pressure.
//!
//! [`Network`] is the in-process internet: hosts listen on
//! `(name, port)`, clients connect and get a [`PipeStream`]; a host can
//! be marked firewalled, making inbound connects fail the way a dropped
//! SYN does.

pub mod client;
pub mod deployment;
pub mod echo_server;
pub mod fleet;
pub mod msg_server;
pub mod msgbox_server;
pub mod reactor_front;
pub mod registry_server;
pub mod rpc_server;

pub use client::{rpc_call, send_oneway, MailboxClient};
pub use deployment::{Deployment, DeploymentBuilder};
pub use echo_server::EchoServer;
pub use fleet::{FleetDeployment, FleetMember};
pub use msg_server::MsgDispatcherServer;
pub use msgbox_server::MsgBoxServer;
pub use reactor_front::{ReactorFrontEnd, RequestHandler, ServedConn};
pub use registry_server::RegistryServer;
pub use rpc_server::RpcDispatcherServer;

use std::collections::{HashMap, HashSet};
use std::io;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use wsd_http::{duplex, PipeStream};

/// Microseconds on the runtime's shared [`wsd_telemetry::WallClock`]
/// (origin = first call). Store timestamps and route TTLs only ever
/// compare these values relatively, so an epoch anchor buys nothing —
/// routing through the telemetry clock keeps rt and sim on one timing
/// discipline.
pub fn now_us() -> u64 {
    use wsd_telemetry::Clock;
    static CLOCK: std::sync::OnceLock<wsd_telemetry::WallClock> = std::sync::OnceLock::new();
    CLOCK.get_or_init(wsd_telemetry::WallClock::new).now_us()
}

type ConnHandler = Arc<dyn Fn(PipeStream) + Send + Sync>;

/// Tracks live server-side connections so shutdown can interrupt workers
/// blocked in `read` on keep-alive connections.
pub(crate) struct ConnTracker {
    handles: Mutex<Vec<wsd_http::ShutdownHandle>>,
}

impl ConnTracker {
    pub(crate) fn new() -> Arc<ConnTracker> {
        Arc::new(ConnTracker {
            handles: Mutex::new(Vec::new()),
        })
    }

    pub(crate) fn track(&self, stream: &PipeStream) {
        self.handles.lock().push(stream.shutdown_handle());
    }

    pub(crate) fn close_all(&self) {
        for h in self.handles.lock().drain(..) {
            h.shutdown();
        }
    }
}

/// The in-process network: named listeners, firewalls, connects.
pub struct Network {
    listeners: Mutex<HashMap<(String, u16), ConnHandler>>,
    firewalled: Mutex<HashSet<String>>,
    /// How long a connect into a firewalled host blocks before failing
    /// (the dropped-SYN timeout, scaled down for tests).
    pub firewall_delay: Duration,
    /// Per-direction pipe buffering for new connections.
    pub pipe_capacity: usize,
}

impl Network {
    /// An empty network.
    pub fn new() -> Arc<Network> {
        Arc::new(Network {
            listeners: Mutex::new(HashMap::new()),
            firewalled: Mutex::new(HashSet::new()),
            firewall_delay: Duration::from_millis(100),
            pipe_capacity: 64 * 1024,
        })
    }

    /// Registers a listener. The handler is invoked on the *connecting*
    /// thread and must hand the stream off (e.g. to a pool) rather than
    /// serve it inline.
    ///
    /// # Panics
    ///
    /// Panics if the address is already bound.
    pub fn listen(
        &self,
        host: &str,
        port: u16,
        handler: impl Fn(PipeStream) + Send + Sync + 'static,
    ) {
        let mut l = self.listeners.lock();
        let prev = l.insert((host.to_string(), port), Arc::new(handler));
        assert!(prev.is_none(), "{host}:{port} already bound");
    }

    /// Removes a listener; future connects are refused.
    pub fn unlisten(&self, host: &str, port: u16) {
        self.listeners.lock().remove(&(host.to_string(), port));
    }

    /// Marks a host as allowing outbound connections only.
    pub fn set_firewalled(&self, host: &str, firewalled: bool) {
        let mut f = self.firewalled.lock();
        if firewalled {
            f.insert(host.to_string());
        } else {
            f.remove(host);
        }
    }

    /// Opens a connection to `host:port`, returning the client end.
    ///
    /// Firewalled destinations block for [`firewall_delay`](Self::firewall_delay)
    /// then fail with `TimedOut` (a dropped SYN); missing listeners fail
    /// fast with `ConnectionRefused` (an RST).
    pub fn connect(&self, host: &str, port: u16) -> io::Result<PipeStream> {
        if self.firewalled.lock().contains(host) {
            std::thread::sleep(self.firewall_delay);
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("connect to {host}:{port} timed out (firewall)"),
            ));
        }
        let handler = self
            .listeners
            .lock()
            .get(&(host.to_string(), port))
            .cloned()
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("{host}:{port} refused"),
                )
            })?;
        let (client_end, server_end) = duplex(self.pipe_capacity);
        handler(server_end);
        Ok(client_end)
    }

    /// Whether something listens on `host:port`.
    pub fn is_listening(&self, host: &str, port: u16) -> bool {
        self.listeners.lock().contains_key(&(host.to_string(), port))
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("listeners", &self.listeners.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn connect_reaches_listener() {
        let net = Network::new();
        net.listen("server", 80, |mut stream| {
            std::thread::spawn(move || {
                let mut buf = [0u8; 4];
                stream.read_exact(&mut buf).unwrap();
                stream.write_all(&buf).unwrap();
            });
        });
        let mut c = net.connect("server", 80).unwrap();
        c.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        c.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn missing_listener_refused_fast() {
        let net = Network::new();
        let err = net.connect("ghost", 80).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn firewalled_host_times_out() {
        let net = Network::new();
        net.listen("inria", 80, |_s| {});
        net.set_firewalled("inria", true);
        let t0 = std::time::Instant::now();
        let err = net.connect("inria", 80).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(t0.elapsed() >= Duration::from_millis(90));
        // Lifting the firewall restores reachability.
        net.set_firewalled("inria", false);
        assert!(net.connect("inria", 80).is_ok());
    }

    #[test]
    fn unlisten_refuses_future_connects() {
        let net = Network::new();
        net.listen("s", 80, |_s| {});
        assert!(net.is_listening("s", 80));
        net.unlisten("s", 80);
        assert!(!net.is_listening("s", 80));
        assert!(net.connect("s", 80).is_err());
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let net = Network::new();
        net.listen("s", 80, |_s| {});
        net.listen("s", 80, |_s| {});
    }

    #[test]
    fn concurrent_connects_are_independent() {
        let net = Network::new();
        net.listen("server", 80, |mut stream| {
            std::thread::spawn(move || {
                let mut buf = [0u8; 1];
                stream.read_exact(&mut buf).unwrap();
                stream.write_all(&[buf[0] + 1]).unwrap();
            });
        });
        let mut handles = Vec::new();
        for i in 0..16u8 {
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                let mut c = net.connect("server", 80).unwrap();
                c.write_all(&[i]).unwrap();
                let mut buf = [0u8; 1];
                c.read_exact(&mut buf).unwrap();
                assert_eq!(buf[0], i + 1);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
