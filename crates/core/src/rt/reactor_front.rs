//! Glue between the generic [`Reactor`] and the HTTP layer: accepted
//! streams become [`ServedConn`]s that pump bytes through an incremental
//! [`RequestParser`] and hand complete requests to the server's handler
//! on the reactor's pool.
//!
//! This is the piece that removes the paper's thread-per-connection
//! bottleneck in the threaded runtime: a dispatcher's `CxThread` pool is
//! no longer pinned one-thread-per-socket — it only runs handlers for
//! connections with a complete request buffered, while thousands of idle
//! keep-alive connections cost a parser buffer each and nothing else.

use std::collections::VecDeque;
use std::sync::Arc;

use wsd_concurrent::{Pump, Reactor, ReactorConfig, ReactorConn, ThreadPool, Wakeup};
use wsd_http::{write_response, Limits, PipeStream, ReadyStream, Request, RequestParser, Response};
use wsd_telemetry::Scope;

/// The per-request handler a front end runs on the pool; the same shape
/// as the closure [`wsd_http::serve_connection`] takes, but shareable.
pub type RequestHandler = Arc<dyn Fn(Request) -> Response + Send + Sync>;

/// One multiplexed server-side connection: readiness-driven reads, an
/// incremental parser, and blocking response writes on the handler pool.
pub struct ServedConn<S: ReadyStream> {
    stream: S,
    parser: RequestParser,
    pending: VecDeque<Request>,
    handler: RequestHandler,
    eof: bool,
}

impl<S: ReadyStream> ServedConn<S> {
    /// Wraps an accepted stream.
    pub fn new(stream: S, limits: Limits, handler: RequestHandler) -> Self {
        ServedConn {
            stream,
            parser: RequestParser::new(limits),
            pending: VecDeque::new(),
            handler,
            eof: false,
        }
    }
}

impl<S: ReadyStream + Send + 'static> ReactorConn for ServedConn<S> {
    fn install_wakeup(&mut self, hook: Wakeup) {
        self.stream.set_read_wakeup(Some(hook));
    }

    fn needs_poll(&self) -> bool {
        !self.stream.supports_wakeup()
    }

    fn pump(&mut self) -> Pump {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.try_read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    // A parse error loses framing: drop the connection,
                    // exactly as the blocking serve loop does.
                    match self.parser.feed(&chunk[..n]) {
                        Ok(Some(req)) => {
                            self.pending.push_back(req);
                            // Drain pipelined surplus already buffered.
                            loop {
                                match self.parser.poll() {
                                    Ok(Some(req)) => self.pending.push_back(req),
                                    Ok(None) => break,
                                    Err(_) => return Pump::Closed,
                                }
                            }
                        }
                        Ok(None) => {}
                        Err(_) => return Pump::Closed,
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => return Pump::Closed,
            }
        }
        if !self.pending.is_empty() {
            Pump::Ready
        } else if self.eof {
            Pump::Closed
        } else {
            Pump::Idle
        }
    }

    fn handle(&mut self) -> bool {
        while let Some(req) = self.pending.pop_front() {
            let client_keep_alive = req.keep_alive();
            let resp = (self.handler)(req);
            let resp_keep_alive = resp.keep_alive();
            if write_response(&mut self.stream, &resp).is_err() {
                return false;
            }
            if !client_keep_alive || !resp_keep_alive {
                return false;
            }
        }
        !self.eof
    }

    fn has_partial(&self) -> bool {
        self.parser.has_partial()
    }
}

/// A reactor-backed connection front end over the in-process network's
/// [`PipeStream`]s. Cheap to clone; all clones share one reactor.
///
/// Servers call [`serve`](Self::serve) from their `Network::listen`
/// handler instead of submitting a blocking serve loop to the pool.
#[derive(Clone)]
pub struct ReactorFrontEnd {
    reactor: Arc<Reactor<ServedConn<PipeStream>>>,
}

impl ReactorFrontEnd {
    /// Starts the event loop. `handlers` is the pool complete requests
    /// run on (the dispatcher's `CxThread` pool). Telemetry lands under
    /// `scope`: `open_conns`/`parked_partials` gauges, a `loop_us`
    /// histogram, `dispatches`/`wakeups` counters.
    pub fn start(name: impl Into<String>, handlers: Arc<ThreadPool>, scope: &Scope) -> Self {
        let config = ReactorConfig::new(name).telemetry(scope.clone());
        ReactorFrontEnd {
            reactor: Reactor::start(config, handlers),
        }
    }

    /// Hands an accepted connection to the reactor.
    pub fn serve(&self, stream: PipeStream, limits: Limits, handler: RequestHandler) {
        self.reactor.register(ServedConn::new(stream, limits, handler));
    }

    /// Connections currently registered (parked or in a handler).
    pub fn open_connections(&self) -> usize {
        self.reactor.open_connections()
    }

    /// Parked connections holding a partially-received request.
    pub fn parked_partials(&self) -> usize {
        self.reactor.parked_partials()
    }

    /// Stops the loop and drops every parked connection. Call before the
    /// handler pool's own shutdown so checked-out connections can drain.
    pub fn shutdown(&self) {
        self.reactor.shutdown();
    }
}

impl std::fmt::Debug for ReactorFrontEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorFrontEnd")
            .field("open", &self.open_connections())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::time::Duration;
    use wsd_concurrent::PoolConfig;
    use wsd_http::{duplex, HttpClient, Status};

    fn echo() -> RequestHandler {
        Arc::new(|req: Request| Response::new(Status::OK, "text/xml", req.body))
    }

    fn front(reg: &wsd_telemetry::Registry) -> (ReactorFrontEnd, Arc<ThreadPool>) {
        let pool = Arc::new(ThreadPool::new(PoolConfig::fixed("handler", 2)).unwrap());
        let fe = ReactorFrontEnd::start("reactor-test", Arc::clone(&pool), &reg.scope("fe"));
        (fe, pool)
    }

    fn wait_until(mut cond: impl FnMut() -> bool) -> bool {
        for _ in 0..500 {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        false
    }

    #[test]
    fn serves_keep_alive_exchanges() {
        let reg = wsd_telemetry::Registry::new();
        let (fe, _pool) = front(&reg);
        let (client, server) = duplex(64 * 1024);
        fe.serve(server, Limits::default(), echo());
        let mut c = HttpClient::new(client);
        for i in 0..5 {
            let req = Request::soap_post("h", "/", "text/xml", format!("m{i}").into_bytes());
            let resp = c.call(&req).unwrap();
            assert_eq!(resp.body, format!("m{i}").into_bytes());
        }
        assert_eq!(fe.open_connections(), 1);
        drop(c);
        assert!(wait_until(|| fe.open_connections() == 0));
        fe.shutdown();
    }

    #[test]
    fn many_idle_connections_few_threads() {
        let reg = wsd_telemetry::Registry::new();
        let (fe, pool) = front(&reg);
        let mut clients = Vec::new();
        for _ in 0..64 {
            let (client, server) = duplex(64 * 1024);
            fe.serve(server, Limits::default(), echo());
            clients.push(HttpClient::new(client));
        }
        assert_eq!(fe.open_connections(), 64);
        for (i, c) in clients.iter_mut().enumerate() {
            let req = Request::soap_post("h", "/", "text/xml", format!("m{i}").into_bytes());
            assert_eq!(c.call(&req).unwrap().status, Status::OK);
        }
        // 64 live connections, still only the fixed 2 handler threads.
        assert_eq!(pool.worker_count(), 2);
        drop(clients);
        assert!(wait_until(|| fe.open_connections() == 0));
        fe.shutdown();
    }

    #[test]
    fn half_close_mid_request_releases_connection() {
        let reg = wsd_telemetry::Registry::new();
        let (fe, _pool) = front(&reg);
        let (mut client, server) = duplex(4096);
        fe.serve(server, Limits::default(), echo());
        // Send half a request head, then hang up.
        client.write_all(b"POST / HTTP/1.1\r\nContent-Le").unwrap();
        assert!(wait_until(|| fe.parked_partials() == 1));
        drop(client);
        assert!(wait_until(|| fe.open_connections() == 0));
        assert_eq!(fe.parked_partials(), 0);
        let snap = reg.snapshot();
        assert_eq!(snap.get("fe.open_conns").map(gauge_value), Some(0));
        fe.shutdown();
    }

    #[test]
    fn slow_loris_partial_heads_only_park_buffers() {
        let reg = wsd_telemetry::Registry::new();
        let (fe, pool) = front(&reg);
        let mut holders = Vec::new();
        for _ in 0..16 {
            let (mut client, server) = duplex(4096);
            fe.serve(server, Limits::default(), echo());
            // Each sender drips a few head bytes and stalls.
            client.write_all(b"POST / HT").unwrap();
            holders.push(client);
        }
        assert!(wait_until(|| fe.parked_partials() == 16));
        // No handler thread is consumed by the stalled senders.
        assert_eq!(pool.active_count(), 0);
        // One real client still gets served promptly.
        let (real, server) = duplex(4096);
        fe.serve(server, Limits::default(), echo());
        let mut c = HttpClient::new(real);
        let req = Request::soap_post("h", "/", "text/xml", b"thru".to_vec());
        assert_eq!(c.call(&req).unwrap().body, b"thru");
        drop(holders);
        drop(c);
        assert!(wait_until(|| fe.open_connections() == 0));
        assert_eq!(fe.parked_partials(), 0);
        fe.shutdown();
    }

    #[test]
    fn shutdown_with_parked_partials_releases_everything() {
        let reg = wsd_telemetry::Registry::new();
        let (fe, pool) = front(&reg);
        let mut holders = Vec::new();
        for _ in 0..8 {
            let (mut client, server) = duplex(4096);
            fe.serve(server, Limits::default(), echo());
            client.write_all(b"POST /stall HTTP/1.1\r\n").unwrap();
            holders.push(client);
        }
        assert!(wait_until(|| fe.parked_partials() == 8));
        fe.shutdown();
        pool.shutdown();
        assert_eq!(fe.open_connections(), 0);
        assert_eq!(fe.parked_partials(), 0);
        let snap = reg.snapshot();
        assert_eq!(snap.get("fe.open_conns").map(gauge_value), Some(0));
        assert_eq!(snap.get("fe.parked_partials").map(gauge_value), Some(0));
        // The dropped server ends surface as EOF on the stalled clients.
        for mut h in holders {
            let mut buf = [0u8; 1];
            assert_eq!(std::io::Read::read(&mut h, &mut buf).unwrap(), 0);
        }
    }

    #[test]
    fn malformed_request_closes_connection() {
        let reg = wsd_telemetry::Registry::new();
        let (fe, _pool) = front(&reg);
        let (mut client, server) = duplex(4096);
        fe.serve(server, Limits::default(), echo());
        client.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        assert!(wait_until(|| fe.open_connections() == 0));
        fe.shutdown();
    }

    fn gauge_value(m: &wsd_telemetry::MetricValue) -> i64 {
        match m {
            wsd_telemetry::MetricValue::Gauge { value, .. } => *value,
            other => panic!("expected gauge, got {other:?}"),
        }
    }
}
