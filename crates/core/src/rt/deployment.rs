//! One-call deployment of the complete WS-Dispatcher topology (paper
//! Figure 1): registry + RPC-Dispatcher + MSG-Dispatcher + WS-MsgBox on
//! the threaded runtime, ready for clients.
//!
//! ```
//! use std::time::Duration;
//! use wsd_core::rt::{Deployment, EchoServer, Network, rpc_call};
//! use wsd_core::url::Url;
//! use wsd_soap::{rpc, SoapVersion};
//!
//! let net = Network::new();
//! let ws = EchoServer::start(&net, "ws", 8888, 2, Duration::ZERO);
//! let deployment = Deployment::builder(&net, "dispatcher").start();
//! deployment
//!     .registry()
//!     .register("Echo", Url::parse("http://ws:8888/echo").unwrap());
//!
//! let resp = rpc_call(&net, "dispatcher", deployment.rpc_port(), "/svc/Echo",
//!     &rpc::echo_request(SoapVersion::V11, "hi"), None).unwrap();
//! assert_eq!(rpc::parse_echo_response(&resp).unwrap(), "hi");
//! deployment.shutdown();
//! ws.shutdown();
//! ```

use std::sync::Arc;

use crate::config::{DispatcherConfig, MsgBoxConfig};
use crate::msg::MsgCore;
use crate::registry::Registry;
use crate::rt::{
    MsgBoxServer, MsgDispatcherServer, Network, RegistryServer, RpcDispatcherServer,
};
use crate::security::PolicyChain;

/// Builder for a [`Deployment`].
pub struct DeploymentBuilder {
    net: Arc<Network>,
    host: String,
    registry: Option<Arc<Registry>>,
    config: DispatcherConfig,
    policies: PolicyChain,
    msgbox_config: MsgBoxConfig,
    rpc_port: u16,
    msg_port: u16,
    msgbox_port: u16,
    registry_port: u16,
    with_msgbox: bool,
    with_registry_service: bool,
    seed: u64,
}

impl DeploymentBuilder {
    /// Overrides the registry (e.g. pre-loaded from a file).
    pub fn registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Overrides dispatcher tuning.
    pub fn config(mut self, config: DispatcherConfig) -> Self {
        self.config = config;
        self
    }

    /// Installs security policies on the RPC path.
    pub fn policies(mut self, policies: PolicyChain) -> Self {
        self.policies = policies;
        self
    }

    /// Overrides WS-MsgBox tuning.
    pub fn msgbox_config(mut self, config: MsgBoxConfig) -> Self {
        self.msgbox_config = config;
        self
    }

    /// Skips the WS-MsgBox service.
    pub fn without_msgbox(mut self) -> Self {
        self.with_msgbox = false;
        self
    }

    /// Skips the browseable registry service.
    pub fn without_registry_service(mut self) -> Self {
        self.with_registry_service = false;
        self
    }

    /// Seeds the id generators (deterministic message/mailbox ids).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Starts everything.
    pub fn start(self) -> Deployment {
        let registry = self.registry.unwrap_or_default();
        let limits = self.config.limits;
        let rpc = RpcDispatcherServer::start(
            &self.net,
            &self.host,
            self.rpc_port,
            Arc::clone(&registry),
            self.policies,
            self.config.clone(),
        );
        let mut core = MsgCore::new(
            Arc::clone(&registry),
            format!("http://{}:{}/msg", self.host, self.msg_port),
            self.seed,
        );
        let msgbox = if self.with_msgbox {
            core = core.with_mailbox(format!(
                "http://{}:{}/deposit",
                self.host, self.msgbox_port
            ));
            Some(MsgBoxServer::start(
                &self.net,
                &self.host,
                self.msgbox_port,
                self.msgbox_config.clone(),
                self.seed,
            ))
        } else {
            None
        };
        let msg =
            MsgDispatcherServer::start(&self.net, &self.host, self.msg_port, core, self.config);
        let registry_service = if self.with_registry_service {
            Some(RegistryServer::start_with_limits(
                &self.net,
                &self.host,
                self.registry_port,
                Arc::clone(&registry),
                limits,
            ))
        } else {
            None
        };
        Deployment {
            registry,
            rpc,
            msg,
            msgbox,
            registry_service,
            rpc_port: self.rpc_port,
            msg_port: self.msg_port,
            msgbox_port: self.msgbox_port,
            registry_port: self.registry_port,
        }
    }
}

/// A running full topology on one dispatcher host.
pub struct Deployment {
    registry: Arc<Registry>,
    rpc: RpcDispatcherServer,
    msg: Arc<MsgDispatcherServer>,
    msgbox: Option<Arc<MsgBoxServer>>,
    registry_service: Option<RegistryServer>,
    rpc_port: u16,
    msg_port: u16,
    msgbox_port: u16,
    registry_port: u16,
}

impl Deployment {
    /// Starts building a deployment on `host` with default ports
    /// (8081 RPC, 8080 MSG, 8082 WS-MsgBox, 8090 registry).
    pub fn builder(net: &Arc<Network>, host: &str) -> DeploymentBuilder {
        DeploymentBuilder {
            net: Arc::clone(net),
            host: host.to_string(),
            registry: None,
            config: DispatcherConfig::default(),
            policies: PolicyChain::new(),
            msgbox_config: MsgBoxConfig::default(),
            rpc_port: 8081,
            msg_port: 8080,
            msgbox_port: 8082,
            registry_port: 8090,
            with_msgbox: true,
            with_registry_service: true,
            seed: 0xD15B,
        }
    }

    /// The shared registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// RPC-Dispatcher port.
    pub fn rpc_port(&self) -> u16 {
        self.rpc_port
    }

    /// MSG-Dispatcher port.
    pub fn msg_port(&self) -> u16 {
        self.msg_port
    }

    /// WS-MsgBox port (meaningful when the mailbox service is enabled).
    pub fn msgbox_port(&self) -> u16 {
        self.msgbox_port
    }

    /// Registry-service port (meaningful when enabled).
    pub fn registry_port(&self) -> u16 {
        self.registry_port
    }

    /// The RPC dispatcher's counters.
    pub fn rpc_stats(&self) -> crate::rpc::RpcDispatchStats {
        self.rpc.stats()
    }

    /// The MSG dispatcher handle.
    pub fn msg_dispatcher(&self) -> &MsgDispatcherServer {
        &self.msg
    }

    /// The mailbox service handle, if enabled.
    pub fn msgbox(&self) -> Option<&MsgBoxServer> {
        self.msgbox.as_deref()
    }

    /// Stops every component.
    pub fn shutdown(&self) {
        if let Some(r) = &self.registry_service {
            r.shutdown();
        }
        if let Some(m) = &self.msgbox {
            m.shutdown();
        }
        self.msg.shutdown();
        self.rpc.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt::{rpc_call, send_oneway, EchoServer, MailboxClient};
    use crate::url::Url;
    use std::time::Duration;
    use wsd_soap::{rpc, SoapVersion};
    use wsd_wsa::{EndpointReference, WsaHeaders};

    #[test]
    fn full_deployment_serves_both_styles() {
        let net = Network::new();
        let ws = EchoServer::start(&net, "ws", 8888, 4, Duration::ZERO);
        let deployment = Deployment::builder(&net, "dispatcher").start();
        deployment
            .registry()
            .register("Echo", Url::parse("http://ws:8888/echo").unwrap());

        // RPC path.
        let resp = rpc_call(
            &net,
            "dispatcher",
            deployment.rpc_port(),
            "/svc/Echo",
            &rpc::echo_request(SoapVersion::V11, "rpc"),
            None,
        )
        .unwrap();
        assert_eq!(rpc::parse_echo_response(&resp).unwrap(), "rpc");

        // MSG path with a mailbox.
        let mailbox = MailboxClient::create(&net, "dispatcher", deployment.msgbox_port()).unwrap();
        let mut env = rpc::echo_request(SoapVersion::V11, "msg");
        WsaHeaders::new()
            .to("http://dispatcher/svc/Echo")
            .reply_to(EndpointReference::new(mailbox.deposit_url()))
            .message_id("uuid:deploy-1")
            .apply(&mut env);
        send_oneway(&net, "dispatcher", deployment.msg_port(), "/msg", &env).unwrap();
        // The RPC-style WS answers synchronously; the MSG dispatcher
        // translates the response into a reply message for the mailbox.
        let got = mailbox
            .poll_until(10, Duration::from_millis(20), Duration::from_secs(5))
            .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(rpc::parse_echo_response(&got[0]).unwrap(), "msg");

        // Registry service answers too.
        let stream = net.connect("dispatcher", deployment.registry_port()).unwrap();
        let mut client = wsd_http::HttpClient::new(stream);
        let mut req = wsd_http::Request::get("dispatcher:8090", "/registry");
        req.headers.set("Connection", "close");
        let resp = client.call(&req).unwrap();
        assert!(resp.body_utf8().contains("Echo"));

        deployment.shutdown();
        ws.shutdown();
    }

    #[test]
    fn builder_toggles_components() {
        let net = Network::new();
        let deployment = Deployment::builder(&net, "d2")
            .without_msgbox()
            .without_registry_service()
            .start();
        assert!(deployment.msgbox().is_none());
        assert!(!net.is_listening("d2", deployment.registry_port()));
        assert!(net.is_listening("d2", deployment.rpc_port()));
        assert!(net.is_listening("d2", deployment.msg_port()));
        deployment.shutdown();
        assert!(!net.is_listening("d2", deployment.rpc_port()));
    }
}
