//! The simulated runtime: dispatcher components as [`wsd_netsim`]
//! actors.
//!
//! Every figure in the paper's evaluation is regenerated on this runtime
//! (deterministic virtual time), with the protocol stack carrying the
//! same serialized bytes a real deployment would.
//!
//! A note on CPU modeling: the network engine serializes link usage but
//! not host CPU, so every service process here runs its own FIFO "CPU"
//! (`busy_until`): work starts at `max(now, busy_until)` and advances it.
//! That is what caps throughput at `1/service_time` and produces the
//! paper's plateaus.

pub mod echo;
pub mod fleet;
pub mod msg_dispatcher;
pub mod msgbox;
pub mod rpc_dispatcher;

pub use echo::{EchoMode, EchoStats, SimEchoService};
pub use fleet::{run_fleet, FleetOutcome, FleetParams, HandoffReport};
pub use msg_dispatcher::{MsgDispatcherStats, SimMsgDispatcher, WsThreadConfig};
pub use msgbox::{SimMsgBox, SimMsgBoxStats};
pub use rpc_dispatcher::{RpcDispatcherStats, SimRpcDispatcher};

use wsd_http::{Request, Response};
use wsd_netsim::{Payload, SimDuration, SimTime};

/// Converts a wall-clock `Duration` (configs use std time) to simulated
/// time.
pub fn to_sim(d: std::time::Duration) -> SimDuration {
    SimDuration::from_micros(d.as_micros() as u64)
}

/// Serializes a request for the wire.
pub fn request_payload(req: &Request) -> Payload {
    Payload::from(wsd_http::request_bytes(req))
}

/// Serializes a response for the wire.
pub fn response_payload(resp: &Response) -> Payload {
    Payload::from(wsd_http::response_bytes(resp))
}

/// A process-local FIFO CPU: work starts when the CPU frees up.
#[derive(Debug, Default, Clone, Copy)]
pub struct CpuQueue {
    busy_until: SimTime,
}

impl CpuQueue {
    /// Reserves `cost` of CPU starting no earlier than `now`; returns the
    /// completion time.
    pub fn reserve(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        let start = self.busy_until.max(now);
        let done = start + cost;
        self.busy_until = done;
        done
    }

    /// Whether the CPU is idle at `now`.
    pub fn idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// How much queued work separates `now` from the CPU going idle —
    /// the backlog an admission controller sheds load on.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        if self.busy_until > now {
            self.busy_until.since(now)
        } else {
            SimDuration(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_queue_serializes_work() {
        let mut cpu = CpuQueue::default();
        let t0 = SimTime::ZERO;
        let a = cpu.reserve(t0, SimDuration::from_millis(10));
        let b = cpu.reserve(t0, SimDuration::from_millis(10));
        assert_eq!(a, t0 + SimDuration::from_millis(10));
        assert_eq!(b, t0 + SimDuration::from_millis(20));
        assert!(!cpu.idle_at(t0));
        assert!(cpu.idle_at(b));
    }

    #[test]
    fn cpu_queue_skips_idle_gaps() {
        let mut cpu = CpuQueue::default();
        cpu.reserve(SimTime::ZERO, SimDuration::from_millis(1));
        let later = SimTime::ZERO + SimDuration::from_secs(5);
        let done = cpu.reserve(later, SimDuration::from_millis(1));
        assert_eq!(done, later + SimDuration::from_millis(1));
    }

    #[test]
    fn to_sim_converts_micros() {
        assert_eq!(
            to_sim(std::time::Duration::from_millis(3)),
            SimDuration::from_millis(3)
        );
    }
}
