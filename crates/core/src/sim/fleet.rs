//! The sharded dispatcher fleet on the simulated runtime.
//!
//! One dispatcher instance tops out where its disk does: with the
//! durable mailbox backend every acknowledged deposit costs an fsync,
//! so a 2004-era disk caps an instance near `1/fsync` deposits per
//! second. This module scales past that by running N instances behind
//! a seeded consistent-hash ring ([`ShardRing`]):
//!
//! * **routing** — clients hash the logical service name onto the ring
//!   ([`FleetClientHub::shard_route`]) and deposit at the owning
//!   instance; every enqueue goes through the routing step first (the
//!   `shard-route-before-enqueue` lint rule enforces this shape);
//! * **registry replication** — instance 0's registry is the leader
//!   ([`RegistryLeader`]); every instance tails it through a
//!   [`RegistryFollower`] on its control tick (PSYNC shape: snapshot
//!   full resync, then offset-stamped commands);
//! * **failure & handoff** — clients detect a dead instance by ack
//!   timeout, drop it from their ring view and re-route; the ring's
//!   authoritative copy reassigns the dead arcs and a successor adopts
//!   the orphaned durable store ([`HandoffLog`]), replaying every
//!   acknowledged-but-undelivered deposit.
//!
//! # Why no acknowledged message is ever lost — or delivered twice
//!
//! An instance writes a deposit to the WAL and sends the `202` ack in
//! the *same* simulation event, so a kill can never separate them:
//! unacked ⇒ not stored. Draining does the reverse with the same
//! atomicity: [`wsd_store::DurableMsgBox::fetch`] makes the covering
//! ack durable before handing the messages out, and the instance
//! forwards them in the same event. So after a kill,
//!
//! * the successor recovers exactly the acked-but-unforwarded tail;
//! * the client re-sends exactly the unacked tail;
//!
//! and the two sets cannot intersect. Simulated clients are an
//! aggregate open-loop generator (100k clients ≈ their offered rate),
//! and instances shed load with `503` once their disk/CPU backlog
//! passes [`FleetConfig::max_backlog`] — that keeps ack latency far
//! below the ack timeout, so overload never masquerades as death.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use wsd_fleet::{HandoffLog, InstanceId, ShardRing};
use wsd_http::{parse_request_bytes, Request, Response, Status};
use wsd_netsim::{
    ConnId, Ctx, HostConfig, Payload, ProcEvent, ProcId, Process, SimDuration, SimTime,
    Simulation,
};
use wsd_store::{DurableMsgBox, StoreConfig, SyncMode, WalConfig};
use wsd_telemetry::{Counter, Gauge, Scope};

use crate::config::FleetConfig;
use crate::registry::Registry;
use crate::registry_repl::{RegistryFollower, RegistryLeader};
use crate::sim::msgbox::DiskProfile;
use crate::sim::{request_payload, response_payload, to_sim, CpuQueue};
use crate::url::Url;

/// Port every fleet instance listens on (hosts are distinct).
const FLEET_PORT: u16 = 8090;
/// Port the delivery sink listens on.
const SINK_PORT: u16 = 8099;
/// Fixed mailbox access key: box ids are logical service names, minted
/// identically on every instance so a successor can open them.
const BOX_KEY: &str = "fleet";

const TOKEN_CONTROL: u64 = 1;
const TOKEN_DRAIN: u64 = 2;
const TOKEN_RECOVERY: u64 = 3;
const TOKEN_GEN: u64 = 1;
const TOKEN_CHECK: u64 = 2;
/// Deposit-completion tokens start here.
const TOKEN_DEPOSIT_BASE: u64 = 16;

fn instance_host(i: u32) -> String {
    format!("fleet-i{i}")
}

/// Pulls the message key out of a fleet body (`<m k="NN" .../>`)
/// without a full XML parse — the sim hot path.
fn body_key(body: &str) -> Option<u64> {
    let at = body.find("k=\"")? + 3;
    let rest = &body[at..];
    let end = rest.find('"')?;
    rest[..end].parse().ok()
}

// ---------------------------------------------------------------------
// Shared control plane
// ---------------------------------------------------------------------

struct SharedInner {
    /// Authoritative ring: membership changes land here first.
    ring: ShardRing,
    alive: Vec<bool>,
    /// Each instance's simulated disk. Cloning shares the bytes, which
    /// is exactly what ownership handoff needs.
    storages: Vec<wsd_store::MemStorage>,
    handoffs: HandoffLog,
    store_cfg: StoreConfig,
}

/// Control-plane state all fleet actors share (single-threaded sim).
#[derive(Clone)]
pub struct FleetShared {
    inner: Rc<RefCell<SharedInner>>,
}

impl FleetShared {
    fn new(cfg: &FleetConfig, store_cfg: StoreConfig) -> FleetShared {
        FleetShared {
            inner: Rc::new(RefCell::new(SharedInner {
                ring: cfg.ring(),
                alive: vec![true; cfg.instances],
                storages: (0..cfg.instances)
                    .map(|_| wsd_store::MemStorage::new())
                    .collect(),
                handoffs: HandoffLog::new(),
                store_cfg,
            })),
        }
    }
}

// ---------------------------------------------------------------------
// Instance
// ---------------------------------------------------------------------

struct InstanceTelemetry {
    acked: Counter,
    shed: Counter,
    forwarded: Counter,
    recovered: Counter,
    handoffs_claimed: Counter,
    owned_ranges: Gauge,
    repl_offset: Gauge,
    repl_lag: Gauge,
    backlog_depth: Gauge,
    handoffs_in_flight: Gauge,
}

impl InstanceTelemetry {
    fn new(scope: &Scope, fleet_scope: &Scope) -> InstanceTelemetry {
        InstanceTelemetry {
            acked: scope.counter("acked"),
            shed: scope.counter("shed"),
            forwarded: scope.counter("forwarded"),
            recovered: scope.counter("recovered"),
            handoffs_claimed: scope.counter("handoffs_claimed"),
            owned_ranges: scope.gauge("owned_ranges"),
            repl_offset: scope.gauge("repl_offset"),
            repl_lag: scope.gauge("repl_lag"),
            backlog_depth: scope.gauge("backlog_depth"),
            handoffs_in_flight: fleet_scope.gauge("handoffs_in_flight"),
        }
    }
}

/// One dispatcher instance of the fleet: accepts deposits for the
/// shard arcs it owns, makes them durable, acks, then drains them to
/// the delivery sink in batches. Its control tick tails the registry
/// leader and claims ownership handoffs addressed to it.
pub struct SimFleetInstance {
    id: InstanceId,
    shared: FleetShared,
    leader: Arc<RegistryLeader>,
    follower: RegistryFollower,
    store: DurableMsgBox,
    created: HashSet<String>,
    /// Deposited-not-yet-drained counts per service (sorted for
    /// deterministic drain order).
    backlog: BTreeMap<String, u64>,
    disk: CpuQueue,
    cpu: CpuQueue,
    profile: DiskProfile,
    dispatch_cost: SimDuration,
    drain_batch: usize,
    max_backlog: SimDuration,
    control_tick: SimDuration,
    sink_conn: Option<ConnId>,
    sink_ready: bool,
    /// Deposits whose modeled disk write is still in the queue:
    /// token → (conn, service, key, body). Durable only when the
    /// timer fires — a kill before that loses them *unacked*.
    pending_deposits: HashMap<u64, (ConnId, String, u64, String)>,
    next_token: u64,
    drain_scheduled: bool,
    pending_recovery: Option<(usize, u64)>,
    tele: InstanceTelemetry,
}

impl SimFleetInstance {
    #[allow(clippy::too_many_arguments)]
    fn new(
        id: InstanceId,
        shared: FleetShared,
        leader: Arc<RegistryLeader>,
        params: &FleetParams,
        scope: &Scope,
        fleet_scope: &Scope,
    ) -> SimFleetInstance {
        let (store_cfg, storage) = {
            let inner = shared.inner.borrow();
            (
                inner.store_cfg.clone(),
                inner.storages[id.0 as usize].clone(),
            )
        };
        let (store, _report) =
            DurableMsgBox::open(store_cfg, Box::new(storage), &scope.child("store"), 0)
                .expect("in-memory storage cannot fail to open");
        SimFleetInstance {
            id,
            shared,
            leader,
            follower: RegistryFollower::new(Arc::new(Registry::new())),
            store,
            created: HashSet::new(),
            backlog: BTreeMap::new(),
            disk: CpuQueue::default(),
            cpu: CpuQueue::default(),
            profile: params.disk,
            dispatch_cost: to_sim(params.dispatch_cost),
            drain_batch: params.drain_batch,
            max_backlog: to_sim(params.fleet.max_backlog),
            control_tick: to_sim(params.fleet.control_tick),
            sink_conn: None,
            sink_ready: false,
            pending_deposits: HashMap::new(),
            next_token: TOKEN_DEPOSIT_BASE,
            drain_scheduled: false,
            pending_recovery: None,
            tele: InstanceTelemetry::new(scope, fleet_scope),
        }
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    /// Modeled disk price of one deposit: the record fsync, streaming
    /// bytes, plus a one-time fsync if the box must be created first.
    fn deposit_cost(&self, svc: &str, body_len: usize) -> SimDuration {
        let mut us = self.profile.fsync_us + body_len as u64 * self.profile.us_per_kib / 1024;
        if !self.created.contains(svc) {
            us += self.profile.fsync_us;
        }
        SimDuration(us)
    }

    fn on_deposit(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, svc: &str, body: String) {
        let key = body_key(&body).unwrap_or(u64::MAX);
        // Admission control: shed once the backlog would push ack
        // latency toward the client's failure detector.
        if self.disk.backlog(ctx.now()).0 > self.max_backlog.0
            || self.cpu.backlog(ctx.now()).0 > self.max_backlog.0
        {
            self.tele.shed.inc();
            let resp = Response::new(
                Status::SERVICE_UNAVAILABLE,
                "text/xml",
                format!("<shed k=\"{key}\"/>").into_bytes(),
            );
            let _ = ctx.send(conn, response_payload(&resp));
            return;
        }
        let cost = self.deposit_cost(svc, body.len());
        let done = self.disk.reserve(ctx.now(), cost);
        let token = self.token();
        self.pending_deposits
            .insert(token, (conn, svc.to_string(), key, body));
        ctx.set_timer(done.since(ctx.now()), token);
    }

    /// The disk finished a deposit: make it durable and ack — one
    /// event, so a kill can never ack without storing or vice versa.
    fn finish_deposit(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let Some((conn, svc, key, body)) = self.pending_deposits.remove(&token) else {
            return;
        };
        let now_us = ctx.now().as_micros();
        if self.created.insert(svc.clone()) {
            self.store
                .create(&svc, BOX_KEY, &svc, now_us)
                .expect("create on in-memory storage");
        }
        let status = match self.store.deposit(&svc, body, now_us, u64::MAX) {
            Ok(()) => {
                *self.backlog.entry(svc).or_insert(0) += 1;
                self.tele.acked.inc();
                Status::ACCEPTED
            }
            Err(_) => Status::INTERNAL_SERVER_ERROR,
        };
        let resp = Response::new(
            status,
            "text/xml",
            format!("<ack k=\"{key}\"/>").into_bytes(),
        );
        let _ = ctx.send(conn, response_payload(&resp));
        if !self.drain_scheduled {
            self.drain_scheduled = true;
            ctx.set_timer(SimDuration(0), TOKEN_DRAIN);
        }
    }

    fn forward_to_sink(&mut self, ctx: &mut Ctx<'_>, svc: &str, body: String) {
        let Some(conn) = self.sink_conn else { return };
        let req = Request::soap_post(
            &format!("fleet-sink:{SINK_PORT}"),
            &format!("/sink/{svc}"),
            "text/xml",
            body.into_bytes(),
        );
        let _ = ctx.send(conn, request_payload(&req));
        self.tele.forwarded.inc();
    }

    /// Drains up to one batch across services: each fetch makes the
    /// covering ack durable, and the messages leave for the sink in
    /// the same event — atomic with respect to a kill.
    fn drain(&mut self, ctx: &mut Ctx<'_>) {
        self.drain_scheduled = false;
        if !self.sink_ready {
            // Sink connection still handshaking: retry shortly.
            self.drain_scheduled = true;
            ctx.set_timer(self.control_tick, TOKEN_DRAIN);
            return;
        }
        let now = ctx.now();
        // The CPU performs the dispatches: fetching while it is still
        // busy with an earlier batch would teleport mail out of the
        // durable box faster than the model allows, so wait it out.
        let wait = self.cpu.backlog(now);
        if wait.0 > 0 {
            self.drain_scheduled = true;
            ctx.set_timer(wait, TOKEN_DRAIN);
            return;
        }
        let now_us = now.as_micros();
        let mut budget = self.drain_batch;
        let mut done = now;
        let services: Vec<String> = self.backlog.keys().cloned().collect();
        for svc in services {
            if budget == 0 {
                break;
            }
            let want = (*self.backlog.get(&svc).unwrap_or(&0)).min(budget as u64) as usize;
            if want == 0 {
                continue;
            }
            // wsd-lint: allow(alloc-in-drain): simulated drain — fetch cost is charged to the modeled disk, not the host CPU
            let msgs = match self.store.fetch(&svc, BOX_KEY, want, now_us) {
                Ok(msgs) => msgs,
                Err(_) => {
                    self.backlog.remove(&svc);
                    continue;
                }
            };
            let got = msgs.len() as u64;
            // One durable ack record per fetch, CPU per message.
            done = done.max(self.disk.reserve(now, SimDuration(self.profile.fsync_us)));
            done = done.max(
                self.cpu
                    .reserve(now, SimDuration(self.dispatch_cost.0 * got)),
            );
            for m in msgs {
                // wsd-lint: allow(alloc-in-drain): simulated drain builds wire payloads by design; its cost is the modeled dispatch_cost
                self.forward_to_sink(ctx, &svc, m.body);
            }
            budget -= got as usize;
            let left = self.backlog.get_mut(&svc).expect("iterating keys");
            *left = left.saturating_sub(got);
            if *left == 0 {
                self.backlog.remove(&svc);
            }
        }
        let remaining: u64 = self.backlog.values().sum();
        self.tele.backlog_depth.set(remaining as i64);
        if remaining > 0 {
            // Next batch starts when the resources it reserved free up.
            self.drain_scheduled = true;
            ctx.set_timer(done.since(now).max(SimDuration(1)), TOKEN_DRAIN);
        }
    }

    /// Claims and replays a dead instance's durable store. Fetching
    /// acks durably and forwarding happens in this one event; the
    /// ledger completes when the modeled disk/CPU time has elapsed.
    fn try_claim_handoff(&mut self, ctx: &mut Ctx<'_>) {
        if self.pending_recovery.is_some() {
            return;
        }
        let now_us = ctx.now().as_micros();
        let (at, storage, store_cfg) = {
            let mut inner = self.shared.inner.borrow_mut();
            let Some(at) = inner.handoffs.claim_for(self.id) else {
                return;
            };
            let dead = inner.handoffs.get(at).dead;
            (
                at,
                inner.storages[dead.0 as usize].clone(),
                inner.store_cfg.clone(),
            )
        };
        self.tele.handoffs_claimed.inc();
        let (dead_store, _report) =
            DurableMsgBox::open(store_cfg, Box::new(storage), &Scope::noop(), now_us)
                .expect("reopen orphaned in-memory storage");
        let fsyncs_before = dead_store.wal().fsync_count();
        let mut recovered = 0u64;
        // Box ids are logical service names; the replicated registry
        // tells the successor which ones can exist.
        for svc in self.follower.registry().list() {
            loop {
                match dead_store.fetch(&svc, BOX_KEY, self.drain_batch, now_us) {
                    Ok(msgs) if msgs.is_empty() => break,
                    Ok(msgs) => {
                        recovered += msgs.len() as u64;
                        for m in msgs {
                            self.forward_to_sink(ctx, &svc, m.body);
                        }
                    }
                    Err(_) => break,
                }
            }
        }
        let replay_fsyncs = dead_store.wal().fsync_count() - fsyncs_before;
        let now = ctx.now();
        // The handoff is complete once the dead store's WAL has been
        // replayed (disk time); the dispatch CPU debt is still owed,
        // but it delays this instance's future drains rather than
        // gating ownership transfer.
        let done = self
            .disk
            .reserve(now, SimDuration(replay_fsyncs * self.profile.fsync_us));
        self.cpu
            .reserve(now, SimDuration(self.dispatch_cost.0 * recovered));
        self.tele.recovered.add(recovered);
        self.pending_recovery = Some((at, recovered));
        ctx.set_timer(done.since(now).max(SimDuration(1)), TOKEN_RECOVERY);
    }

    fn control(&mut self, ctx: &mut Ctx<'_>) {
        // Tail the registry leader (partial resync normally, snapshot
        // install after a backlog overrun).
        let _ = self.follower.catch_up(&self.leader);
        self.tele.repl_offset.set(self.follower.offset() as i64);
        self.tele
            .repl_lag
            .set((self.leader.offset() - self.follower.offset()) as i64);
        {
            let inner = self.shared.inner.borrow();
            self.tele
                .owned_ranges
                .set(inner.ring.owned_ranges(self.id) as i64);
            self.tele
                .handoffs_in_flight
                .set(inner.handoffs.in_flight() as i64);
        }
        self.try_claim_handoff(ctx);
        ctx.set_timer(self.control_tick, TOKEN_CONTROL);
    }
}

impl Process for SimFleetInstance {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => {
                self.sink_conn =
                    Some(ctx.connect("fleet-sink", SINK_PORT, SimDuration::from_secs(5)));
                ctx.set_timer(self.control_tick, TOKEN_CONTROL);
            }
            ProcEvent::ConnEstablished { conn } => {
                if self.sink_conn == Some(conn) {
                    self.sink_ready = true;
                }
            }
            ProcEvent::Message { conn, bytes } => {
                let Ok(req) = parse_request_bytes(&bytes) else {
                    let _ = ctx.send(conn, response_payload(&Response::empty(Status::BAD_REQUEST)));
                    return;
                };
                if let Some(svc) = req.target.strip_prefix("/fleet/") {
                    let svc = svc.to_string();
                    let body = req.body_utf8().to_string();
                    self.on_deposit(ctx, conn, &svc, body);
                } else {
                    let _ = ctx.send(conn, response_payload(&Response::empty(Status::NOT_FOUND)));
                }
            }
            ProcEvent::Timer { token } => match token {
                TOKEN_CONTROL => self.control(ctx),
                TOKEN_DRAIN => self.drain(ctx),
                TOKEN_RECOVERY => {
                    if let Some((at, recovered)) = self.pending_recovery.take() {
                        let mut inner = self.shared.inner.borrow_mut();
                        inner
                            .handoffs
                            .complete(at, recovered, ctx.now().as_micros());
                        let in_flight = inner.handoffs.in_flight();
                        drop(inner);
                        self.tele.handoffs_in_flight.set(in_flight as i64);
                    }
                }
                t => self.finish_deposit(ctx, t),
            },
            ProcEvent::ConnAccepted { .. }
            | ProcEvent::ConnClosed { .. }
            | ProcEvent::ConnRefused { .. } => {}
        }
    }
}

// ---------------------------------------------------------------------
// Client hub
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct HubInner {
    generated: u64,
    acked: HashSet<u64>,
    shed: u64,
    resent: u64,
    unroutable: u64,
    detected_dead: Vec<u32>,
}

/// Live counters of a [`FleetClientHub`].
#[derive(Debug, Clone, Default)]
pub struct FleetHubStats {
    inner: Rc<RefCell<HubInner>>,
}

impl FleetHubStats {
    /// Messages the generator offered.
    pub fn generated(&self) -> u64 {
        self.inner.borrow().generated
    }
    /// Messages acknowledged with `202`.
    pub fn acked(&self) -> u64 {
        self.inner.borrow().acked.len() as u64
    }
    /// Messages shed with `503` (overload, not loss).
    pub fn shed(&self) -> u64 {
        self.inner.borrow().shed
    }
    /// Messages re-routed and re-sent after a death was detected.
    pub fn resent(&self) -> u64 {
        self.inner.borrow().resent
    }
    /// Instances this hub declared dead, in detection order.
    pub fn detected_dead(&self) -> Vec<u32> {
        self.inner.borrow().detected_dead.clone()
    }
}

#[derive(Debug)]
struct PendingMsg {
    svc: usize,
    instance: u32,
    sent_at_us: u64,
    body: String,
}

/// The aggregate client population: an open-loop generator that
/// ring-routes deposits, tracks acks, detects dead instances by ack
/// timeout and re-routes what they never acknowledged.
pub struct FleetClientHub {
    services: Vec<String>,
    /// This hub's *view* of the ring — diverges from the authoritative
    /// copy until failure detection catches up.
    view: ShardRing,
    conns: Vec<Option<ConnId>>,
    established: Vec<bool>,
    dead: Vec<bool>,
    conn_to_instance: HashMap<ConnId, usize>,
    wait_q: Vec<Vec<Payload>>,
    /// Sorted so timeout scans and re-routes replay identically.
    pending: BTreeMap<u64, PendingMsg>,
    next_key: u64,
    msgs_per_tick: u64,
    gen_tick: SimDuration,
    gen_until_us: u64,
    check_until_us: u64,
    ack_timeout_us: u64,
    stats: FleetHubStats,
}

impl FleetClientHub {
    fn new(params: &FleetParams, services: Vec<String>) -> FleetClientHub {
        let n = params.fleet.instances;
        let gen_until_us = params.duration.as_micros() as u64;
        let ack_timeout_us = params.fleet.ack_timeout.as_micros() as u64;
        // Offered rate: `clients` think for `think_time`, then send one
        // message each — the aggregate open-loop approximation that
        // lets one process stand in for 100k..1M simulated clients.
        let rate_per_s = params.clients as f64 / params.think_time.as_secs_f64();
        let msgs_per_tick =
            (rate_per_s * params.gen_tick.as_secs_f64()).round().max(1.0) as u64;
        FleetClientHub {
            services,
            view: params.fleet.ring(),
            conns: vec![None; n],
            established: vec![false; n],
            dead: vec![false; n],
            conn_to_instance: HashMap::new(),
            wait_q: vec![Vec::new(); n],
            pending: BTreeMap::new(),
            next_key: 0,
            msgs_per_tick,
            gen_tick: to_sim(params.gen_tick),
            gen_until_us,
            check_until_us: gen_until_us + 3 * ack_timeout_us,
            ack_timeout_us,
            stats: FleetHubStats::default(),
        }
    }

    /// A handle to the live counters.
    pub fn stats(&self) -> FleetHubStats {
        self.stats.clone()
    }

    /// The ring-routing step: every fleet enqueue must derive its
    /// target instance here (`shard-route-before-enqueue`).
    fn shard_route(&self, svc: &str) -> Option<u32> {
        self.view.owner_of(svc).map(|id| id.0)
    }

    /// The enqueue sink: sends (or queues until the connection is up)
    /// one deposit toward `instance`. Only reachable via
    /// [`Self::shard_route`] deciding `instance`.
    fn enqueue_fleet(&mut self, ctx: &mut Ctx<'_>, instance: u32, svc: usize, body: &str) {
        let req = Request::soap_post(
            &format!("{}:{FLEET_PORT}", instance_host(instance)),
            &format!("/fleet/{}", self.services[svc]),
            "text/xml",
            body.as_bytes().to_vec(),
        );
        let payload = request_payload(&req);
        let i = instance as usize;
        match self.conns[i] {
            Some(conn) if self.established[i] => {
                let _ = ctx.send(conn, payload);
            }
            _ => self.wait_q[i].push(payload),
        }
    }

    fn generate(&mut self, ctx: &mut Ctx<'_>) {
        let now_us = ctx.now().as_micros();
        for _ in 0..self.msgs_per_tick {
            let key = self.next_key;
            self.next_key += 1;
            self.stats.inner.borrow_mut().generated += 1;
            let svc = (key % self.services.len() as u64) as usize;
            let body = format!("<m k=\"{key}\" pad=\"{:0>64}\"/>", key);
            let Some(instance) = self.shard_route(&self.services[svc]) else {
                self.stats.inner.borrow_mut().unroutable += 1;
                continue;
            };
            self.enqueue_fleet(ctx, instance, svc, &body);
            self.pending.insert(
                key,
                PendingMsg {
                    svc,
                    instance,
                    sent_at_us: now_us,
                    body,
                },
            );
        }
        if now_us + self.gen_tick.0 <= self.gen_until_us {
            ctx.set_timer(self.gen_tick, TOKEN_GEN);
        }
    }

    /// Ack-timeout failure detection: any instance sitting on an
    /// overdue ack is declared dead, dropped from this hub's ring
    /// view, and everything pending on it re-routes.
    fn check_timeouts(&mut self, ctx: &mut Ctx<'_>) {
        let now_us = ctx.now().as_micros();
        let mut newly_dead: BTreeSet<u32> = BTreeSet::new();
        for p in self.pending.values() {
            if !self.dead[p.instance as usize]
                && now_us.saturating_sub(p.sent_at_us) > self.ack_timeout_us
            {
                newly_dead.insert(p.instance);
            }
        }
        for &i in &newly_dead {
            self.dead[i as usize] = true;
            self.view.remove_instance(InstanceId(i));
            self.stats.inner.borrow_mut().detected_dead.push(i);
        }
        if !newly_dead.is_empty() {
            let stranded: Vec<u64> = self
                .pending
                .iter()
                .filter(|(_, p)| newly_dead.contains(&p.instance))
                .map(|(k, _)| *k)
                .collect();
            for key in stranded {
                let (svc, body) = {
                    let p = self.pending.get(&key).expect("collected above");
                    (p.svc, p.body.clone())
                };
                let Some(instance) = self.shard_route(&self.services[svc]) else {
                    self.stats.inner.borrow_mut().unroutable += 1;
                    self.pending.remove(&key);
                    continue;
                };
                self.enqueue_fleet(ctx, instance, svc, &body);
                self.stats.inner.borrow_mut().resent += 1;
                let p = self.pending.get_mut(&key).expect("collected above");
                p.instance = instance;
                p.sent_at_us = now_us;
            }
        }
        if now_us <= self.check_until_us {
            ctx.set_timer(SimDuration(self.ack_timeout_us / 8), TOKEN_CHECK);
        }
    }

    fn on_response(&mut self, bytes: &Payload) {
        let text = String::from_utf8_lossy(bytes);
        let Some(key) = body_key(&text) else { return };
        if text.starts_with("HTTP/1.1 202") {
            if self.pending.remove(&key).is_some() {
                self.stats.inner.borrow_mut().acked.insert(key);
            }
        } else if text.starts_with("HTTP/1.1 503") && self.pending.remove(&key).is_some() {
            self.stats.inner.borrow_mut().shed += 1;
        }
        // Other statuses: leave pending; the timeout path owns it.
    }
}

impl Process for FleetClientHub {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => {
                for i in 0..self.conns.len() {
                    let conn = ctx.connect(
                        &instance_host(i as u32),
                        FLEET_PORT,
                        SimDuration::from_secs(5),
                    );
                    self.conns[i] = Some(conn);
                    self.conn_to_instance.insert(conn, i);
                }
                ctx.set_timer(self.gen_tick, TOKEN_GEN);
                ctx.set_timer(SimDuration(self.ack_timeout_us / 8), TOKEN_CHECK);
            }
            ProcEvent::ConnEstablished { conn } => {
                if let Some(&i) = self.conn_to_instance.get(&conn) {
                    self.established[i] = true;
                    for payload in std::mem::take(&mut self.wait_q[i]) {
                        let _ = ctx.send(conn, payload);
                    }
                }
            }
            ProcEvent::ConnClosed { conn } | ProcEvent::ConnRefused { conn, .. } => {
                if let Some(&i) = self.conn_to_instance.get(&conn) {
                    self.established[i] = false;
                }
            }
            ProcEvent::Message { bytes, .. } => self.on_response(&bytes),
            ProcEvent::Timer { token } => match token {
                TOKEN_GEN => self.generate(ctx),
                TOKEN_CHECK => self.check_timeouts(ctx),
                _ => {}
            },
            ProcEvent::ConnAccepted { .. } => {}
        }
    }
}

// ---------------------------------------------------------------------
// Sink
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct SinkInner {
    delivered: HashSet<u64>,
    delivered_at_us: Vec<u64>,
    duplicates: u64,
}

/// Live counters of a [`FleetSink`].
#[derive(Debug, Clone, Default)]
pub struct FleetSinkStats {
    inner: Rc<RefCell<SinkInner>>,
}

impl FleetSinkStats {
    /// Distinct messages delivered.
    pub fn delivered(&self) -> u64 {
        self.inner.borrow().delivered.len() as u64
    }
    /// Messages delivered more than once (must stay 0).
    pub fn duplicates(&self) -> u64 {
        self.inner.borrow().duplicates
    }
    fn contains(&self, key: u64) -> bool {
        self.inner.borrow().delivered.contains(&key)
    }
    fn last_delivery_us(&self) -> Option<u64> {
        self.inner.borrow().delivered_at_us.last().copied()
    }
}

/// Where delivered messages land: counts distinct keys and flags any
/// duplicate delivery.
pub struct FleetSink {
    stats: FleetSinkStats,
}

impl FleetSink {
    fn new() -> FleetSink {
        FleetSink {
            stats: FleetSinkStats::default(),
        }
    }

    /// A handle to the live counters.
    pub fn stats(&self) -> FleetSinkStats {
        self.stats.clone()
    }
}

impl Process for FleetSink {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        if let ProcEvent::Message { bytes, .. } = event {
            let text = String::from_utf8_lossy(&bytes);
            if let Some(key) = body_key(&text) {
                let mut inner = self.stats.inner.borrow_mut();
                if inner.delivered.insert(key) {
                    let now = ctx.now().as_micros();
                    inner.delivered_at_us.push(now);
                } else {
                    inner.duplicates += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

/// Everything one fleet run needs: the tier config plus workload and
/// cost-model knobs.
#[derive(Debug, Clone)]
pub struct FleetParams {
    /// The dispatcher-tier configuration (instances, ring seed, ...).
    pub fleet: FleetConfig,
    /// Logical services sharded across the ring.
    pub services: usize,
    /// Simulated client population (aggregate open-loop rate:
    /// `clients / think_time` messages per second).
    pub clients: u64,
    /// Per-client think time between messages.
    pub think_time: Duration,
    /// How long the generator offers load (virtual time).
    pub duration: Duration,
    /// Generator tick (messages are batched per tick).
    pub gen_tick: Duration,
    /// Messages an instance coalesces per drain pass.
    pub drain_batch: usize,
    /// CPU cost of dispatching one message.
    pub dispatch_cost: Duration,
    /// Virtual disk cost model for the durable store.
    pub disk: DiskProfile,
    /// Kill this instance at this virtual time, if set.
    pub kill: Option<(u32, Duration)>,
    /// Services registered at the leader mid-run (exercises live
    /// replication), as a fraction of `duration`.
    pub late_services: usize,
    /// Simulation seed (network jitter determinism).
    pub seed: u64,
}

impl Default for FleetParams {
    fn default() -> Self {
        FleetParams {
            fleet: FleetConfig::default(),
            services: 16,
            clients: 10_000,
            think_time: Duration::from_secs(60),
            duration: Duration::from_secs(30),
            gen_tick: Duration::from_millis(20),
            drain_batch: 16,
            dispatch_cost: Duration::from_micros(3_300),
            disk: DiskProfile::default(),
            kill: None,
            late_services: 0,
            seed: 0xF1EE7,
        }
    }
}

/// The ownership-handoff half of a [`FleetOutcome`].
#[derive(Debug, Clone)]
pub struct HandoffReport {
    /// Acknowledged messages the successor replayed out of the dead
    /// instance's store.
    pub recovered: u64,
    /// Announce → recovery-complete span in virtual µs.
    pub rebalance_latency_us: u64,
}

/// What one fleet run produced.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Messages the generator offered.
    pub generated: u64,
    /// Messages acknowledged durable (`202`).
    pub acked: u64,
    /// Messages shed under overload (`503`) — bounded-latency load
    /// shedding, not loss.
    pub shed: u64,
    /// Distinct messages delivered to the sink.
    pub delivered: u64,
    /// Messages delivered more than once. The no-duplicate invariant
    /// says this stays 0 even across a kill.
    pub duplicates: u64,
    /// Acknowledged messages that never reached the sink. The
    /// zero-acked-loss invariant says this stays 0 even across a kill.
    pub acked_lost: u64,
    /// Messages the hub re-routed after detecting a death.
    pub resent: u64,
    /// Instances the hub declared dead.
    pub detected_dead: Vec<u32>,
    /// Handoff ledger summary for the killed instance, if any.
    pub handoff: Option<HandoffReport>,
    /// Virtual time when the last message reached the sink, in µs.
    pub last_delivery_us: u64,
    /// Telemetry snapshot at the end of the run.
    pub snapshot: wsd_telemetry::Snapshot,
}

/// Stops a fleet instance's process and performs the membership half
/// of failure handling: drop it from the authoritative ring, pick the
/// next live instance as successor, and announce the handoff.
pub fn kill_fleet_instance(
    sim: &mut Simulation,
    shared: &FleetShared,
    procs: &[ProcId],
    victim: u32,
    registry: &wsd_telemetry::Registry,
) {
    sim.stop_process(procs[victim as usize]);
    let now_us = sim.now().as_micros();
    let mut inner = shared.inner.borrow_mut();
    inner.alive[victim as usize] = false;
    let ranges = inner.ring.remove_instance(InstanceId(victim));
    let n = inner.alive.len() as u32;
    let successor = (1..n)
        .map(|d| (victim + d) % n)
        .find(|&i| inner.alive[i as usize])
        .map(InstanceId)
        .expect("killing the last live instance leaves nobody to hand off to");
    inner
        .handoffs
        .announce(InstanceId(victim), successor, ranges, now_us);
    // The dead instance can no longer update its own gauges; the
    // monitor (this harness) zeroes its ownership.
    registry
        .scope("fleet")
        .child(&format!("i{victim}"))
        .gauge("owned_ranges")
        .set(0);
}

/// Builds the full fleet topology, offers the configured load, applies
/// the optional kill, and runs until the tail drains.
pub fn run_fleet(params: &FleetParams) -> FleetOutcome {
    let registry = wsd_telemetry::Registry::new();
    let fleet_scope = registry.scope("fleet");
    let store_cfg = StoreConfig {
        wal: WalConfig {
            sync: SyncMode::Always,
            ..WalConfig::default()
        },
        ..StoreConfig::default()
    };
    let shared = FleetShared::new(&params.fleet, store_cfg);

    // Instance 0's registry is the replication leader; services map to
    // the sink so successors can enumerate mailboxes after a handoff.
    let leader = Arc::new(RegistryLeader::new(
        Arc::new(Registry::new()),
        params.fleet.repl_backlog,
    ));
    let services: Vec<String> = (0..params.services).map(|i| format!("svc-{i}")).collect();
    for svc in &services {
        leader.register(
            svc,
            Url::parse(&format!("http://fleet-sink:{SINK_PORT}/sink/{svc}")).expect("static url"),
        );
    }

    let mut sim = Simulation::new(params.seed);
    let sink_host = sim.add_host(HostConfig::named("fleet-sink"));
    let sink = FleetSink::new();
    let sink_stats = sink.stats();
    let sink_proc = sim.spawn(sink_host, Box::new(sink));
    sim.listen(sink_proc, SINK_PORT);

    let mut procs = Vec::new();
    for i in 0..params.fleet.instances as u32 {
        let host = sim.add_host(HostConfig::named(instance_host(i)));
        let scope = fleet_scope.child(&format!("i{i}"));
        let instance = SimFleetInstance::new(
            InstanceId(i),
            shared.clone(),
            Arc::clone(&leader),
            params,
            &scope,
            &fleet_scope,
        );
        let proc = sim.spawn(host, Box::new(instance));
        sim.listen(proc, FLEET_PORT);
        procs.push(proc);
    }

    let hub_host = sim.add_host(HostConfig::named("fleet-hub"));
    let hub = FleetClientHub::new(params, services.clone());
    let hub_stats = hub.stats();
    sim.spawn(hub_host, Box::new(hub));

    let end = SimTime::ZERO
        + to_sim(params.duration)
        + SimDuration(3 * params.fleet.ack_timeout.as_micros() as u64)
        + SimDuration::from_secs(15);

    // Mid-run registrations exercise the live replication stream.
    if params.late_services > 0 {
        sim.run_until(SimTime::ZERO + SimDuration(to_sim(params.duration).0 / 2));
        for i in 0..params.late_services {
            leader.register(
                &format!("late-{i}"),
                Url::parse(&format!("http://fleet-sink:{SINK_PORT}/sink/late-{i}"))
                    .expect("static url"),
            );
        }
    }
    if let Some((victim, at)) = params.kill {
        sim.run_until(SimTime::ZERO + to_sim(at));
        kill_fleet_instance(&mut sim, &shared, &procs, victim, &registry);
    }
    sim.run_until(end);

    let handoff = shared
        .inner
        .borrow()
        .handoffs
        .entries()
        .iter()
        .find_map(|h| {
            h.rebalance_latency_us().map(|lat| HandoffReport {
                recovered: h.recovered,
                rebalance_latency_us: lat,
            })
        });
    let acked_lost = {
        let inner = hub_stats.inner.borrow();
        inner
            .acked
            .iter()
            .filter(|k| !sink_stats.contains(**k))
            .count() as u64
    };
    FleetOutcome {
        generated: hub_stats.generated(),
        acked: hub_stats.acked(),
        shed: hub_stats.shed(),
        delivered: sink_stats.delivered(),
        duplicates: sink_stats.duplicates(),
        acked_lost,
        resent: hub_stats.resent(),
        detected_dead: hub_stats.detected_dead(),
        handoff,
        last_delivery_us: sink_stats.last_delivery_us().unwrap_or(0),
        snapshot: registry.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params(instances: usize, clients: u64) -> FleetParams {
        FleetParams {
            fleet: FleetConfig {
                instances,
                ..FleetConfig::default()
            },
            clients,
            services: 8,
            duration: Duration::from_secs(10),
            ..FleetParams::default()
        }
    }

    #[test]
    fn single_instance_delivers_everything_under_light_load() {
        // 600 clients ≈ 10 msg/s — far under one instance's ~120/s.
        let out = run_fleet(&quick_params(1, 600));
        assert!(out.generated > 50, "generated {}", out.generated);
        assert_eq!(out.shed, 0, "no shedding under light load");
        assert_eq!(out.acked, out.generated);
        assert_eq!(out.delivered, out.generated);
        assert_eq!(out.duplicates, 0);
        assert_eq!(out.acked_lost, 0);
        assert!(out.detected_dead.is_empty());
    }

    #[test]
    fn overload_sheds_instead_of_stalling() {
        // ~333 msg/s against one ~120 msg/s instance: admission
        // control sheds the excess and acks stay within the timeout
        // (no false-positive death detection).
        let out = run_fleet(&quick_params(1, 20_000));
        assert!(out.shed > 0, "overload must shed");
        assert!(out.detected_dead.is_empty(), "shedding is not death");
        assert_eq!(out.acked_lost, 0);
        assert_eq!(out.duplicates, 0);
        assert_eq!(out.acked, out.delivered);
    }

    #[test]
    fn two_instances_outdeliver_one_under_overload() {
        let one = run_fleet(&quick_params(1, 40_000));
        let two = run_fleet(&quick_params(2, 40_000));
        assert!(
            two.delivered as f64 > one.delivered as f64 * 1.6,
            "2 instances: {} vs 1 instance: {}",
            two.delivered,
            one.delivered
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_fleet(&quick_params(2, 20_000));
        let b = run_fleet(&quick_params(2, 20_000));
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.acked, b.acked);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.last_delivery_us, b.last_delivery_us);
    }

    // Satellite 3: seeded failover — no acked loss, no duplicate
    // delivery, gauges return to 0.
    #[test]
    fn killing_an_instance_loses_nothing_acked() {
        let mut params = quick_params(3, 48_000);
        params.duration = Duration::from_secs(12);
        params.kill = Some((1, Duration::from_secs(6)));
        // Make delivery CPU-bound (drain ≈ 83 msg/s < per-shard offered
        // load) so every instance carries an acked-but-undrained
        // backlog — the kill must then strand mail that only ownership
        // handoff can recover.
        params.dispatch_cost = Duration::from_millis(12);
        let out = run_fleet(&params);

        assert_eq!(out.detected_dead, vec![1], "hub must detect the kill");
        assert_eq!(out.acked_lost, 0, "acked messages must survive the kill");
        assert_eq!(out.duplicates, 0, "recovery must not double-deliver");
        let handoff = out.handoff.expect("handoff must complete");
        assert!(handoff.recovered > 0, "victim had acked-undrained mail");
        assert!(
            handoff.rebalance_latency_us < 2_000_000,
            "rebalance took {} µs",
            handoff.rebalance_latency_us
        );
        assert!(out.resent > 0, "unacked tail must re-route");

        // Gauges return to rest: the dead instance owns nothing, no
        // handoff is in flight, and live followers caught up.
        use wsd_telemetry::MetricValue;
        let gauge = |name: &str| match out.snapshot.get(name) {
            Some(MetricValue::Gauge { value, .. }) => *value,
            other => panic!("{name}: {other:?}"),
        };
        assert_eq!(gauge("fleet.i1.owned_ranges"), 0);
        assert_eq!(gauge("fleet.handoffs_in_flight"), 0);
        assert_eq!(gauge("fleet.i0.repl_lag"), 0);
        assert_eq!(gauge("fleet.i2.repl_lag"), 0);
        assert_eq!(gauge("fleet.i0.backlog_depth"), 0);
        assert_eq!(gauge("fleet.i2.backlog_depth"), 0);
    }

    #[test]
    fn late_registrations_replicate_to_followers() {
        let mut params = quick_params(2, 2_000);
        params.late_services = 3;
        let out = run_fleet(&params);
        use wsd_telemetry::MetricValue;
        for i in 0..2 {
            match out.snapshot.get(&format!("fleet.i{i}.repl_lag")) {
                Some(MetricValue::Gauge { value, .. }) => assert_eq!(*value, 0, "i{i} lag"),
                other => panic!("missing lag gauge: {other:?}"),
            }
            match out.snapshot.get(&format!("fleet.i{i}.repl_offset")) {
                // 8 initial services + 3 late ones = offset 11.
                Some(MetricValue::Gauge { value, .. }) => assert_eq!(*value, 11, "i{i} offset"),
                other => panic!("missing offset gauge: {other:?}"),
            }
        }
    }
}
