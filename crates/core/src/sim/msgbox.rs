//! The simulated WS-MsgBox service, in both designs the paper discusses:
//! the shipped thread-per-message design whose `OutOfMemoryError` §4.3.2
//! reports above ~50 clients, and the pooled redesign.
//!
//! The thread-explosion dynamic is modeled explicitly: every in-flight
//! piece of work holds a "native thread" whose lifetime grows with the
//! number of live threads (context-switch/GC thrash), so a burst beyond
//! the service rate snowballs. Crossing the thread budget is the
//! simulated JVM OOM: the process drops every connection and goes silent,
//! exactly as a crashed JVM would.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use wsd_http::{parse_request_bytes, Response, Status};
use wsd_netsim::{ConnId, Ctx, Payload, ProcEvent, Process, SimDuration};
use wsd_soap::Envelope;
use wsd_telemetry::{Counter, Gauge, Scope};

use crate::config::{MsgBoxConfig, MsgBoxStrategy};
use crate::msgbox::{handle_soap, MsgBoxStore};
use crate::sim::{response_payload, CpuQueue};

#[derive(Debug, Default)]
struct StatsInner {
    deposits: u64,
    rpc_calls: u64,
    messages_fetched: u64,
    oom: bool,
    live_threads: usize,
    peak_threads: usize,
    dropped_after_crash: u64,
}

/// Live counters of a [`SimMsgBox`].
#[derive(Debug, Clone, Default)]
pub struct SimMsgBoxStats {
    inner: Rc<RefCell<StatsInner>>,
}

impl SimMsgBoxStats {
    /// One-way deposits accepted.
    pub fn deposits(&self) -> u64 {
        self.inner.borrow().deposits
    }
    /// RPC operations served (create/fetch/destroy).
    pub fn rpc_calls(&self) -> u64 {
        self.inner.borrow().rpc_calls
    }
    /// Stored messages handed to clients by `fetch`.
    pub fn messages_fetched(&self) -> u64 {
        self.inner.borrow().messages_fetched
    }
    /// Whether the simulated `OutOfMemoryError` fired.
    pub fn oom(&self) -> bool {
        self.inner.borrow().oom
    }
    /// High-water mark of concurrently live threads.
    pub fn peak_threads(&self) -> usize {
        self.inner.borrow().peak_threads
    }
    /// Messages ignored after the crash.
    pub fn dropped_after_crash(&self) -> u64 {
        self.inner.borrow().dropped_after_crash
    }
}

/// Telemetry instruments for one [`SimMsgBox`]. The `threads` gauge and
/// the budget counters (`thread_spawns`, `budget_exhausted`) expose the
/// thread-accounting dynamic that drives the paper's §4.3.2 OOM.
struct BoxTelemetry {
    deposits: Counter,
    rpc_calls: Counter,
    fetched: Counter,
    thread_spawns: Counter,
    budget_exhausted: Counter,
    dropped_after_crash: Counter,
    backlog_depth: Gauge,
    threads: Gauge,
}

impl BoxTelemetry {
    fn new(scope: &Scope) -> Self {
        BoxTelemetry {
            deposits: scope.counter("deposits"),
            rpc_calls: scope.counter("rpc_calls"),
            fetched: scope.counter("fetched"),
            thread_spawns: scope.counter("thread_spawns"),
            budget_exhausted: scope.counter("budget_exhausted"),
            dropped_after_crash: scope.counter("dropped_after_crash"),
            backlog_depth: scope.gauge("backlog_depth"),
            threads: scope.gauge("threads"),
        }
    }
}

/// Virtual disk cost model: the durable backend's WAL counter deltas
/// (fsyncs, bytes appended) become simulated service latency, so the
/// price of durability is visible on the simulated clock. The defaults
/// model a 2004-era spinning disk: ~8 ms per fsync, ~30 MB/s streaming.
/// The memory backend never touches the WAL, so its deltas — and added
/// latency — are always zero.
#[derive(Debug, Clone, Copy)]
pub struct DiskProfile {
    /// Cost of one fsync, in µs.
    pub fsync_us: u64,
    /// Sequential append cost per KiB, in µs.
    pub us_per_kib: u64,
}

impl Default for DiskProfile {
    fn default() -> Self {
        DiskProfile {
            fsync_us: 8_000,
            us_per_kib: 33,
        }
    }
}

/// The WS-MsgBox service as a simulation actor.
pub struct SimMsgBox {
    store: MsgBoxStore,
    config: MsgBoxConfig,
    seed: u64,
    /// CPU cost of one operation.
    service_time: SimDuration,
    /// Thread-lifetime growth per live thread (thrash factor) for the
    /// thread-per-message strategy.
    thrash_factor: f64,
    disk: DiskProfile,
    stats: SimMsgBoxStats,
    tele: BoxTelemetry,
    cpu: CpuQueue,
    next_token: u64,
    /// Work finishing later: token → (conn to answer on, response).
    pending: HashMap<u64, (ConnId, Payload)>,
    /// Pooled strategy: work waiting for a worker.
    backlog: std::collections::VecDeque<(ConnId, Payload)>,
    busy_workers: usize,
    crashed: bool,
    conns: HashSet<ConnId>,
}

impl SimMsgBox {
    /// Creates the service with the given strategy and budget. With a
    /// durable backend, use `dir: None` (in-memory "disk") and
    /// `SyncMode::Always` so the simulation stays deterministic.
    pub fn new(config: MsgBoxConfig, service_time: SimDuration, seed: u64) -> Self {
        SimMsgBox {
            store: MsgBoxStore::new(config.clone(), seed),
            config,
            seed,
            service_time,
            thrash_factor: 0.02,
            disk: DiskProfile::default(),
            stats: SimMsgBoxStats::default(),
            tele: BoxTelemetry::new(&Scope::noop()),
            cpu: CpuQueue::default(),
            next_token: 0,
            pending: HashMap::new(),
            backlog: std::collections::VecDeque::new(),
            busy_workers: 0,
            crashed: false,
            conns: HashSet::new(),
        }
    }

    /// Overrides the thrash factor. Returns `self` for chaining.
    pub fn with_thrash_factor(mut self, f: f64) -> Self {
        self.thrash_factor = f;
        self
    }

    /// Overrides the virtual disk cost model. Returns `self` for
    /// chaining.
    pub fn with_disk_profile(mut self, disk: DiskProfile) -> Self {
        self.disk = disk;
        self
    }

    /// Registers telemetry instruments under `scope`. Returns `self`
    /// for chaining. Call before any traffic: the store is rebuilt so
    /// the durable backend's WAL metrics land under `scope` too.
    pub fn with_telemetry(mut self, scope: &Scope) -> Self {
        self.tele = BoxTelemetry::new(scope);
        self.store =
            MsgBoxStore::with_telemetry(self.config.clone(), self.seed, &scope.child("store"));
        self
    }

    /// A handle to the live counters.
    pub fn stats(&self) -> SimMsgBoxStats {
        self.stats.clone()
    }

    /// The backing store (e.g. to pre-create mailboxes for a workload,
    /// or to read resident/spilled byte counters).
    pub fn store(&self) -> &MsgBoxStore {
        &self.store
    }

    fn token(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }

    /// Computes the response for one request, immediately (storage work
    /// is cheap; what costs is the thread/CPU accounting around it).
    fn respond_to(&mut self, raw: &Payload, now_us: u64) -> Payload {
        let Ok(req) = parse_request_bytes(raw) else {
            return response_payload(&Response::empty(Status::BAD_REQUEST));
        };
        if let Some(box_id) = req.target.strip_prefix("/deposit/") {
            // One-way deposit from a dispatcher or service.
            let body = req.body_utf8().to_string();
            return match self.store.deposit(box_id, body, now_us) {
                Ok(()) => {
                    self.stats.inner.borrow_mut().deposits += 1;
                    self.tele.deposits.inc();
                    response_payload(&Response::empty(Status::ACCEPTED))
                }
                Err(_) => response_payload(&Response::empty(Status::NOT_FOUND)),
            };
        }
        // RPC operation.
        let Ok(env) = Envelope::parse(&req.body_utf8()) else {
            return response_payload(&Response::empty(Status::BAD_REQUEST));
        };
        let resp_env = handle_soap(&self.store, &env, now_us);
        {
            let mut s = self.stats.inner.borrow_mut();
            s.rpc_calls += 1;
            self.tele.rpc_calls.inc();
            if let Some(parts) = resp_env.payload() {
                if let Some(op) = parts.first() {
                    if op.name.local == "fetchResponse" {
                        let n = op.find_children(None, "message").count() as u64;
                        s.messages_fetched += n;
                        self.tele.fetched.add(n);
                    }
                }
            }
        }
        let resp = Response::new(
            Status::OK,
            env.version.content_type(),
            resp_env.to_xml().into_bytes(),
        );
        response_payload(&resp)
    }

    fn crash(&mut self, ctx: &mut Ctx<'_>) {
        self.crashed = true;
        self.stats.inner.borrow_mut().oom = true;
        self.tele.budget_exhausted.inc();
        self.tele.threads.set(0);
        self.tele.backlog_depth.set(0);
        // A dying JVM drops its sockets.
        for conn in self.conns.drain() {
            ctx.close(conn);
        }
        self.pending.clear();
        self.backlog.clear();
    }

    /// Runs [`respond_to`](Self::respond_to) and converts any WAL work
    /// it caused into virtual disk latency (0 for the memory backend).
    fn respond_with_disk_cost(&mut self, bytes: &Payload, now_us: u64) -> (Payload, SimDuration) {
        let fsyncs = self.store.wal_fsyncs();
        let appended = self.store.wal_bytes_appended();
        let response = self.respond_to(bytes, now_us);
        let disk_us = (self.store.wal_fsyncs() - fsyncs) * self.disk.fsync_us
            + (self.store.wal_bytes_appended() - appended) * self.disk.us_per_kib / 1024;
        (response, SimDuration(disk_us))
    }

    /// The §4.3.2 memory wall for stored bodies: once the store keeps
    /// more bytes resident than the heap budget, the JVM dies. The
    /// durable backend spills to disk and stays under its memory
    /// budget, so it never trips this.
    fn heap_exhausted(&self) -> bool {
        self.store.resident_bytes() > self.config.heap_budget_bytes as u64
    }

    fn on_request(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, bytes: Payload) {
        match self.config.strategy {
            MsgBoxStrategy::ThreadPerMessage => {
                // Spawn a "thread" for this message. Lifetime grows with
                // the number already live (the runaway mechanism).
                let live = {
                    let mut s = self.stats.inner.borrow_mut();
                    s.live_threads += 1;
                    s.peak_threads = s.peak_threads.max(s.live_threads);
                    s.live_threads
                };
                self.tele.thread_spawns.inc();
                self.tele.threads.set(live as i64);
                if live > self.config.thread_budget {
                    self.crash(ctx);
                    return;
                }
                let factor = 1.0 + self.thrash_factor * live as f64;
                let lifetime = SimDuration((self.service_time.0 as f64 * factor) as u64);
                let (response, disk) =
                    self.respond_with_disk_cost(&bytes, ctx.now().as_micros());
                if self.heap_exhausted() {
                    self.crash(ctx);
                    return;
                }
                let token = self.token();
                self.pending.insert(token, (conn, response));
                ctx.set_timer(SimDuration(lifetime.0 + disk.0), token);
            }
            MsgBoxStrategy::Pooled { workers } => {
                if self.busy_workers < workers {
                    self.busy_workers += 1;
                    {
                        let mut s = self.stats.inner.borrow_mut();
                        s.live_threads = self.busy_workers;
                        s.peak_threads = s.peak_threads.max(self.busy_workers);
                    }
                    self.tele.thread_spawns.inc();
                    self.tele.threads.set(self.busy_workers as i64);
                    let (response, disk) =
                        self.respond_with_disk_cost(&bytes, ctx.now().as_micros());
                    if self.heap_exhausted() {
                        self.crash(ctx);
                        return;
                    }
                    let done_at = self
                        .cpu
                        .reserve(ctx.now(), SimDuration(self.service_time.0 + disk.0));
                    let token = self.token();
                    self.pending.insert(token, (conn, response));
                    ctx.set_timer(done_at.since(ctx.now()), token);
                } else {
                    self.backlog.push_back((conn, bytes));
                    self.tele.backlog_depth.set(self.backlog.len() as i64);
                }
            }
        }
    }
}

impl Process for SimMsgBox {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        if self.crashed {
            if let ProcEvent::Message { .. } = event {
                self.stats.inner.borrow_mut().dropped_after_crash += 1;
                self.tele.dropped_after_crash.inc();
            }
            return;
        }
        match event {
            ProcEvent::Start => {}
            ProcEvent::ConnAccepted { conn, .. } => {
                self.conns.insert(conn);
            }
            ProcEvent::ConnClosed { conn } => {
                self.conns.remove(&conn);
            }
            ProcEvent::Message { conn, bytes } => self.on_request(ctx, conn, bytes),
            ProcEvent::Timer { token } => {
                if let Some((conn, response)) = self.pending.remove(&token) {
                    let _ = ctx.send(conn, response);
                    match self.config.strategy {
                        MsgBoxStrategy::ThreadPerMessage => {
                            let mut s = self.stats.inner.borrow_mut();
                            s.live_threads -= 1;
                            self.tele.threads.set(s.live_threads as i64);
                        }
                        MsgBoxStrategy::Pooled { .. } => {
                            self.busy_workers = self.busy_workers.saturating_sub(1);
                            self.stats.inner.borrow_mut().live_threads = self.busy_workers;
                            self.tele.threads.set(self.busy_workers as i64);
                            if let Some((conn, bytes)) = self.backlog.pop_front() {
                                self.tele.backlog_depth.set(self.backlog.len() as i64);
                                self.on_request(ctx, conn, bytes);
                            }
                        }
                    }
                }
            }
            ProcEvent::ConnEstablished { .. } | ProcEvent::ConnRefused { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsd_http::Request;
    use crate::msgbox::ops;
    
    use wsd_netsim::{HostConfig, Simulation};
    use wsd_soap::SoapVersion;

    /// Drives an arbitrary sequence of requests, one after another.
    struct Scripted {
        steps: Vec<Payload>,
        at: usize,
        responses: Rc<RefCell<Vec<String>>>,
    }

    impl Process for Scripted {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start => {
                    ctx.connect("msgbox", 8082, SimDuration::from_secs(5));
                }
                ProcEvent::ConnEstablished { conn } => {
                    if let Some(p) = self.steps.get(self.at) {
                        ctx.send(conn, p.clone()).unwrap();
                    }
                }
                ProcEvent::Message { conn, bytes } => {
                    self.responses
                        .borrow_mut()
                        .push(String::from_utf8_lossy(&bytes).to_string());
                    self.at += 1;
                    if let Some(p) = self.steps.get(self.at) {
                        let _ = ctx.send(conn, p.clone());
                    }
                }
                _ => {}
            }
        }
    }

    fn rpc_payload(env: &Envelope) -> Payload {
        let req = Request::soap_post(
            "msgbox:8082",
            "/msgbox",
            SoapVersion::V11.content_type(),
            env.to_xml().into_bytes(),
        );
        crate::sim::request_payload(&req)
    }

    fn deposit_payload(box_id: &str, body: &str) -> Payload {
        let req = Request::soap_post(
            "msgbox:8082",
            &format!("/deposit/{box_id}"),
            SoapVersion::V11.content_type(),
            body.as_bytes().to_vec(),
        );
        crate::sim::request_payload(&req)
    }

    fn pooled_config() -> MsgBoxConfig {
        MsgBoxConfig {
            strategy: MsgBoxStrategy::Pooled { workers: 4 },
            ..MsgBoxConfig::default()
        }
    }

    #[test]
    fn create_via_rpc_then_deposit_then_fetch() {
        let mut sim = Simulation::new(1);
        let mb_host = sim.add_host(HostConfig::named("msgbox"));
        let client_host = sim.add_host(HostConfig::named("client"));
        let service = SimMsgBox::new(pooled_config(), SimDuration::from_millis(2), 5);
        let stats = service.stats();
        let mp = sim.spawn(mb_host, Box::new(service));
        sim.listen(mp, 8082);

        // Step 1: create. Steps 2-3 are injected after we see the box id,
        // so this test scripts in two phases.
        let responses = Rc::new(RefCell::new(vec![]));
        sim.spawn(
            client_host,
            Box::new(Scripted {
                steps: vec![rpc_payload(&ops::create(SoapVersion::V11))],
                at: 0,
                responses: responses.clone(),
            }),
        );
        sim.run();
        let create_resp = responses.borrow()[0].clone();
        let body = create_resp.split("\r\n\r\n").nth(1).unwrap();
        let (box_id, key) =
            ops::parse_create_response(&Envelope::parse(body).unwrap()).unwrap();

        // Phase 2: deposit then fetch on a fresh client.
        let responses2 = Rc::new(RefCell::new(vec![]));
        let c2 = sim.add_host(HostConfig::named("client2"));
        sim.spawn(
            c2,
            Box::new(Scripted {
                steps: vec![
                    deposit_payload(&box_id, "<stored/>"),
                    rpc_payload(&ops::fetch(SoapVersion::V11, &box_id, &key, 10)),
                ],
                at: 0,
                responses: responses2.clone(),
            }),
        );
        sim.run();
        let got = responses2.borrow();
        assert!(got[0].starts_with("HTTP/1.1 202"), "deposit ack: {}", got[0]);
        assert!(got[1].contains("fetchResponse"), "{}", got[1]);
        assert!(got[1].contains("stored"), "{}", got[1]);
        assert_eq!(stats.deposits(), 1);
        assert_eq!(stats.messages_fetched(), 1);
        assert!(!stats.oom());
    }

    #[test]
    fn deposit_to_unknown_box_is_404() {
        let mut sim = Simulation::new(1);
        let mb_host = sim.add_host(HostConfig::named("msgbox"));
        let client_host = sim.add_host(HostConfig::named("client"));
        let service = SimMsgBox::new(pooled_config(), SimDuration::from_millis(1), 5);
        let mp = sim.spawn(mb_host, Box::new(service));
        sim.listen(mp, 8082);
        let responses = Rc::new(RefCell::new(vec![]));
        sim.spawn(
            client_host,
            Box::new(Scripted {
                steps: vec![deposit_payload("mbox-nope", "<x/>")],
                at: 0,
                responses: responses.clone(),
            }),
        );
        sim.run();
        assert!(responses.borrow()[0].starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn thread_per_message_survives_gentle_load() {
        let mut sim = Simulation::new(1);
        let mb_host = sim.add_host(HostConfig::named("msgbox"));
        let client_host = sim.add_host(HostConfig::named("client"));
        let cfg = MsgBoxConfig {
            strategy: MsgBoxStrategy::ThreadPerMessage,
            thread_budget: 100,
            ..MsgBoxConfig::default()
        };
        let service = SimMsgBox::new(cfg, SimDuration::from_millis(1), 5);
        let stats = service.stats();
        let mp = sim.spawn(mb_host, Box::new(service));
        sim.listen(mp, 8082);
        let responses = Rc::new(RefCell::new(vec![]));
        // Serial requests: one live thread at a time.
        sim.spawn(
            client_host,
            Box::new(Scripted {
                steps: (0..10).map(|_| rpc_payload(&ops::create(SoapVersion::V11))).collect(),
                at: 0,
                responses: responses.clone(),
            }),
        );
        sim.run();
        assert_eq!(responses.borrow().len(), 10);
        assert!(!stats.oom());
        assert!(stats.peak_threads() <= 2);
    }

    #[test]
    fn thread_per_message_explodes_under_burst() {
        // The paper's bug: a burst of concurrent messages spawns a thread
        // each; past the budget, OutOfMemory kills the service.
        let mut sim = Simulation::new(1);
        let mb_host = sim.add_host(HostConfig::named("msgbox"));
        let cfg = MsgBoxConfig {
            strategy: MsgBoxStrategy::ThreadPerMessage,
            thread_budget: 40,
            ..MsgBoxConfig::default()
        };
        let service = SimMsgBox::new(cfg, SimDuration::from_millis(50), 5)
            .with_thrash_factor(0.1);
        let stats = service.stats();
        let mp = sim.spawn(mb_host, Box::new(service));
        sim.listen(mp, 8082);
        // 60 clients all deposit at once.
        for i in 0..60 {
            let ch = sim.add_host(HostConfig::named(format!("c{i}")));
            sim.spawn(
                ch,
                Box::new(Scripted {
                    steps: vec![rpc_payload(&ops::create(SoapVersion::V11))],
                    at: 0,
                    responses: Rc::new(RefCell::new(vec![])),
                }),
            );
        }
        sim.run();
        assert!(stats.oom(), "burst must trigger the OOM bug");
        assert!(stats.peak_threads() > 40);
    }

    #[test]
    fn pooled_strategy_handles_the_same_burst() {
        let mut sim = Simulation::new(1);
        let mb_host = sim.add_host(HostConfig::named("msgbox"));
        let cfg = MsgBoxConfig {
            strategy: MsgBoxStrategy::Pooled { workers: 8 },
            thread_budget: 40,
            ..MsgBoxConfig::default()
        };
        let service = SimMsgBox::new(cfg, SimDuration::from_millis(50), 5);
        let stats = service.stats();
        let mp = sim.spawn(mb_host, Box::new(service));
        sim.listen(mp, 8082);
        let mut resp_handles = vec![];
        for i in 0..60 {
            let ch = sim.add_host(HostConfig::named(format!("c{i}")));
            let responses = Rc::new(RefCell::new(vec![]));
            resp_handles.push(responses.clone());
            sim.spawn(
                ch,
                Box::new(Scripted {
                    steps: vec![rpc_payload(&ops::create(SoapVersion::V11))],
                    at: 0,
                    responses,
                }),
            );
        }
        sim.run();
        assert!(!stats.oom(), "pooled design must not OOM");
        assert!(stats.peak_threads() <= 8);
        // Every client got its answer.
        assert!(resp_handles.iter().all(|r| r.borrow().len() == 1));
    }

    #[test]
    fn memory_backend_hits_the_heap_wall() {
        // Bodies pile up in RAM (nobody fetches); past the heap budget
        // the JVM dies — the §4.3.2 memory wall for stored messages.
        let mut sim = Simulation::new(1);
        let mb_host = sim.add_host(HostConfig::named("msgbox"));
        let cfg = MsgBoxConfig {
            strategy: MsgBoxStrategy::Pooled { workers: 4 },
            heap_budget_bytes: 1024,
            ..MsgBoxConfig::default()
        };
        let service = SimMsgBox::new(cfg, SimDuration::from_millis(1), 5);
        let (box_id, _key) = service.store().create(0);
        let stats = service.stats();
        let mp = sim.spawn(mb_host, Box::new(service));
        sim.listen(mp, 8082);
        let ch = sim.add_host(HostConfig::named("client"));
        let body = "x".repeat(200);
        sim.spawn(
            ch,
            Box::new(Scripted {
                steps: (0..10).map(|_| deposit_payload(&box_id, &body)).collect(),
                at: 0,
                responses: Rc::new(RefCell::new(vec![])),
            }),
        );
        sim.run();
        assert!(stats.oom(), "unbounded mailbox growth must OOM");
        assert!(stats.deposits() < 10, "the fatal deposit is never acked");
    }

    #[test]
    fn durable_backend_spills_past_the_heap_wall() {
        // Same workload, durable backend: bodies spill to the WAL once
        // the store's memory budget fills, resident bytes stay bounded,
        // and the service survives — at a visible disk-latency price.
        let mut sim = Simulation::new(1);
        let mb_host = sim.add_host(HostConfig::named("msgbox"));
        let cfg = MsgBoxConfig {
            strategy: MsgBoxStrategy::Pooled { workers: 4 },
            heap_budget_bytes: 1024,
            backend: crate::config::MailboxBackend::Durable {
                dir: None,
                store: wsd_store::StoreConfig {
                    wal: wsd_store::WalConfig {
                        sync: wsd_store::SyncMode::Always,
                        ..wsd_store::WalConfig::default()
                    },
                    memory_budget_bytes: 512,
                    ..wsd_store::StoreConfig::default()
                },
            },
            ..MsgBoxConfig::default()
        };
        let service = SimMsgBox::new(cfg, SimDuration::from_millis(1), 5);
        let (box_id, _key) = service.store().create(0);
        let stats = service.stats();
        let mp = sim.spawn(mb_host, Box::new(service));
        sim.listen(mp, 8082);
        let ch = sim.add_host(HostConfig::named("client"));
        let responses = Rc::new(RefCell::new(vec![]));
        let body = "x".repeat(200);
        sim.spawn(
            ch,
            Box::new(Scripted {
                steps: (0..10).map(|_| deposit_payload(&box_id, &body)).collect(),
                at: 0,
                responses: responses.clone(),
            }),
        );
        sim.run();
        assert!(!stats.oom(), "durable backend must ride out the burst");
        assert_eq!(stats.deposits(), 10);
        assert!(responses.borrow().iter().all(|r| r.starts_with("HTTP/1.1 202")));
        // Each deposit fsynced: the virtual disk made durability cost
        // simulated time (10 fsyncs ≥ 80 ms on the default profile).
        assert!(sim.now().as_micros() >= 80_000, "at {}", sim.now().as_micros());
    }

    #[test]
    fn telemetry_tracks_threads_and_budget_exhaustion() {
        let reg = wsd_telemetry::Registry::new();
        let mut sim = Simulation::new(1);
        let mb_host = sim.add_host(HostConfig::named("msgbox"));
        let cfg = MsgBoxConfig {
            strategy: MsgBoxStrategy::ThreadPerMessage,
            thread_budget: 40,
            ..MsgBoxConfig::default()
        };
        let service = SimMsgBox::new(cfg, SimDuration::from_millis(50), 5)
            .with_thrash_factor(0.1)
            .with_telemetry(&reg.scope("msgbox"));
        let stats = service.stats();
        let mp = sim.spawn(mb_host, Box::new(service));
        sim.listen(mp, 8082);
        for i in 0..60 {
            let ch = sim.add_host(HostConfig::named(format!("c{i}")));
            sim.spawn(
                ch,
                Box::new(Scripted {
                    steps: vec![rpc_payload(&ops::create(SoapVersion::V11))],
                    at: 0,
                    responses: Rc::new(RefCell::new(vec![])),
                }),
            );
        }
        sim.run();
        assert!(stats.oom());
        let snap = reg.snapshot();
        assert_eq!(snap.counter("msgbox.budget_exhausted"), 1);
        assert!(snap.counter("msgbox.thread_spawns") > 40);
        assert!(snap.gauge_peak("msgbox.threads") > 40);
        assert_eq!(snap.gauge_peak("msgbox.threads") as usize, stats.peak_threads());
    }

    #[test]
    fn crashed_service_goes_silent() {
        let mut sim = Simulation::new(1);
        let mb_host = sim.add_host(HostConfig::named("msgbox"));
        let cfg = MsgBoxConfig {
            strategy: MsgBoxStrategy::ThreadPerMessage,
            thread_budget: 5,
            ..MsgBoxConfig::default()
        };
        let service = SimMsgBox::new(cfg, SimDuration::from_millis(100), 5);
        let stats = service.stats();
        let mp = sim.spawn(mb_host, Box::new(service));
        sim.listen(mp, 8082);
        let mut resp_handles = vec![];
        for i in 0..20 {
            let ch = sim.add_host(HostConfig::named(format!("c{i}")));
            let responses = Rc::new(RefCell::new(vec![]));
            resp_handles.push(responses.clone());
            sim.spawn(
                ch,
                Box::new(Scripted {
                    steps: vec![
                        rpc_payload(&ops::create(SoapVersion::V11)),
                        rpc_payload(&ops::create(SoapVersion::V11)),
                    ],
                    at: 0,
                    responses,
                }),
            );
        }
        sim.run();
        assert!(stats.oom());
        // Some clients never heard back (undeterministic, puzzling
        // errors — the paper's words).
        let unanswered = resp_handles
            .iter()
            .filter(|r| r.borrow().len() < 2)
            .count();
        assert!(unanswered > 0);
    }
}
