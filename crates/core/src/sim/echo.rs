//! The simulated echo Web Service — the paper's test service, in both
//! interaction styles of Table 1.
//!
//! * [`EchoMode::Rpc`]: the response rides the same connection, after the
//!   service's CPU time (which can exceed the client's HTTP timeout —
//!   Table 1's "may not work at all if message reply comes too late").
//! * [`EchoMode::OneWay`]: the response is a fresh one-way message to the
//!   request's `wsa:ReplyTo`. Reply work occupies one of a bounded pool
//!   of worker threads; when the reply endpoint is firewalled, each
//!   attempt blocks a worker for the whole connect timeout — the
//!   mechanism behind Figure 6's slowest curve.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

use wsd_http::{parse_request_bytes, Request, Response, Status};
use wsd_netsim::{ConnId, Ctx, Payload, ProcEvent, Process, SimDuration};
use wsd_soap::{rpc as soap_rpc, Envelope, SoapVersion};
use wsd_wsa::WsaHeaders;

use crate::sim::{response_payload, CpuQueue};
use crate::url::Url;

/// Interaction style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EchoMode {
    /// Request/response on one connection.
    Rpc,
    /// Fire-and-forget requests; replies are new one-way messages.
    OneWay {
        /// Worker threads shared by processing and reply delivery.
        workers: usize,
        /// Connect timeout toward reply endpoints.
        connect_timeout: SimDuration,
    },
}

#[derive(Debug, Default)]
struct EchoStatsInner {
    accepted: u64,
    processed: u64,
    responses_sent: u64,
    replies_blocked: u64,
    active_conns: usize,
}

/// Shared, cheaply clonable view of the service's counters.
#[derive(Debug, Clone, Default)]
pub struct EchoStats {
    inner: Rc<RefCell<EchoStatsInner>>,
}

impl EchoStats {
    /// Requests accepted off the wire.
    pub fn accepted(&self) -> u64 {
        self.inner.borrow().accepted
    }
    /// Requests fully processed (service time spent).
    pub fn processed(&self) -> u64 {
        self.inner.borrow().processed
    }
    /// RPC responses (or one-way replies) actually sent.
    pub fn responses_sent(&self) -> u64 {
        self.inner.borrow().responses_sent
    }
    /// One-way replies abandoned because the endpoint was unreachable.
    pub fn replies_blocked(&self) -> u64 {
        self.inner.borrow().replies_blocked
    }
    /// Currently open inbound connections.
    pub fn active_conns(&self) -> usize {
        self.inner.borrow().active_conns
    }
}

type DestKey = (String, u16);

enum DestState {
    /// Connection in flight; replies queued behind it (each still holds
    /// its worker).
    Connecting { queued: Vec<Payload> },
    /// Kept-open connection.
    Ready(ConnId),
}

/// The echo service process.
pub struct SimEchoService {
    mode: EchoMode,
    /// CPU cost per request.
    service_time: SimDuration,
    /// Per-open-connection slowdown factor (Figure 5's contention droop):
    /// effective time = `service_time × (1 + penalty × active_conns)`.
    conn_penalty: f64,
    stats: EchoStats,
    cpu: CpuQueue,
    next_token: u64,
    /// RPC: timer token → (connection, finished response payload).
    pending_rpc: HashMap<u64, (ConnId, Payload)>,
    /// One-way: parsed requests (and the connection to ack on) awaiting a
    /// worker. The ack is only sent once a worker picks the message up —
    /// acceptance is coupled to processing, as in the paper's service.
    inbox: VecDeque<(ConnId, Envelope)>,
    busy_workers: usize,
    /// One-way: timer token → request whose service time just finished.
    in_service: HashMap<u64, (ConnId, Envelope)>,
    dests: HashMap<DestKey, DestState>,
    connecting: HashMap<ConnId, DestKey>,
    ready_conn_keys: HashMap<ConnId, DestKey>,
    inbound: HashSet<ConnId>,
}

impl SimEchoService {
    /// Creates the service.
    pub fn new(mode: EchoMode, service_time: SimDuration) -> Self {
        SimEchoService {
            mode,
            service_time,
            conn_penalty: 0.0,
            stats: EchoStats::default(),
            cpu: CpuQueue::default(),
            next_token: 0,
            pending_rpc: HashMap::new(),
            inbox: VecDeque::new(),
            busy_workers: 0,
            in_service: HashMap::new(),
            dests: HashMap::new(),
            connecting: HashMap::new(),
            ready_conn_keys: HashMap::new(),
            inbound: HashSet::new(),
        }
    }

    /// Sets the contention penalty. Returns `self` for chaining.
    pub fn with_conn_penalty(mut self, penalty: f64) -> Self {
        self.conn_penalty = penalty;
        self
    }

    /// A handle to the live counters.
    pub fn stats(&self) -> EchoStats {
        self.stats.clone()
    }

    fn token(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }

    fn effective_service_time(&self) -> SimDuration {
        let factor = 1.0 + self.conn_penalty * self.stats.active_conns() as f64;
        SimDuration((self.service_time.0 as f64 * factor) as u64)
    }

    fn on_request(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, bytes: Payload) {
        let Ok(req) = parse_request_bytes(&bytes) else {
            let resp = Response::empty(Status::BAD_REQUEST);
            let _ = ctx.send(conn, response_payload(&resp));
            return;
        };
        let Ok(env) = Envelope::parse(&req.body_utf8()) else {
            let resp = Response::empty(Status::BAD_REQUEST);
            let _ = ctx.send(conn, response_payload(&resp));
            return;
        };
        self.stats.inner.borrow_mut().accepted += 1;
        match self.mode {
            EchoMode::Rpc => self.start_rpc(ctx, conn, &req, env),
            EchoMode::OneWay { .. } => {
                // The ack (202) is sent when a worker starts the message:
                // closed-loop senders are paced by the service's actual
                // processing rate (paper §4.3.2: blocked replies lead to
                // "fewer messages accepted by the Web Service").
                self.inbox.push_back((conn, env));
                self.pump(ctx);
            }
        }
    }

    fn start_rpc(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _req: &Request, env: Envelope) {
        let text = soap_rpc::parse_echo(&env).unwrap_or_default();
        let reply = soap_rpc::echo_response(env.version, &text);
        let resp = Response::new(
            Status::OK,
            env.version.content_type(),
            reply.to_xml().into_bytes(),
        );
        let done_at = self.cpu.reserve(ctx.now(), self.effective_service_time());
        let token = self.token();
        self.pending_rpc
            .insert(token, (conn, response_payload(&resp)));
        ctx.set_timer(done_at.since(ctx.now()), token);
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let EchoMode::OneWay { workers, .. } = self.mode else {
            return;
        };
        while self.busy_workers < workers {
            let Some((conn, env)) = self.inbox.pop_front() else {
                break;
            };
            self.busy_workers += 1;
            let done_at = self.cpu.reserve(ctx.now(), self.effective_service_time());
            let token = self.token();
            self.in_service.insert(token, (conn, env));
            ctx.set_timer(done_at.since(ctx.now()), token);
        }
    }

    fn on_service_done(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, env: Envelope) {
        self.stats.inner.borrow_mut().processed += 1;
        // Acknowledge acceptance now that the message has been processed.
        let ack = Response::empty(Status::ACCEPTED);
        let _ = ctx.send(conn, response_payload(&ack));
        // Build the one-way reply addressed to the request's ReplyTo.
        let headers = WsaHeaders::from_envelope(&env).unwrap_or_default();
        let Some(reply_to) = headers.reply_to.filter(|r| !r.is_anonymous()) else {
            // Nowhere to reply: the worker is done.
            self.busy_workers = self.busy_workers.saturating_sub(1);
            self.pump(ctx);
            return;
        };
        let Ok(url) = Url::parse(&reply_to.address) else {
            self.stats.inner.borrow_mut().replies_blocked += 1;
            self.busy_workers = self.busy_workers.saturating_sub(1);
            self.pump(ctx);
            return;
        };
        let text = soap_rpc::parse_echo(&env).unwrap_or_default();
        let mut reply = soap_rpc::echo_response(env.version, &text);
        let mut h = WsaHeaders::new().to(reply_to.address.clone());
        if let Some(id) = headers.message_id {
            h = h.relates_to(id);
        }
        h.apply(&mut reply);
        let req = Request::soap_post(
            &url.authority(),
            &url.path,
            SoapVersion::V11.content_type(),
            reply.to_xml().into_bytes(),
        );
        self.deliver_reply(ctx, (url.host.clone(), url.port), crate::sim::request_payload(&req));
    }

    fn deliver_reply(&mut self, ctx: &mut Ctx<'_>, key: DestKey, payload: Payload) {
        let EchoMode::OneWay {
            connect_timeout, ..
        } = self.mode
        else {
            return;
        };
        match self.dests.get_mut(&key) {
            Some(DestState::Ready(conn)) => {
                let conn = *conn;
                if ctx.send(conn, payload.clone()).is_ok() {
                    self.finish_replies(ctx, 1, true);
                } else {
                    // Stale connection: drop it and reconnect.
                    self.dests.remove(&key);
                    self.ready_conn_keys.remove(&conn);
                    self.start_connect(ctx, key, payload, connect_timeout);
                }
            }
            Some(DestState::Connecting { queued }) => queued.push(payload),
            None => self.start_connect(ctx, key, payload, connect_timeout),
        }
    }

    fn start_connect(
        &mut self,
        ctx: &mut Ctx<'_>,
        key: DestKey,
        payload: Payload,
        timeout: SimDuration,
    ) {
        let conn = ctx.connect(&key.0, key.1, timeout);
        self.connecting.insert(conn, key.clone());
        self.dests.insert(
            key,
            DestState::Connecting {
                queued: vec![payload],
            },
        );
    }

    /// Releases `n` workers, crediting sent or blocked replies.
    fn finish_replies(&mut self, ctx: &mut Ctx<'_>, n: usize, sent: bool) {
        {
            let mut s = self.stats.inner.borrow_mut();
            if sent {
                s.responses_sent += n as u64;
            } else {
                s.replies_blocked += n as u64;
            }
        }
        self.busy_workers = self.busy_workers.saturating_sub(n);
        self.pump(ctx);
    }
}

impl Process for SimEchoService {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => {}
            ProcEvent::ConnAccepted { conn, .. } => {
                self.inbound.insert(conn);
                self.stats.inner.borrow_mut().active_conns += 1;
            }
            ProcEvent::Message { conn, bytes } => {
                // Traffic on our own outbound reply connections (202 acks
                // from dispatchers/mailboxes) is not a request.
                if self.ready_conn_keys.contains_key(&conn) || self.connecting.contains_key(&conn)
                {
                    return;
                }
                self.on_request(ctx, conn, bytes);
            }
            ProcEvent::Timer { token } => {
                if let Some((conn, payload)) = self.pending_rpc.remove(&token) {
                    // RPC service time elapsed: reply on the same
                    // connection (silently dropped if the client gave up —
                    // Table 1 quadrant 2).
                    if ctx.send(conn, payload).is_ok() {
                        self.stats.inner.borrow_mut().responses_sent += 1;
                    }
                    self.stats.inner.borrow_mut().processed += 1;
                } else if let Some((conn, env)) = self.in_service.remove(&token) {
                    self.on_service_done(ctx, conn, env);
                }
            }
            ProcEvent::ConnEstablished { conn } => {
                if let Some(key) = self.connecting.remove(&conn) {
                    if let Some(DestState::Connecting { queued }) = self.dests.remove(&key) {
                        let n = queued.len();
                        let mut ok = 0;
                        for p in queued {
                            if ctx.send(conn, p).is_ok() {
                                ok += 1;
                            }
                        }
                        self.dests.insert(key.clone(), DestState::Ready(conn));
                        self.ready_conn_keys.insert(conn, key);
                        self.finish_replies(ctx, ok, true);
                        if n > ok {
                            self.finish_replies(ctx, n - ok, false);
                        }
                    }
                }
            }
            ProcEvent::ConnRefused { conn, .. } => {
                if let Some(key) = self.connecting.remove(&conn) {
                    if let Some(DestState::Connecting { queued }) = self.dests.remove(&key) {
                        let n = queued.len();
                        self.finish_replies(ctx, n, false);
                    }
                }
            }
            ProcEvent::ConnClosed { conn } => {
                if self.inbound.remove(&conn) {
                    let mut s = self.stats.inner.borrow_mut();
                    s.active_conns = s.active_conns.saturating_sub(1);
                } else if let Some(key) = self.ready_conn_keys.remove(&conn) {
                    self.dests.remove(&key);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsd_netsim::{FirewallPolicy, HostConfig, Simulation};

    /// A test client: RPC mode does call/response; OneWay mode sends a
    /// message with ReplyTo and optionally listens for the reply.
    struct TestClient {
        target: (String, u16),
        body: Payload,
        responses: Rc<RefCell<Vec<String>>>,
    }

    impl Process for TestClient {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start => {
                    ctx.connect(&self.target.0, self.target.1, SimDuration::from_secs(5));
                }
                ProcEvent::ConnEstablished { conn } => {
                    ctx.send(conn, self.body.clone()).unwrap();
                }
                ProcEvent::Message { bytes, .. } => {
                    self.responses
                        .borrow_mut()
                        .push(String::from_utf8_lossy(&bytes).to_string());
                }
                _ => {}
            }
        }
    }

    /// A listener that records anything POSTed to it (a reply endpoint).
    struct ReplySink {
        got: Rc<RefCell<Vec<String>>>,
    }

    impl Process for ReplySink {
        fn on_event(&mut self, _ctx: &mut Ctx<'_>, ev: ProcEvent) {
            if let ProcEvent::Message { bytes, .. } = ev {
                self.got
                    .borrow_mut()
                    .push(String::from_utf8_lossy(&bytes).to_string());
            }
        }
    }

    fn rpc_request_payload(text: &str) -> Payload {
        let env = soap_rpc::echo_request(SoapVersion::V11, text);
        let req = Request::soap_post(
            "ws",
            "/echo",
            SoapVersion::V11.content_type(),
            env.to_xml().into_bytes(),
        );
        crate::sim::request_payload(&req)
    }

    fn oneway_request_payload(text: &str, reply_to: &str, msg_id: &str) -> Payload {
        let mut env = soap_rpc::echo_request(SoapVersion::V11, text);
        WsaHeaders::new()
            .to("http://ws/echo")
            .reply_to(wsd_wsa::EndpointReference::new(reply_to))
            .message_id(msg_id)
            .apply(&mut env);
        let req = Request::soap_post(
            "ws",
            "/echo",
            SoapVersion::V11.content_type(),
            env.to_xml().into_bytes(),
        );
        crate::sim::request_payload(&req)
    }

    #[test]
    fn rpc_mode_echoes_on_same_connection() {
        let mut sim = Simulation::new(1);
        let ws_host = sim.add_host(HostConfig::named("ws"));
        let client_host = sim.add_host(HostConfig::named("client"));
        let service = SimEchoService::new(EchoMode::Rpc, SimDuration::from_millis(10));
        let stats = service.stats();
        let sp = sim.spawn(ws_host, Box::new(service));
        sim.listen(sp, 80);
        let responses = Rc::new(RefCell::new(vec![]));
        sim.spawn(
            client_host,
            Box::new(TestClient {
                target: ("ws".into(), 80),
                body: rpc_request_payload("bonjour"),
                responses: responses.clone(),
            }),
        );
        sim.run();
        assert_eq!(stats.accepted(), 1);
        assert_eq!(stats.responses_sent(), 1);
        let got = responses.borrow();
        assert_eq!(got.len(), 1);
        assert!(got[0].contains("bonjour"), "{}", got[0]);
        assert!(got[0].starts_with("HTTP/1.1 200"));
    }

    #[test]
    fn rpc_service_time_caps_throughput() {
        // 10 ms of CPU per request: 5 concurrent requests finish ~50 ms
        // after the last arrives, not in parallel.
        let mut sim = Simulation::new(1);
        let ws_host = sim.add_host(HostConfig::named("ws"));
        let service = SimEchoService::new(EchoMode::Rpc, SimDuration::from_millis(10));
        let stats = service.stats();
        let sp = sim.spawn(ws_host, Box::new(service));
        sim.listen(sp, 80);
        let responses = Rc::new(RefCell::new(vec![]));
        for i in 0..5 {
            let ch = sim.add_host(HostConfig::named(format!("c{i}")));
            sim.spawn(
                ch,
                Box::new(TestClient {
                    target: ("ws".into(), 80),
                    body: rpc_request_payload("x"),
                    responses: responses.clone(),
                }),
            );
        }
        sim.run();
        assert_eq!(stats.responses_sent(), 5);
        // Serial CPU: total ≥ 5 × 10 ms.
        assert!(sim.now().as_secs_f64() >= 0.05, "{}", sim.now());
    }

    #[test]
    fn oneway_replies_to_reply_to_endpoint() {
        let mut sim = Simulation::new(1);
        let ws_host = sim.add_host(HostConfig::named("ws"));
        let client_host = sim.add_host(HostConfig::named("client"));
        let service = SimEchoService::new(
            EchoMode::OneWay {
                workers: 4,
                connect_timeout: SimDuration::from_secs(3),
            },
            SimDuration::from_millis(10),
        );
        let stats = service.stats();
        let sp = sim.spawn(ws_host, Box::new(service));
        sim.listen(sp, 80);
        // The client's reply endpoint (open).
        let got = Rc::new(RefCell::new(vec![]));
        let sink = sim.spawn(client_host, Box::new(ReplySink { got: got.clone() }));
        sim.listen(sink, 9000);
        let responses = Rc::new(RefCell::new(vec![]));
        sim.spawn(
            client_host,
            Box::new(TestClient {
                target: ("ws".into(), 80),
                body: oneway_request_payload("salut", "http://client:9000/cb", "uuid:1"),
                responses: responses.clone(),
            }),
        );
        sim.run();
        // The client got the 202 ack on the request connection.
        assert!(responses.borrow()[0].starts_with("HTTP/1.1 202"));
        // The reply arrived at the callback endpoint, correlated.
        let replies = got.borrow();
        assert_eq!(replies.len(), 1);
        assert!(replies[0].contains("salut"));
        assert!(replies[0].contains("uuid:1"), "RelatesTo must correlate");
        assert_eq!(stats.responses_sent(), 1);
        assert_eq!(stats.replies_blocked(), 0);
    }

    #[test]
    fn oneway_blocked_replies_stall_workers() {
        // Reply endpoint behind a firewall: every reply attempt blocks a
        // worker for the full connect timeout (Figure 6, worst curve).
        let mut sim = Simulation::new(1);
        let ws_host = sim.add_host(HostConfig::named("ws"));
        let client_host =
            sim.add_host(HostConfig::named("client").firewall(FirewallPolicy::OutboundOnly));
        let service = SimEchoService::new(
            EchoMode::OneWay {
                workers: 1,
                connect_timeout: SimDuration::from_secs(3),
            },
            SimDuration::from_millis(1),
        );
        let stats = service.stats();
        let sp = sim.spawn(ws_host, Box::new(service));
        sim.listen(sp, 80);
        let sink_got = Rc::new(RefCell::new(vec![]));
        let sink = sim.spawn(client_host, Box::new(ReplySink { got: sink_got.clone() }));
        sim.listen(sink, 9000);
        for i in 0..3 {
            sim.spawn(
                client_host,
                Box::new(TestClient {
                    target: ("ws".into(), 80),
                    body: oneway_request_payload(
                        &format!("m{i}"),
                        "http://client:9000/cb",
                        &format!("uuid:{i}"),
                    ),
                    responses: Rc::new(RefCell::new(vec![])),
                }),
            );
        }
        sim.run();
        assert_eq!(stats.accepted(), 3);
        assert_eq!(stats.replies_blocked(), 3);
        assert!(sink_got.borrow().is_empty());
        // One worker, ~3 s blocked per reply: at least ~9 s of virtual
        // time (the queue feeds one blocked attempt after another; the
        // connection cache coalesces per destination, so attempts to the
        // same dead client batch — still ≥ one full timeout).
        assert!(sim.now().as_secs_f64() >= 3.0, "{}", sim.now());
    }

    #[test]
    fn oneway_connection_reuse_batches_replies() {
        let mut sim = Simulation::new(1);
        let ws_host = sim.add_host(HostConfig::named("ws"));
        let client_host = sim.add_host(HostConfig::named("client"));
        let service = SimEchoService::new(
            EchoMode::OneWay {
                workers: 8,
                connect_timeout: SimDuration::from_secs(3),
            },
            SimDuration::from_millis(1),
        );
        let stats = service.stats();
        let sp = sim.spawn(ws_host, Box::new(service));
        sim.listen(sp, 80);
        let got = Rc::new(RefCell::new(vec![]));
        let sink = sim.spawn(client_host, Box::new(ReplySink { got: got.clone() }));
        sim.listen(sink, 9000);
        for i in 0..10 {
            sim.spawn(
                client_host,
                Box::new(TestClient {
                    target: ("ws".into(), 80),
                    body: oneway_request_payload(
                        &format!("m{i}"),
                        "http://client:9000/cb",
                        &format!("uuid:{i}"),
                    ),
                    responses: Rc::new(RefCell::new(vec![])),
                }),
            );
        }
        sim.run();
        assert_eq!(stats.responses_sent(), 10);
        assert_eq!(got.borrow().len(), 10);
    }

    #[test]
    fn malformed_request_gets_400() {
        let mut sim = Simulation::new(1);
        let ws_host = sim.add_host(HostConfig::named("ws"));
        let client_host = sim.add_host(HostConfig::named("client"));
        let service = SimEchoService::new(EchoMode::Rpc, SimDuration::from_millis(1));
        let stats = service.stats();
        let sp = sim.spawn(ws_host, Box::new(service));
        sim.listen(sp, 80);
        let responses = Rc::new(RefCell::new(vec![]));
        sim.spawn(
            client_host,
            Box::new(TestClient {
                target: ("ws".into(), 80),
                body: Payload::from_static(b"GARBAGE\r\n\r\n"),
                responses: responses.clone(),
            }),
        );
        sim.run();
        assert!(responses.borrow()[0].starts_with("HTTP/1.1 400"));
        assert_eq!(stats.accepted(), 0);
    }

    #[test]
    fn contention_penalty_slows_effective_service() {
        let svc = SimEchoService::new(EchoMode::Rpc, SimDuration::from_millis(10))
            .with_conn_penalty(0.01);
        assert_eq!(svc.effective_service_time(), SimDuration::from_millis(10));
        svc.stats.inner.borrow_mut().active_conns = 100;
        assert_eq!(svc.effective_service_time(), SimDuration::from_millis(20));
    }
}
