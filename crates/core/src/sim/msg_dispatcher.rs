//! The simulated MSG-Dispatcher (paper §4.2, Figure 3).
//!
//! Incoming one-way messages are accepted by the `CxThread` stage (a
//! FIFO CPU here), routed through [`MsgCore`] (logical-address
//! resolution + WS-Addressing rewrite), acknowledged with `202`, and
//! handed to the `WsThread` stage: per-destination FIFO queues drained
//! by a bounded pool of sender threads, each holding one kept-open
//! connection to its destination ("multiple messages can be delivered to
//! a destination over one connection which is more efficient than
//! opening multiple short lived connections").
//!
//! A `WsThread` whose destination is unreachable (a firewalled client)
//! holds its pool slot through the connect timeout and retry backoff —
//! which is exactly how undeliverable replies starve request forwarding
//! and produce the middle curve of Figure 6.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use wsd_http::{parse_request_bytes, Request, Response, Status};
use wsd_netsim::{ConnId, Ctx, Payload, ProcEvent, Process, SimDuration};
use wsd_soap::{Envelope, SoapVersion};
use wsd_telemetry::{Counter, EventTrace, Gauge, Scope, TraceStage};

use crate::msg::{MsgCore, RoutedRaw};
use crate::reliable::RetryPolicy;
use crate::sim::{request_payload, response_payload, CpuQueue};
use crate::url::Url;

#[derive(Debug, Default)]
struct StatsInner {
    received: u64,
    acked: u64,
    forwarded: u64,
    replies_routed: u64,
    delivered: u64,
    dropped: u64,
    rejected: u64,
    peak_active_threads: usize,
}

/// Live counters of a [`SimMsgDispatcher`].
#[derive(Debug, Clone, Default)]
pub struct MsgDispatcherStats {
    inner: Rc<RefCell<StatsInner>>,
}

impl MsgDispatcherStats {
    /// Messages read off client connections.
    pub fn received(&self) -> u64 {
        self.inner.borrow().received
    }
    /// `202 Accepted` acks sent.
    pub fn acked(&self) -> u64 {
        self.inner.borrow().acked
    }
    /// Requests routed toward services.
    pub fn forwarded(&self) -> u64 {
        self.inner.borrow().forwarded
    }
    /// Replies routed toward clients/mailboxes.
    pub fn replies_routed(&self) -> u64 {
        self.inner.borrow().replies_routed
    }
    /// Messages actually written to a destination connection.
    pub fn delivered(&self) -> u64 {
        self.inner.borrow().delivered
    }
    /// Messages dropped (queue overflow or delivery given up).
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }
    /// Messages rejected by routing or security.
    pub fn rejected(&self) -> u64 {
        self.inner.borrow().rejected
    }
    /// High-water mark of concurrently busy `WsThread`s.
    pub fn peak_active_threads(&self) -> usize {
        self.inner.borrow().peak_active_threads
    }
}

/// `WsThread`-stage tuning.
#[derive(Debug, Clone)]
pub struct WsThreadConfig {
    /// Sender-thread pool size.
    pub threads: usize,
    /// Per-destination queue capacity.
    pub queue_capacity: usize,
    /// How many queued envelopes one connection visit coalesces (the
    /// threaded runtime's buffered-batch write, mirrored as bookkeeping:
    /// virtual send times are unchanged, only `drain_batches` counts it).
    pub drain_batch: usize,
    /// Connect timeout toward destinations.
    pub connect_timeout: SimDuration,
    /// Idle time before a kept-open destination connection is closed.
    pub linger: SimDuration,
    /// Hold/retry policy for unreachable destinations.
    pub retry: RetryPolicy,
    /// How long a forwarded request's route-table entry awaits its reply
    /// before the janitor drops it.
    pub route_ttl: SimDuration,
}

impl Default for WsThreadConfig {
    fn default() -> Self {
        WsThreadConfig {
            threads: 16,
            queue_capacity: 256,
            drain_batch: 16,
            connect_timeout: SimDuration::from_secs(3),
            linger: SimDuration::from_secs(15),
            retry: RetryPolicy {
                max_attempts: 2,
                base_backoff_us: 500_000,
                max_backoff_us: 5_000_000,
                ttl_us: 60_000_000,
            },
            route_ttl: SimDuration::from_secs(300),
        }
    }
}

type DestKey = (String, u16);

/// Telemetry handles mirroring [`MsgDispatcherStats`] into a registry,
/// plus per-destination queue-depth gauges and message-lifecycle trace
/// events keyed by WS-Addressing `MessageID`. Built from a
/// [`Scope::noop`] by default, so unobserved runs record into thin air.
struct DispatcherTelemetry {
    scope: Scope,
    trace: EventTrace,
    received: Counter,
    acked: Counter,
    forwarded: Counter,
    replies_routed: Counter,
    delivered: Counter,
    dropped: Counter,
    rejected: Counter,
    enqueued: Counter,
    drain_batches: Counter,
    active_threads: Gauge,
    dest_queue_depth: HashMap<DestKey, Gauge>,
}

impl DispatcherTelemetry {
    fn new(scope: &Scope) -> Self {
        DispatcherTelemetry {
            trace: scope.trace(),
            received: scope.counter("received"),
            acked: scope.counter("acked"),
            forwarded: scope.counter("forwarded"),
            replies_routed: scope.counter("replies_routed"),
            delivered: scope.counter("delivered"),
            dropped: scope.counter("dropped"),
            rejected: scope.counter("rejected"),
            enqueued: scope.counter("queue_enqueued"),
            drain_batches: scope.counter("drain_batches"),
            active_threads: scope.gauge("active_threads"),
            dest_queue_depth: HashMap::new(),
            scope: scope.clone(),
        }
    }

    fn dest_queue_depth(&mut self, key: &DestKey) -> &Gauge {
        let scope = &self.scope;
        self.dest_queue_depth.entry(key.clone()).or_insert_with(|| {
            scope
                .labeled("dest", &format!("{}:{}", key.0, key.1))
                .gauge("queue_depth")
        })
    }

    fn stage(&self, msg_id: &str, stage: TraceStage, at_us: u64) {
        if !msg_id.is_empty() {
            self.trace.push(msg_id, stage, at_us);
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DestConn {
    Idle,
    Connecting(ConnId),
    Ready(ConnId),
    Backoff,
}

struct Dest {
    #[allow(dead_code)] // kept for diagnostics/Debug
    path_hint: String,
    queue: VecDeque<(String, Payload)>,
    conn: DestConn,
    has_thread: bool,
    attempts: u32,
    generation: u64,
    /// Message ids written to the connection, awaiting their HTTP
    /// responses in order — the state behind the paper's Table 1
    /// quadrant 3: when an *RPC* service answers `200` with a SOAP body,
    /// the dispatcher translates it into a reply message correlated to
    /// the oldest outstanding id.
    outstanding: VecDeque<String>,
}

impl Dest {
    fn new(path_hint: String) -> Self {
        Dest {
            path_hint,
            queue: VecDeque::new(),
            conn: DestConn::Idle,
            has_thread: false,
            attempts: 0,
            generation: 0,
            outstanding: VecDeque::new(),
        }
    }
}

/// The MSG-Dispatcher as a simulation actor.
pub struct SimMsgDispatcher {
    core: MsgCore,
    config: WsThreadConfig,
    /// `CxThread` CPU cost per routed message.
    dispatch_time: SimDuration,
    cpu: CpuQueue,
    stats: MsgDispatcherStats,
    next_token: u64,
    /// Routing work waiting for CPU: token → (conn to answer on, raw
    /// bytes). Translated RPC responses re-enter here with no answer
    /// connection — the "translation of semantics" CPU cost.
    routing: HashMap<u64, (Option<ConnId>, Payload)>,
    dests: HashMap<DestKey, Dest>,
    active_threads: usize,
    /// Destinations with work, waiting for a free `WsThread`.
    waiting: VecDeque<DestKey>,
    connecting: HashMap<ConnId, DestKey>,
    ready_conns: HashMap<ConnId, DestKey>,
    backoff_timers: HashMap<u64, DestKey>,
    linger_timers: HashMap<u64, (DestKey, u64)>,
    /// Token of the pending route-table janitor tick (armed lazily so an
    /// idle dispatcher schedules no events and `run()` can drain).
    janitor_token: u64,
    janitor_armed: bool,
    tele: DispatcherTelemetry,
}

impl SimMsgDispatcher {
    /// Creates the dispatcher actor around a routing core.
    pub fn new(core: MsgCore, dispatch_time: SimDuration, config: WsThreadConfig) -> Self {
        SimMsgDispatcher {
            core,
            config,
            dispatch_time,
            cpu: CpuQueue::default(),
            stats: MsgDispatcherStats::default(),
            next_token: 0,
            routing: HashMap::new(),
            dests: HashMap::new(),
            active_threads: 0,
            waiting: VecDeque::new(),
            connecting: HashMap::new(),
            ready_conns: HashMap::new(),
            backoff_timers: HashMap::new(),
            linger_timers: HashMap::new(),
            janitor_token: 0,
            janitor_armed: false,
            tele: DispatcherTelemetry::new(&Scope::noop()),
        }
    }

    /// Attaches telemetry: counters mirroring [`MsgDispatcherStats`], an
    /// `active_threads` gauge, per-destination `dest{host:port}.queue_depth`
    /// gauges, and message-lifecycle trace events.
    pub fn with_telemetry(mut self, scope: &Scope) -> Self {
        self.tele = DispatcherTelemetry::new(scope);
        self.core.bind_telemetry(&scope.child("core"));
        self
    }

    /// A handle to the live counters.
    pub fn stats(&self) -> MsgDispatcherStats {
        self.stats.clone()
    }

    fn token(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }

    /// Schedules the next route-expiry sweep if routes are pending.
    fn arm_janitor(&mut self, ctx: &mut Ctx<'_>) {
        if !self.janitor_armed && self.core.pending_routes() > 0 {
            self.janitor_armed = true;
            self.janitor_token = self.token();
            ctx.set_timer(SimDuration(self.config.route_ttl.0 / 4), self.janitor_token);
        }
    }

    fn route_now(&mut self, ctx: &mut Ctx<'_>, client_conn: Option<ConnId>, raw: Payload) {
        // The splice fast path inside `route_raw` needs only the request's
        // body bytes; the envelope is parsed solely when the scan declines.
        let parsed = parse_request_bytes(&raw).ok();
        let routed = parsed
            .as_ref()
            .and_then(|req| req.body_str())
            .map(|xml| self.core.route_raw(xml, raw.len(), ctx.now().as_micros()));
        match routed {
            Some(Ok(RoutedRaw::Forward { to, body, message_id, .. })) => {
                self.stats.inner.borrow_mut().forwarded += 1;
                self.tele.forwarded.inc();
                if let Some(conn) = client_conn {
                    self.ack(ctx, conn);
                }
                self.enqueue(ctx, &to, body, Some(message_id));
                self.arm_janitor(ctx);
            }
            Some(Ok(RoutedRaw::Reply { to, body, message_id })) => {
                self.stats.inner.borrow_mut().replies_routed += 1;
                self.tele.replies_routed.inc();
                if let Some(conn) = client_conn {
                    self.ack(ctx, conn);
                }
                self.enqueue(ctx, &to, body, message_id);
            }
            Some(Err(_)) | None => {
                self.stats.inner.borrow_mut().rejected += 1;
                self.tele.rejected.inc();
                if let Some(conn) = client_conn {
                    let resp = Response::empty(Status::BAD_REQUEST);
                    let _ = ctx.send(conn, response_payload(&resp));
                }
            }
        }
    }

    fn ack(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        let ack = Response::empty(Status::ACCEPTED);
        if ctx.send(conn, response_payload(&ack)).is_ok() {
            self.stats.inner.borrow_mut().acked += 1;
            self.tele.acked.inc();
        }
    }

    fn enqueue(&mut self, ctx: &mut Ctx<'_>, to: &Url, body: String, msg_id: Option<String>) {
        // The id was captured by `route_raw` at rewrite time — no re-parse.
        let msg_id = msg_id.unwrap_or_default();
        let req = Request::soap_post(
            &to.authority(),
            &to.path,
            SoapVersion::V11.content_type(),
            body.into_bytes(),
        );
        let payload = request_payload(&req);
        let key = (to.host.clone(), to.port);
        let cap = self.config.queue_capacity;
        let dest = self
            .dests
            .entry(key.clone())
            .or_insert_with(|| Dest::new(to.path.clone()));
        if dest.queue.len() >= cap {
            self.stats.inner.borrow_mut().dropped += 1;
            self.tele.dropped.inc();
            self.tele
                .stage(&msg_id, TraceStage::Dropped, ctx.now().as_micros());
            return;
        }
        self.tele
            .stage(&msg_id, TraceStage::Rewritten, ctx.now().as_micros());
        self.tele
            .stage(&msg_id, TraceStage::Enqueued, ctx.now().as_micros());
        dest.queue.push_back((msg_id, payload));
        let depth = dest.queue.len();
        self.tele.enqueued.inc();
        self.tele.dest_queue_depth(&key).set(depth as i64);
        self.schedule_dest(ctx, key);
    }

    /// Ensures `key` either has a thread working it or is queued for one.
    fn schedule_dest(&mut self, ctx: &mut Ctx<'_>, key: DestKey) {
        let Some(dest) = self.dests.get_mut(&key) else {
            return;
        };
        if dest.has_thread || dest.queue.is_empty() {
            return;
        }
        if self.active_threads < self.config.threads {
            dest.has_thread = true;
            self.active_threads += 1;
            let mut s = self.stats.inner.borrow_mut();
            s.peak_active_threads = s.peak_active_threads.max(self.active_threads);
            drop(s);
            self.tele.active_threads.set(self.active_threads as i64);
            self.work_dest(ctx, key);
        } else if !self.waiting.contains(&key) {
            self.waiting.push_back(key);
        }
    }

    /// Advances a destination that owns a thread.
    fn work_dest(&mut self, ctx: &mut Ctx<'_>, key: DestKey) {
        let Some(dest) = self.dests.get_mut(&key) else {
            return;
        };
        match dest.conn {
            DestConn::Ready(conn) => self.flush(ctx, key, conn),
            DestConn::Idle => {
                let conn = ctx.connect(&key.0, key.1, self.config.connect_timeout);
                dest.conn = DestConn::Connecting(conn);
                self.connecting.insert(conn, key);
            }
            // Connecting/Backoff: progress arrives via events/timers.
            DestConn::Connecting(_) | DestConn::Backoff => {}
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>, key: DestKey, conn: ConnId) {
        let Some(dest) = self.dests.get_mut(&key) else {
            return;
        };
        let mut sent = 0u64;
        let mut batches = 0u64;
        let mut broken = false;
        let now_us = ctx.now().as_micros();
        let max = self.config.drain_batch.max(1);
        // Coalesce up to `drain_batch` envelopes per connection visit,
        // mirroring the threaded runtime's single-flush batches. This is
        // bookkeeping only: every message is still its own simulated
        // write at the same virtual instant, so event timing (and every
        // figure) is unchanged.
        'batches: while !dest.queue.is_empty() {
            let mut in_batch = 0usize;
            while in_batch < max {
                let Some((msg_id, payload)) = dest.queue.pop_front() else {
                    break;
                };
                if ctx.send(conn, payload.clone()).is_ok() {
                    self.tele.stage(&msg_id, TraceStage::Drained, now_us);
                    self.tele.stage(&msg_id, TraceStage::Delivered, now_us);
                    dest.outstanding.push_back(msg_id);
                    sent += 1;
                    in_batch += 1;
                } else {
                    // Connection died under us: requeue and reconnect.
                    dest.queue.push_front((msg_id, payload));
                    broken = true;
                    break;
                }
            }
            if in_batch > 0 {
                batches += 1;
            }
            if broken {
                break 'batches;
            }
        }
        let depth = dest.queue.len();
        self.stats.inner.borrow_mut().delivered += sent;
        self.tele.delivered.add(sent);
        self.tele.drain_batches.add(batches);
        self.tele.dest_queue_depth(&key).set(depth as i64);
        if broken {
            self.ready_conns.remove(&conn);
            let dest = self.dests.get_mut(&key).expect("dest exists");
            dest.conn = DestConn::Idle;
            self.work_dest(ctx, key);
            return;
        }
        // Queue drained: release the thread, keep the connection warm.
        let dest = self.dests.get_mut(&key).expect("dest exists");
        dest.generation += 1;
        let generation = dest.generation;
        self.release_thread(ctx, &key);
        let token = self.token();
        self.linger_timers.insert(token, (key, generation));
        ctx.set_timer(self.config.linger, token);
    }

    fn release_thread(&mut self, ctx: &mut Ctx<'_>, key: &DestKey) {
        if let Some(dest) = self.dests.get_mut(key) {
            if !dest.has_thread {
                return;
            }
            dest.has_thread = false;
        }
        self.active_threads = self.active_threads.saturating_sub(1);
        self.tele.active_threads.set(self.active_threads as i64);
        // Hand the slot to the next waiting destination with work.
        while let Some(next) = self.waiting.pop_front() {
            let ready = self
                .dests
                .get(&next)
                .map(|d| !d.queue.is_empty() && !d.has_thread)
                .unwrap_or(false);
            if ready {
                let dest = self.dests.get_mut(&next).expect("checked");
                dest.has_thread = true;
                self.active_threads += 1;
                let mut s = self.stats.inner.borrow_mut();
                s.peak_active_threads = s.peak_active_threads.max(self.active_threads);
                drop(s);
                self.tele.active_threads.set(self.active_threads as i64);
                self.work_dest(ctx, next);
                break;
            }
        }
    }

    /// Handles an HTTP response arriving on a destination connection.
    fn on_dest_response(&mut self, ctx: &mut Ctx<'_>, key: DestKey, bytes: Payload) {
        let outstanding = match self.dests.get_mut(&key) {
            Some(dest) => dest.outstanding.pop_front(),
            None => None,
        };
        let Ok(resp) = wsd_http::parse_response_bytes(&bytes) else {
            return;
        };
        if resp.status.0 != 200 {
            return; // plain ack (202) or error — nothing to translate
        }
        let Ok(mut env) = Envelope::parse(&resp.body_utf8()) else {
            return;
        };
        // Correlate to the request this response answers, unless the
        // service already did.
        if let (Some(id), Ok(mut h)) = (
            outstanding.filter(|id| !id.is_empty()),
            wsd_wsa::WsaHeaders::from_envelope(&env),
        ) {
            if h.relates_to.is_empty() {
                h.relates_to.push((id, None));
                h.apply(&mut env);
            }
        }
        // Translation costs CxThread CPU like any inbound message — this
        // is why Table 1 calls the RPC server "a bottleneck (translation
        // of semantics from messaging to RPC)".
        let synthetic = Request::soap_post(
            "translated",
            "/msg",
            SoapVersion::V11.content_type(),
            env.to_xml().into_bytes(),
        );
        let done_at = self.cpu.reserve(ctx.now(), self.dispatch_time);
        let token = self.token();
        self.routing
            .insert(token, (None, request_payload(&synthetic)));
        ctx.set_timer(done_at.since(ctx.now()), token);
    }

    fn give_up(&mut self, ctx: &mut Ctx<'_>, key: DestKey) {
        if let Some(dest) = self.dests.get_mut(&key) {
            let n = dest.queue.len() as u64;
            let now_us = ctx.now().as_micros();
            for (msg_id, _) in dest.queue.drain(..) {
                self.tele.stage(&msg_id, TraceStage::Dropped, now_us);
            }
            dest.conn = DestConn::Idle;
            dest.attempts = 0;
            self.stats.inner.borrow_mut().dropped += n;
            self.tele.dropped.add(n);
            self.tele.dest_queue_depth(&key).set(0);
        }
        self.release_thread(ctx, &key);
    }
}

impl Process for SimMsgDispatcher {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start | ProcEvent::ConnAccepted { .. } => {}
            ProcEvent::Message { conn, bytes } => {
                if let Some(key) = self.ready_conns.get(&conn).cloned() {
                    // A response from a destination. `202` is a plain
                    // ack; `200` with a SOAP body is an *RPC* service
                    // answering synchronously — translate it into a reply
                    // message (Table 1 quadrant 3).
                    self.on_dest_response(ctx, key, bytes);
                    return;
                }
                self.stats.inner.borrow_mut().received += 1;
                self.tele.received.inc();
                let done_at = self.cpu.reserve(ctx.now(), self.dispatch_time);
                let token = self.token();
                self.routing.insert(token, (Some(conn), bytes));
                ctx.set_timer(done_at.since(ctx.now()), token);
            }
            ProcEvent::Timer { token } => {
                if self.janitor_armed && token == self.janitor_token {
                    // The route-table janitor (paper §4.4: routes carry
                    // expiration). Re-armed only while routes are
                    // pending, so an idle simulation can drain.
                    self.janitor_armed = false;
                    self.core
                        .expire_routes(ctx.now().as_micros(), self.config.route_ttl.0);
                    self.arm_janitor(ctx);
                } else if let Some((conn, raw)) = self.routing.remove(&token) {
                    self.route_now(ctx, conn, raw);
                } else if let Some(key) = self.backoff_timers.remove(&token) {
                    if let Some(dest) = self.dests.get_mut(&key) {
                        if dest.conn == DestConn::Backoff {
                            dest.conn = DestConn::Idle;
                            self.work_dest(ctx, key);
                        }
                    }
                } else if let Some((key, generation)) = self.linger_timers.remove(&token) {
                    if let Some(dest) = self.dests.get_mut(&key) {
                        if dest.generation == generation && dest.queue.is_empty() {
                            if let DestConn::Ready(conn) = dest.conn {
                                dest.conn = DestConn::Idle;
                                self.ready_conns.remove(&conn);
                                ctx.close(conn);
                            }
                        }
                    }
                }
            }
            ProcEvent::ConnEstablished { conn } => {
                if let Some(key) = self.connecting.remove(&conn) {
                    if let Some(dest) = self.dests.get_mut(&key) {
                        dest.conn = DestConn::Ready(conn);
                        dest.attempts = 0;
                        self.ready_conns.insert(conn, key.clone());
                        if dest.has_thread {
                            self.flush(ctx, key, conn);
                        }
                    }
                }
            }
            ProcEvent::ConnRefused { conn, .. } => {
                if let Some(key) = self.connecting.remove(&conn) {
                    let retry = self.config.retry;
                    if let Some(dest) = self.dests.get_mut(&key) {
                        dest.attempts += 1;
                        match retry.backoff_before(dest.attempts + 1) {
                            Some(backoff) => {
                                // Hold the thread through the backoff —
                                // this is the blocked-WsThread behaviour.
                                dest.conn = DestConn::Backoff;
                                let token = self.token();
                                self.backoff_timers.insert(token, key);
                                ctx.set_timer(SimDuration::from_micros(backoff), token);
                            }
                            None => self.give_up(ctx, key),
                        }
                    }
                }
            }
            ProcEvent::ConnClosed { conn } => {
                if let Some(key) = self.ready_conns.remove(&conn) {
                    if let Some(dest) = self.dests.get_mut(&key) {
                        dest.conn = DestConn::Idle;
                        if dest.has_thread {
                            self.work_dest(ctx, key.clone());
                        }
                        self.schedule_dest(ctx, key);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::sim::echo::{EchoMode, SimEchoService};
    use std::sync::Arc;
    use wsd_soap::rpc as soap_rpc;
    use wsd_wsa::{EndpointReference, WsaHeaders};
    use wsd_netsim::{FirewallPolicy, HostConfig, Simulation};

    /// Sends `total` one-way echo requests, paced by 202 acks; records
    /// replies POSTed to its callback listener.
    struct OneWayClient {
        total: usize,
        sent: usize,
        reply_to: String,
        got_acks: Rc<RefCell<usize>>,
    }

    impl OneWayClient {
        fn request(&self, i: usize) -> Payload {
            let mut env = soap_rpc::echo_request(SoapVersion::V11, &format!("m{i}"));
            WsaHeaders::new()
                .to("http://dispatcher/svc/Echo")
                .reply_to(EndpointReference::new(&self.reply_to))
                .message_id(format!("uuid:{}-{i}", self.reply_to))
                .apply(&mut env);
            let req = Request::soap_post(
                "dispatcher:8080",
                "/msg",
                SoapVersion::V11.content_type(),
                env.to_xml().into_bytes(),
            );
            request_payload(&req)
        }
    }

    impl Process for OneWayClient {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start => {
                    ctx.connect("dispatcher", 8080, SimDuration::from_secs(5));
                }
                ProcEvent::ConnEstablished { conn } => {
                    let msg = self.request(self.sent);
                    ctx.send(conn, msg).unwrap();
                    self.sent += 1;
                }
                ProcEvent::Message { conn, bytes }
                    if bytes.starts_with(b"HTTP/1.1 202") => {
                        *self.got_acks.borrow_mut() += 1;
                        if self.sent < self.total {
                            let msg = self.request(self.sent);
                            let _ = ctx.send(conn, msg);
                            self.sent += 1;
                        }
                    }
                _ => {}
            }
        }
    }

    struct ReplySink {
        got: Rc<RefCell<Vec<String>>>,
    }

    impl Process for ReplySink {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            if let ProcEvent::Message { conn, bytes } = ev {
                self.got
                    .borrow_mut()
                    .push(String::from_utf8_lossy(&bytes).to_string());
                let ack = Response::empty(Status::ACCEPTED);
                let _ = ctx.send(conn, response_payload(&ack));
            }
        }
    }

    type BuildOut = (
        Simulation,
        MsgDispatcherStats,
        crate::sim::echo::EchoStats,
        Rc<RefCell<Vec<String>>>,
        Rc<RefCell<usize>>,
    );

    fn build(client_firewalled: bool, threads: usize) -> BuildOut {
        let mut sim = Simulation::new(1);
        let disp_host = sim.add_host(HostConfig::named("dispatcher"));
        let ws_host = sim.add_host(HostConfig::named("ws"));
        let client_cfg = if client_firewalled {
            HostConfig::named("client").firewall(FirewallPolicy::OutboundOnly)
        } else {
            HostConfig::named("client")
        };
        let client_host = sim.add_host(client_cfg);

        // Echo service in one-way mode, replying through the dispatcher.
        let service = SimEchoService::new(
            EchoMode::OneWay {
                workers: 8,
                connect_timeout: SimDuration::from_secs(3),
            },
            SimDuration::from_millis(2),
        );
        let echo_stats = service.stats();
        let ws = sim.spawn(ws_host, Box::new(service));
        sim.listen(ws, 8888);

        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        let core = MsgCore::new(registry, "http://dispatcher:8080/msg", 9);
        let dispatcher = SimMsgDispatcher::new(
            core,
            SimDuration::from_millis(2),
            WsThreadConfig {
                threads,
                ..WsThreadConfig::default()
            },
        );
        let stats = dispatcher.stats();
        let dp = sim.spawn(disp_host, Box::new(dispatcher));
        sim.listen(dp, 8080);

        // Client callback listener + sender.
        let got = Rc::new(RefCell::new(vec![]));
        let sink = sim.spawn(client_host, Box::new(ReplySink { got: got.clone() }));
        sim.listen(sink, 9000);
        let acks = Rc::new(RefCell::new(0));
        sim.spawn(
            client_host,
            Box::new(OneWayClient {
                total: 5,
                sent: 0,
                reply_to: "http://client:9000/cb".into(),
                got_acks: acks.clone(),
            }),
        );
        (sim, stats, echo_stats, got, acks)
    }

    #[test]
    fn full_round_trip_through_dispatcher() {
        let (mut sim, stats, echo_stats, got, acks) = build(false, 16);
        sim.run();
        assert_eq!(stats.forwarded(), 5);
        assert_eq!(echo_stats.accepted(), 5);
        assert_eq!(stats.replies_routed(), 5, "WS replies must route back");
        assert_eq!(got.borrow().len(), 5, "client must receive 5 replies");
        assert_eq!(*acks.borrow(), 5);
        // Replies carry correlation to the original ids.
        assert!(got.borrow()[0].contains("RelatesTo"));
    }

    #[test]
    fn firewalled_client_replies_are_dropped_after_retries() {
        let (mut sim, stats, echo_stats, got, _acks) = build(true, 16);
        sim.run();
        // Everything forwards and the WS processes it...
        assert_eq!(stats.forwarded(), 5);
        assert_eq!(echo_stats.accepted(), 5);
        // ...but replies can't reach the firewalled client.
        assert_eq!(got.borrow().len(), 0);
        assert_eq!(stats.dropped(), 5);
    }

    #[test]
    fn blocked_destination_holds_a_thread() {
        let (mut sim, stats, _echo, _got, _acks) = build(true, 1);
        // With a single WsThread, the blocked client destination and the
        // WS destination compete for it; everything still completes, but
        // the run takes at least the connect-timeout + backoff cycles.
        sim.run();
        assert!(sim.now().as_secs_f64() >= 3.0, "{}", sim.now());
        assert_eq!(stats.peak_active_threads(), 1);
        assert_eq!(stats.dropped(), 5);
    }

    #[test]
    fn connection_reuse_across_messages() {
        let (mut sim, stats, echo_stats, _got, _acks) = build(false, 16);
        sim.run();
        // 5 messages delivered to the WS over (at most) one or two
        // connections — delivered counts messages, not connections.
        assert!(stats.delivered() >= 5);
        assert_eq!(echo_stats.accepted(), 5);
    }

    #[test]
    fn unroutable_message_gets_400() {
        let mut sim = Simulation::new(1);
        let disp_host = sim.add_host(HostConfig::named("dispatcher"));
        let client_host = sim.add_host(HostConfig::named("client"));
        let core = MsgCore::new(Arc::new(Registry::new()), "http://dispatcher:8080/msg", 9);
        let dispatcher = SimMsgDispatcher::new(
            core,
            SimDuration::from_millis(1),
            WsThreadConfig::default(),
        );
        let stats = dispatcher.stats();
        let dp = sim.spawn(disp_host, Box::new(dispatcher));
        sim.listen(dp, 8080);

        struct BadClient {
            responses: Rc<RefCell<Vec<String>>>,
        }
        impl Process for BadClient {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
                match ev {
                    ProcEvent::Start => {
                        ctx.connect("dispatcher", 8080, SimDuration::from_secs(5));
                    }
                    ProcEvent::ConnEstablished { conn } => {
                        // No WSA headers at all: unroutable.
                        let env = soap_rpc::echo_request(SoapVersion::V11, "x");
                        let req = Request::soap_post(
                            "dispatcher:8080",
                            "/msg",
                            SoapVersion::V11.content_type(),
                            env.to_xml().into_bytes(),
                        );
                        ctx.send(conn, request_payload(&req)).unwrap();
                    }
                    ProcEvent::Message { bytes, .. } => {
                        self.responses
                            .borrow_mut()
                            .push(String::from_utf8_lossy(&bytes).to_string());
                    }
                    _ => {}
                }
            }
        }
        let responses = Rc::new(RefCell::new(vec![]));
        sim.spawn(
            client_host,
            Box::new(BadClient {
                responses: responses.clone(),
            }),
        );
        sim.run();
        assert_eq!(stats.rejected(), 1);
        assert!(responses.borrow()[0].starts_with("HTTP/1.1 400"));
    }
}
