//! The simulated RPC-Dispatcher (paper §4.2, first implementation
//! phase): an HTTP proxy that forwards RPC invocations.
//!
//! For each client request it resolves the logical address through the
//! registry, opens a *new* connection to the target WS ("this introduces
//! additional processing time to establish the forwarded connection"),
//! relays the response back on the original client connection, and closes
//! the upstream connection.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use wsd_http::{parse_request_bytes, Status};
use wsd_netsim::{ConnId, Ctx, Payload, ProcEvent, Process, SimDuration};
use wsd_soap::SoapVersion;
use wsd_telemetry::{Counter, Gauge, Scope};

use crate::registry::Registry;
use crate::rpc::{error_response, plan_forward, upstream_failure_response};
use crate::security::PolicyChain;
use crate::sim::{request_payload, response_payload, CpuQueue};

#[derive(Debug, Default)]
struct StatsInner {
    received: u64,
    forwarded: u64,
    relayed: u64,
    refused: u64,
    upstream_failures: u64,
}

/// Live counters of a [`SimRpcDispatcher`].
#[derive(Debug, Clone, Default)]
pub struct RpcDispatcherStats {
    inner: Rc<RefCell<StatsInner>>,
}

impl RpcDispatcherStats {
    /// Requests accepted from clients.
    pub fn received(&self) -> u64 {
        self.inner.borrow().received
    }
    /// Requests sent on to a service.
    pub fn forwarded(&self) -> u64 {
        self.inner.borrow().forwarded
    }
    /// Responses relayed back to clients.
    pub fn relayed(&self) -> u64 {
        self.inner.borrow().relayed
    }
    /// Requests rejected before forwarding.
    pub fn refused(&self) -> u64 {
        self.inner.borrow().refused
    }
    /// Forwards that failed at the upstream side.
    pub fn upstream_failures(&self) -> u64 {
        self.inner.borrow().upstream_failures
    }
}

/// An in-flight forward.
struct UpstreamJob {
    client_conn: ConnId,
    payload: Payload,
}

/// Telemetry instruments mirroring [`RpcDispatcherStats`], plus an
/// `inflight` gauge over upstream requests awaiting a response.
struct RpcTelemetry {
    received: Counter,
    forwarded: Counter,
    relayed: Counter,
    refused: Counter,
    upstream_failures: Counter,
    inflight: Gauge,
}

impl RpcTelemetry {
    fn new(scope: &Scope) -> Self {
        RpcTelemetry {
            received: scope.counter("received"),
            forwarded: scope.counter("forwarded"),
            relayed: scope.counter("relayed"),
            refused: scope.counter("refused"),
            upstream_failures: scope.counter("upstream_failures"),
            inflight: scope.gauge("inflight"),
        }
    }
}

/// The RPC-Dispatcher as a simulation actor.
pub struct SimRpcDispatcher {
    registry: Arc<Registry>,
    policies: PolicyChain,
    /// CPU cost to parse + plan one request (header parse, registry
    /// lookup, header rewrite).
    dispatch_time: SimDuration,
    connect_timeout: SimDuration,
    response_timeout: SimDuration,
    cpu: CpuQueue,
    stats: RpcDispatcherStats,
    tele: RpcTelemetry,
    next_token: u64,
    /// Requests waiting for dispatcher CPU: token → (client conn, raw).
    pending_plan: HashMap<u64, (ConnId, Payload)>,
    /// Upstream connections being established.
    connecting: HashMap<ConnId, UpstreamJob>,
    /// Upstream connection → client connection awaiting the response.
    awaiting: HashMap<ConnId, ConnId>,
    /// Response timeout timers: token → upstream connection.
    timeouts: HashMap<u64, ConnId>,
}

impl SimRpcDispatcher {
    /// Creates the dispatcher actor.
    pub fn new(
        registry: Arc<Registry>,
        dispatch_time: SimDuration,
        connect_timeout: SimDuration,
        response_timeout: SimDuration,
    ) -> Self {
        SimRpcDispatcher {
            registry,
            policies: PolicyChain::new(),
            dispatch_time,
            connect_timeout,
            response_timeout,
            cpu: CpuQueue::default(),
            stats: RpcDispatcherStats::default(),
            tele: RpcTelemetry::new(&Scope::noop()),
            next_token: 0,
            pending_plan: HashMap::new(),
            connecting: HashMap::new(),
            awaiting: HashMap::new(),
            timeouts: HashMap::new(),
        }
    }

    /// Installs security policies. Returns `self` for chaining.
    pub fn with_policies(mut self, policies: PolicyChain) -> Self {
        self.policies = policies;
        self
    }

    /// Registers telemetry instruments under `scope`. Returns `self`
    /// for chaining.
    pub fn with_telemetry(mut self, scope: &Scope) -> Self {
        self.tele = RpcTelemetry::new(scope);
        self
    }

    /// A handle to the live counters.
    pub fn stats(&self) -> RpcDispatcherStats {
        self.stats.clone()
    }

    fn token(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }

    fn plan(&mut self, ctx: &mut Ctx<'_>, client_conn: ConnId, raw: Payload) {
        let Ok(req) = parse_request_bytes(&raw) else {
            self.stats.inner.borrow_mut().refused += 1;
            self.tele.refused.inc();
            let resp = wsd_http::Response::empty(Status::BAD_REQUEST);
            let _ = ctx.send(client_conn, response_payload(&resp));
            return;
        };
        match plan_forward(&self.registry, &self.policies, &req) {
            Ok((url, _logical, fwd)) => {
                let upstream = ctx.connect(&url.host, url.port, self.connect_timeout);
                self.connecting.insert(
                    upstream,
                    UpstreamJob {
                        client_conn,
                        payload: request_payload(&fwd),
                    },
                );
            }
            Err(e) => {
                self.stats.inner.borrow_mut().refused += 1;
                self.tele.refused.inc();
                let resp = error_response(SoapVersion::V11, &e);
                let _ = ctx.send(client_conn, response_payload(&resp));
            }
        }
    }
}

impl Process for SimRpcDispatcher {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start | ProcEvent::ConnAccepted { .. } => {}
            ProcEvent::Message { conn, bytes } => {
                if let Some(client_conn) = self.awaiting.remove(&conn) {
                    // Upstream response: relay on the original connection.
                    self.tele.inflight.dec();
                    if ctx.send(client_conn, bytes).is_ok() {
                        self.stats.inner.borrow_mut().relayed += 1;
                        self.tele.relayed.inc();
                    }
                    ctx.close(conn);
                } else {
                    // Fresh client request: queue for dispatcher CPU.
                    self.stats.inner.borrow_mut().received += 1;
                    self.tele.received.inc();
                    let done_at = self.cpu.reserve(ctx.now(), self.dispatch_time);
                    let token = self.token();
                    self.pending_plan.insert(token, (conn, bytes));
                    ctx.set_timer(done_at.since(ctx.now()), token);
                }
            }
            ProcEvent::Timer { token } => {
                if let Some((client_conn, raw)) = self.pending_plan.remove(&token) {
                    self.plan(ctx, client_conn, raw);
                } else if let Some(upstream) = self.timeouts.remove(&token) {
                    if let Some(client_conn) = self.awaiting.remove(&upstream) {
                        // The WS took longer than the HTTP/TCP timeout.
                        self.tele.inflight.dec();
                        self.stats.inner.borrow_mut().upstream_failures += 1;
                        self.tele.upstream_failures.inc();
                        let resp =
                            upstream_failure_response(SoapVersion::V11, "response timed out");
                        let _ = ctx.send(client_conn, response_payload(&resp));
                        ctx.close(upstream);
                    }
                }
            }
            ProcEvent::ConnEstablished { conn } => {
                if let Some(job) = self.connecting.remove(&conn) {
                    if ctx.send(conn, job.payload).is_ok() {
                        self.stats.inner.borrow_mut().forwarded += 1;
                        self.tele.forwarded.inc();
                        // wsd-lint: allow(gauge-balance): inflight is cross-event state — the dec fires when the matching response, timeout, or close event arrives, not on this path
                        self.tele.inflight.inc();
                        self.awaiting.insert(conn, job.client_conn);
                        let token = self.token();
                        self.timeouts.insert(token, conn);
                        ctx.set_timer(self.response_timeout, token);
                    } else {
                        self.stats.inner.borrow_mut().upstream_failures += 1;
                        self.tele.upstream_failures.inc();
                        let resp = upstream_failure_response(SoapVersion::V11, "send failed");
                        let _ = ctx.send(job.client_conn, response_payload(&resp));
                    }
                }
            }
            ProcEvent::ConnRefused { conn, reason } => {
                if let Some(job) = self.connecting.remove(&conn) {
                    self.stats.inner.borrow_mut().upstream_failures += 1;
                    self.tele.upstream_failures.inc();
                    let resp = upstream_failure_response(
                        SoapVersion::V11,
                        &format!("connect failed: {reason:?}"),
                    );
                    let _ = ctx.send(job.client_conn, response_payload(&resp));
                }
            }
            ProcEvent::ConnClosed { conn } => {
                if let Some(client_conn) = self.awaiting.remove(&conn) {
                    // Upstream died before responding.
                    self.tele.inflight.dec();
                    self.stats.inner.borrow_mut().upstream_failures += 1;
                    self.tele.upstream_failures.inc();
                    let resp = upstream_failure_response(
                        SoapVersion::V11,
                        "upstream closed before responding",
                    );
                    let _ = ctx.send(client_conn, response_payload(&resp));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::echo::{EchoMode, SimEchoService};
    use crate::url::Url;
    use wsd_http::Request;
    use wsd_netsim::{HostConfig, Simulation};
    use wsd_soap::{rpc as soap_rpc, Envelope};

    struct TestClient {
        body: Payload,
        responses: Rc<RefCell<Vec<String>>>,
    }

    impl Process for TestClient {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start => {
                    ctx.connect("dispatcher", 8081, SimDuration::from_secs(5));
                }
                ProcEvent::ConnEstablished { conn } => {
                    ctx.send(conn, self.body.clone()).unwrap();
                }
                ProcEvent::Message { bytes, .. } => {
                    self.responses
                        .borrow_mut()
                        .push(String::from_utf8_lossy(&bytes).to_string());
                }
                _ => {}
            }
        }
    }

    fn dispatcher_request(text: &str) -> Payload {
        let env = soap_rpc::echo_request(SoapVersion::V11, text);
        let req = Request::soap_post(
            "dispatcher:8081",
            "/svc/Echo",
            SoapVersion::V11.content_type(),
            env.to_xml().into_bytes(),
        );
        request_payload(&req)
    }

    fn setup(
        service_time: SimDuration,
        response_timeout: SimDuration,
    ) -> (Simulation, RpcDispatcherStats, Rc<RefCell<Vec<String>>>) {
        let mut sim = Simulation::new(1);
        let ws_host = sim.add_host(HostConfig::named("ws"));
        let disp_host = sim.add_host(HostConfig::named("dispatcher"));
        let client_host = sim.add_host(HostConfig::named("client"));

        let service = SimEchoService::new(EchoMode::Rpc, service_time);
        let ws = sim.spawn(ws_host, Box::new(service));
        sim.listen(ws, 8888);

        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        let dispatcher = SimRpcDispatcher::new(
            registry,
            SimDuration::from_millis(3),
            SimDuration::from_secs(3),
            response_timeout,
        );
        let stats = dispatcher.stats();
        let dp = sim.spawn(disp_host, Box::new(dispatcher));
        sim.listen(dp, 8081);

        let responses = Rc::new(RefCell::new(vec![]));
        sim.spawn(
            client_host,
            Box::new(TestClient {
                body: dispatcher_request("via-proxy"),
                responses: responses.clone(),
            }),
        );
        (sim, stats, responses)
    }

    #[test]
    fn telemetry_mirrors_forward_counters() {
        let reg = wsd_telemetry::Registry::new();
        let mut sim = Simulation::new(1);
        let ws_host = sim.add_host(HostConfig::named("ws"));
        let disp_host = sim.add_host(HostConfig::named("dispatcher"));
        let client_host = sim.add_host(HostConfig::named("client"));
        let ws = sim.spawn(
            ws_host,
            Box::new(SimEchoService::new(EchoMode::Rpc, SimDuration::from_millis(5))),
        );
        sim.listen(ws, 8888);
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        let dispatcher = SimRpcDispatcher::new(
            registry,
            SimDuration::from_millis(3),
            SimDuration::from_secs(3),
            SimDuration::from_secs(30),
        )
        .with_telemetry(&reg.scope("rpc_dispatcher"));
        let dp = sim.spawn(disp_host, Box::new(dispatcher));
        sim.listen(dp, 8081);
        let responses = Rc::new(RefCell::new(vec![]));
        sim.spawn(
            client_host,
            Box::new(TestClient {
                body: dispatcher_request("observed"),
                responses: responses.clone(),
            }),
        );
        sim.run();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("rpc_dispatcher.received"), 1);
        assert_eq!(snap.counter("rpc_dispatcher.forwarded"), 1);
        assert_eq!(snap.counter("rpc_dispatcher.relayed"), 1);
        assert_eq!(snap.gauge_peak("rpc_dispatcher.inflight"), 1);
        assert_eq!(snap.counter("rpc_dispatcher.refused"), 0);
    }

    #[test]
    fn forwards_and_relays_response() {
        let (mut sim, stats, responses) =
            setup(SimDuration::from_millis(5), SimDuration::from_secs(30));
        sim.run();
        assert_eq!(stats.received(), 1);
        assert_eq!(stats.forwarded(), 1);
        assert_eq!(stats.relayed(), 1);
        let got = responses.borrow();
        assert!(got[0].starts_with("HTTP/1.1 200"), "{}", got[0]);
        assert!(got[0].contains("via-proxy"));
    }

    #[test]
    fn slow_service_times_out_with_bad_gateway() {
        // Table 1 quadrant 2: the response comes after the HTTP timeout.
        let (mut sim, stats, responses) =
            setup(SimDuration::from_secs(60), SimDuration::from_secs(5));
        sim.run();
        assert_eq!(stats.upstream_failures(), 1);
        let got = responses.borrow();
        assert!(got[0].starts_with("HTTP/1.1 502"), "{}", got[0]);
        assert!(got[0].contains("timed out"));
    }

    #[test]
    fn unknown_service_yields_404() {
        let mut sim = Simulation::new(1);
        let disp_host = sim.add_host(HostConfig::named("dispatcher"));
        let client_host = sim.add_host(HostConfig::named("client"));
        let dispatcher = SimRpcDispatcher::new(
            Arc::new(Registry::new()),
            SimDuration::from_millis(1),
            SimDuration::from_secs(3),
            SimDuration::from_secs(30),
        );
        let stats = dispatcher.stats();
        let dp = sim.spawn(disp_host, Box::new(dispatcher));
        sim.listen(dp, 8081);
        let responses = Rc::new(RefCell::new(vec![]));
        sim.spawn(
            client_host,
            Box::new(TestClient {
                body: dispatcher_request("x"),
                responses: responses.clone(),
            }),
        );
        sim.run();
        assert_eq!(stats.refused(), 1);
        let got = responses.borrow();
        assert!(got[0].starts_with("HTTP/1.1 404"), "{}", got[0]);
        let body = got[0].split("\r\n\r\n").nth(1).unwrap();
        assert!(Envelope::parse(body).unwrap().as_fault().is_some());
    }

    #[test]
    fn dead_service_yields_bad_gateway() {
        let mut sim = Simulation::new(1);
        let _ws_host = sim.add_host(HostConfig::named("ws")); // nothing listening
        let disp_host = sim.add_host(HostConfig::named("dispatcher"));
        let client_host = sim.add_host(HostConfig::named("client"));
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        let dispatcher = SimRpcDispatcher::new(
            registry,
            SimDuration::from_millis(1),
            SimDuration::from_secs(3),
            SimDuration::from_secs(30),
        );
        let stats = dispatcher.stats();
        let dp = sim.spawn(disp_host, Box::new(dispatcher));
        sim.listen(dp, 8081);
        let responses = Rc::new(RefCell::new(vec![]));
        sim.spawn(
            client_host,
            Box::new(TestClient {
                body: dispatcher_request("x"),
                responses: responses.clone(),
            }),
        );
        sim.run();
        assert_eq!(stats.upstream_failures(), 1);
        assert!(responses.borrow()[0].starts_with("HTTP/1.1 502"));
    }

    #[test]
    fn pipelined_requests_all_served() {
        // One client connection carrying several requests in sequence.
        struct SerialClient {
            sent: usize,
            total: usize,
            responses: Rc<RefCell<Vec<String>>>,
        }
        impl Process for SerialClient {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
                match ev {
                    ProcEvent::Start => {
                        ctx.connect("dispatcher", 8081, SimDuration::from_secs(5));
                    }
                    ProcEvent::ConnEstablished { conn } => {
                        ctx.send(conn, dispatcher_request("m0")).unwrap();
                        self.sent = 1;
                    }
                    ProcEvent::Message { conn, bytes } => {
                        self.responses
                            .borrow_mut()
                            .push(String::from_utf8_lossy(&bytes).to_string());
                        if self.sent < self.total {
                            let msg = dispatcher_request(&format!("m{}", self.sent));
                            ctx.send(conn, msg).unwrap();
                            self.sent += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut sim = Simulation::new(1);
        let ws_host = sim.add_host(HostConfig::named("ws"));
        let disp_host = sim.add_host(HostConfig::named("dispatcher"));
        let client_host = sim.add_host(HostConfig::named("client"));
        let ws = sim.spawn(
            ws_host,
            Box::new(SimEchoService::new(EchoMode::Rpc, SimDuration::from_millis(2))),
        );
        sim.listen(ws, 8888);
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        let dispatcher = SimRpcDispatcher::new(
            registry,
            SimDuration::from_millis(1),
            SimDuration::from_secs(3),
            SimDuration::from_secs(30),
        );
        let stats = dispatcher.stats();
        let dp = sim.spawn(disp_host, Box::new(dispatcher));
        sim.listen(dp, 8081);
        let responses = Rc::new(RefCell::new(vec![]));
        sim.spawn(
            client_host,
            Box::new(SerialClient {
                sent: 0,
                total: 5,
                responses: responses.clone(),
            }),
        );
        sim.run();
        assert_eq!(stats.relayed(), 5);
        assert_eq!(responses.borrow().len(), 5);
        for (i, r) in responses.borrow().iter().enumerate() {
            assert!(r.contains(&format!("m{i}")), "response {i} out of order");
        }
    }
}
