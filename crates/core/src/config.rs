//! Dispatcher and mailbox configuration.

use std::time::Duration;

use wsd_http::Limits;

/// How a server turns accepted connections into handled requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConnFrontEnd {
    /// One pool thread blocks in the serve loop per connection for its
    /// whole lifetime — the paper's architecture, which caps fan-in at
    /// the pool/thread ceiling (§4.3.2's `OutOfMemoryError`).
    ThreadPerConn,
    /// A reactor owns all connections and dispatches only complete
    /// requests to the pool; thread count scales with in-flight requests,
    /// not open sockets.
    #[default]
    Reactor,
}

/// MSG-Dispatcher tuning (paper §4.2: "the sizes of the pools are
/// configurable").
#[derive(Debug, Clone)]
pub struct DispatcherConfig {
    /// `CxThread` pool: pre-created threads accepting client messages.
    pub cx_core_threads: usize,
    /// `CxThread` pool growth ceiling.
    pub cx_max_threads: usize,
    /// `WsThread` pool: per-destination sender threads.
    pub ws_core_threads: usize,
    /// `WsThread` pool growth ceiling.
    pub ws_max_threads: usize,
    /// Capacity of each destination's FIFO queue.
    pub queue_capacity: usize,
    /// How many queued envelopes a `WsThread` coalesces per drain pass:
    /// one serialization buffer, one write, one flush over the kept-open
    /// connection, then the responses are read back in order.
    pub drain_batch: usize,
    /// How long a `WsThread` keeps a destination connection open with no
    /// traffic before closing it (paper: "an open connection for a
    /// predefined time with a specified WS").
    pub connection_linger: Duration,
    /// Connect timeout toward services and reply endpoints.
    pub connect_timeout: Duration,
    /// Response timeout for RPC forwarding.
    pub response_timeout: Duration,
    /// How long a route-table entry (forwarded request awaiting its
    /// reply) survives before being dropped.
    pub route_ttl: Duration,
    /// Connection-handling architecture for the accept side.
    pub front_end: ConnFrontEnd,
    /// HTTP parser limits applied to every accepted connection.
    pub limits: Limits,
}

impl Default for DispatcherConfig {
    fn default() -> Self {
        DispatcherConfig {
            cx_core_threads: 4,
            cx_max_threads: 32,
            ws_core_threads: 4,
            ws_max_threads: 32,
            queue_capacity: 1024,
            drain_batch: 16,
            connection_linger: Duration::from_secs(15),
            connect_timeout: Duration::from_secs(3),
            response_timeout: Duration::from_secs(30),
            route_ttl: Duration::from_secs(300),
            front_end: ConnFrontEnd::default(),
            limits: Limits::default(),
        }
    }
}

/// Dispatcher-tier scale-out configuration.
///
/// The default is a fleet of one: no ring, no replication, no handoff —
/// every figure runner keeps its original single-dispatcher topology
/// and output. Raising `instances` shards logical service names across
/// N dispatcher instances on a seeded consistent-hash ring
/// ([`wsd_fleet::ShardRing`]), replicates the registry leader →
/// followers in the PSYNC shape, and arms msgbox ownership handoff for
/// instance death.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Dispatcher instances in the tier. `1` (the default) disables
    /// every fleet mechanism.
    pub instances: usize,
    /// Virtual nodes each instance contributes to the hash ring.
    pub vnodes: u32,
    /// Seed the ring layout derives from — fixed seed, fixed layout,
    /// replayable netsim runs.
    pub ring_seed: u64,
    /// Commands the registry leader retains for follower partial
    /// resync; a follower further behind full-resyncs from a snapshot.
    pub repl_backlog: usize,
    /// How long a client-side router waits for a deposit ack before
    /// declaring the instance dead and re-routing via the ring.
    pub ack_timeout: Duration,
    /// Instance control-loop cadence: replication catch-up, ring
    /// gauges, handoff claims.
    pub control_tick: Duration,
    /// Admission bound: an instance sheds load (503) once its queued
    /// CPU or disk backlog exceeds this, keeping ack latency far below
    /// `ack_timeout` so failure detection never misfires under
    /// overload.
    pub max_backlog: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            instances: 1,
            vnodes: 64,
            ring_seed: 0xF1EE_7001,
            repl_backlog: 1024,
            ack_timeout: Duration::from_secs(5),
            control_tick: Duration::from_millis(250),
            max_backlog: Duration::from_secs(1),
        }
    }
}

impl FleetConfig {
    /// Whether the fleet machinery is disabled (the paper's topology).
    pub fn single_instance(&self) -> bool {
        self.instances <= 1
    }

    /// Builds the tier's hash ring with instances `0..instances`.
    pub fn ring(&self) -> wsd_fleet::ShardRing {
        wsd_fleet::ShardRing::with_instances(self.ring_seed, self.vnodes, self.instances as u32)
    }
}

/// Which storage backs the mailbox store.
#[derive(Debug, Clone, Default)]
pub enum MailboxBackend {
    /// The paper's RAM-only store: fastest, but a crash drops every
    /// queued message and mailbox depth is bounded by the heap
    /// (see [`MsgBoxConfig::heap_budget_bytes`]).
    #[default]
    Memory,
    /// WAL-backed durable store (`wsd-store`): every acknowledged
    /// deposit survives a crash, bodies spill to disk past the store's
    /// memory budget, and per-tenant quotas bound the disk side. The
    /// per-box message cap does not apply — depth is bounded by
    /// disk/quota instead.
    Durable {
        /// WAL directory. `None` keeps the log on a process-local
        /// in-memory "disk" — deterministic, used by the simulation
        /// (durability then spans simulated restarts, not process
        /// restarts).
        dir: Option<std::path::PathBuf>,
        /// WAL, spill and quota tuning. The simulation requires
        /// `SyncMode::Always` (group-commit timing is wall-clock).
        store: wsd_store::StoreConfig,
    },
}

/// How WS-MsgBox handles reply work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgBoxStrategy {
    /// One thread per incoming message — the design whose
    /// `OutOfMemoryError` the paper reports at ~50 clients (§4.3.2).
    /// Kept to reproduce the bug.
    ThreadPerMessage,
    /// Fixed worker pool draining a FIFO — the redesign the paper says
    /// was in progress.
    Pooled {
        /// Number of worker threads.
        workers: usize,
    },
}

/// WS-MsgBox tuning.
#[derive(Debug, Clone)]
pub struct MsgBoxConfig {
    /// Reply-work strategy.
    pub strategy: MsgBoxStrategy,
    /// Per-mailbox stored message cap.
    pub max_messages_per_box: usize,
    /// Stored message time-to-live (expired messages are dropped — the
    /// paper's "messages stored with expiration time" future work).
    pub message_ttl: Duration,
    /// Simulated native-thread budget for [`MsgBoxStrategy::ThreadPerMessage`]
    /// (the JVM's ceiling).
    pub thread_budget: usize,
    /// Mailbox storage backend.
    pub backend: MailboxBackend,
    /// Heap bytes the store may keep resident before the process is
    /// considered out of memory — the §4.3.2 "memory wall" for stored
    /// message *bodies*. The simulation crashes the service when the
    /// memory backend crosses it; the durable backend spills to disk
    /// instead and stays under its own `memory_budget_bytes`.
    pub heap_budget_bytes: usize,
    /// HTTP parser limits applied to every accepted connection.
    pub limits: Limits,
}

impl Default for MsgBoxConfig {
    fn default() -> Self {
        MsgBoxConfig {
            strategy: MsgBoxStrategy::Pooled { workers: 8 },
            max_messages_per_box: 10_000,
            message_ttl: Duration::from_secs(3600),
            thread_budget: 1000,
            backend: MailboxBackend::Memory,
            heap_budget_bytes: usize::MAX,
            limits: Limits::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let d = DispatcherConfig::default();
        assert!(d.cx_core_threads <= d.cx_max_threads);
        assert!(d.ws_core_threads <= d.ws_max_threads);
        assert!(d.queue_capacity > 0);
        assert!(d.drain_batch > 0);
        let m = MsgBoxConfig::default();
        assert!(matches!(m.strategy, MsgBoxStrategy::Pooled { workers } if workers > 0));
        assert!(m.thread_budget > 0);
    }
}
