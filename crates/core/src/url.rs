//! A minimal HTTP URL: exactly what service addressing needs.

use crate::error::WsdError;

/// `http://host[:port]/path` — scheme is always `http` in this system.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Url {
    /// Host name (the simulator's or in-process network's DNS name).
    pub host: String,
    /// TCP port (default 80).
    pub port: u16,
    /// Absolute path, always starting with `/`.
    pub path: String,
}

impl Url {
    /// Builds a URL from parts; the path gets a leading `/` if missing.
    pub fn new(host: impl Into<String>, port: u16, path: impl Into<String>) -> Url {
        let mut path = path.into();
        if !path.starts_with('/') {
            path.insert(0, '/');
        }
        Url {
            host: host.into(),
            port,
            path,
        }
    }

    /// Parses `http://host[:port][/path]`.
    pub fn parse(s: &str) -> Result<Url, WsdError> {
        let bad = || WsdError::BadAddress(s.to_string());
        let rest = s.strip_prefix("http://").ok_or_else(bad)?;
        let (authority, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return Err(bad());
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p.parse().map_err(|_| bad())?;
                (h, port)
            }
            None => (authority, 80),
        };
        if host.is_empty() {
            return Err(bad());
        }
        Ok(Url {
            host: host.to_string(),
            port,
            path: path.to_string(),
        })
    }

    /// `host:port` for the HTTP `Host` header.
    pub fn authority(&self) -> String {
        if self.port == 80 {
            self.host.clone()
        } else {
            format!("{}:{}", self.host, self.port)
        }
    }

    /// The logical service name, when the path follows the dispatcher's
    /// `/svc/<name>` convention.
    pub fn logical_service(&self) -> Option<&str> {
        let name = self.path.strip_prefix("/svc/")?;
        let name = name.split(['/', '?']).next().unwrap_or("");
        if name.is_empty() {
            None
        } else {
            Some(name)
        }
    }
}

impl std::fmt::Display for Url {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "http://{}{}", self.authority(), self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_url() {
        let u = Url::parse("http://inria-fast:8888/echo/service").unwrap();
        assert_eq!(u.host, "inria-fast");
        assert_eq!(u.port, 8888);
        assert_eq!(u.path, "/echo/service");
    }

    #[test]
    fn default_port_and_path() {
        let u = Url::parse("http://svc.example").unwrap();
        assert_eq!(u.port, 80);
        assert_eq!(u.path, "/");
        assert_eq!(u.authority(), "svc.example");
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "http://a/",
            "http://a:8080/x/y",
            "http://dispatcher/svc/echo",
        ] {
            assert_eq!(Url::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn display_hides_default_port() {
        assert_eq!(Url::new("a", 80, "/p").to_string(), "http://a/p");
        assert_eq!(Url::new("a", 81, "/p").to_string(), "http://a:81/p");
    }

    #[test]
    fn bad_urls_rejected() {
        for s in ["ftp://a/", "http://", "http://:80/", "http://a:notaport/"] {
            assert!(Url::parse(s).is_err(), "{s}");
        }
    }

    #[test]
    fn logical_service_extraction() {
        assert_eq!(
            Url::parse("http://d/svc/EchoService")
                .unwrap()
                .logical_service(),
            Some("EchoService")
        );
        assert_eq!(
            Url::parse("http://d/svc/Echo/extra").unwrap().logical_service(),
            Some("Echo")
        );
        assert_eq!(Url::parse("http://d/other").unwrap().logical_service(), None);
        assert_eq!(Url::parse("http://d/svc/").unwrap().logical_service(), None);
    }

    #[test]
    fn new_normalizes_path() {
        assert_eq!(Url::new("h", 80, "x").path, "/x");
    }
}
