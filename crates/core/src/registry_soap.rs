//! SOAP-RPC operations on the registry.
//!
//! Paper §4.1: "creating a real registry of services for
//! registering/updating services is independent from forwarding
//! requests, the registry is an independent module". These operations
//! let services register themselves remotely — `register`,
//! `unregister`, `lookup` and `list` in the `urn:wsd:registry`
//! namespace — over the same SOAP-RPC any peer can speak.

use wsd_soap::{rpc::RpcCall, Envelope, Fault, FaultCode, SoapVersion};
use wsd_xml::Element;

use crate::registry::Registry;
use crate::url::Url;

/// Namespace of the registry operations.
pub const REGISTRY_NS: &str = "urn:wsd:registry";

/// Handles one registry RPC envelope, producing the response envelope.
pub fn handle_soap(registry: &Registry, env: &Envelope) -> Envelope {
    let version = env.version;
    let call = match RpcCall::from_envelope(env) {
        Ok(c) if c.namespace == REGISTRY_NS => c,
        Ok(_) => return fault(version, "not a registry operation"),
        Err(e) => return fault(version, &e.to_string()),
    };
    match call.operation.as_str() {
        "register" => {
            let Some(logical) = call.param("logical") else {
                return fault(version, "register needs a 'logical' parameter");
            };
            let endpoints: Result<Vec<Url>, _> = call
                .params
                .iter()
                .filter(|(n, _)| n == "endpoint")
                .map(|(_, v)| Url::parse(v))
                .collect();
            let endpoints = match endpoints {
                Ok(e) if !e.is_empty() => e,
                Ok(_) => return fault(version, "register needs at least one 'endpoint'"),
                Err(e) => return fault(version, &e.to_string()),
            };
            let wsdl = call.param("wsdl").map(str::to_string);
            registry.register_many(logical, endpoints, wsdl);
            ok_response(version, "register", |op| op)
        }
        "unregister" => {
            let Some(logical) = call.param("logical") else {
                return fault(version, "unregister needs a 'logical' parameter");
            };
            let removed = registry.unregister(logical);
            ok_response(version, "unregister", |op| {
                op.with_child(Element::new("removed").with_text(removed.to_string()))
            })
        }
        "lookup" => {
            let Some(logical) = call.param("logical") else {
                return fault(version, "lookup needs a 'logical' parameter");
            };
            match registry.lookup(logical) {
                Ok(url) => ok_response(version, "lookup", |op| {
                    op.with_child(Element::new("endpoint").with_text(url.to_string()))
                }),
                Err(e) => fault(version, &e.to_string()),
            }
        }
        "list" => ok_response(version, "list", |mut op| {
            for name in registry.list() {
                op = op.with_child(Element::new("service").with_text(name));
            }
            op
        }),
        other => fault(version, &format!("unknown registry operation {other:?}")),
    }
}

fn ok_response(
    version: SoapVersion,
    operation: &str,
    fill: impl FnOnce(Element) -> Element,
) -> Envelope {
    let op = Element::new_ns(Some("r"), format!("{operation}Response"), REGISTRY_NS)
        .declare_namespace(Some("r"), REGISTRY_NS);
    Envelope::request(version, fill(op))
}

fn fault(version: SoapVersion, reason: &str) -> Envelope {
    Envelope::fault(version, Fault::new(FaultCode::Sender, reason))
}

/// Client-side request builders for the operations [`handle_soap`]
/// serves.
pub mod ops {
    use super::REGISTRY_NS;
    use wsd_soap::{rpc::RpcCall, Envelope, SoapVersion};

    /// `register` request: one logical name, one or more endpoints,
    /// optional WSDL.
    pub fn register(
        version: SoapVersion,
        logical: &str,
        endpoints: &[String],
        wsdl: Option<&str>,
    ) -> Envelope {
        let mut call = RpcCall::new(REGISTRY_NS, "register").with_param("logical", logical);
        for e in endpoints {
            call = call.with_param("endpoint", e.clone());
        }
        if let Some(w) = wsdl {
            call = call.with_param("wsdl", w);
        }
        call.to_envelope(version)
    }

    /// `unregister` request.
    pub fn unregister(version: SoapVersion, logical: &str) -> Envelope {
        RpcCall::new(REGISTRY_NS, "unregister")
            .with_param("logical", logical)
            .to_envelope(version)
    }

    /// `lookup` request.
    pub fn lookup(version: SoapVersion, logical: &str) -> Envelope {
        RpcCall::new(REGISTRY_NS, "lookup")
            .with_param("logical", logical)
            .to_envelope(version)
    }

    /// `list` request.
    pub fn list(version: SoapVersion) -> Envelope {
        RpcCall::new(REGISTRY_NS, "list").to_envelope(version)
    }

    /// Reads the endpoint out of a `lookupResponse`.
    pub fn parse_lookup_response(env: &Envelope) -> Option<String> {
        let op = env.payload()?.first()?;
        if op.name.local != "lookupResponse" {
            return None;
        }
        Some(op.find_child(None, "endpoint")?.text())
    }

    /// Reads the service names out of a `listResponse`.
    pub fn parse_list_response(env: &Envelope) -> Option<Vec<String>> {
        let op = env.payload()?.first()?;
        if op.name.local != "listResponse" {
            return None;
        }
        Some(op.find_children(None, "service").map(|s| s.text()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Registry {
        Registry::new()
    }

    fn round_trip(registry: &Registry, req: Envelope) -> Envelope {
        // Serialize/parse both directions: the wire is always exercised.
        let req = Envelope::parse(&req.to_xml()).unwrap();
        let resp = handle_soap(registry, &req);
        Envelope::parse(&resp.to_xml()).unwrap()
    }

    #[test]
    fn register_lookup_unregister_cycle() {
        let r = registry();
        let resp = round_trip(
            &r,
            ops::register(
                SoapVersion::V11,
                "Echo",
                &["http://ws:8888/echo".into()],
                Some("<definitions/>"),
            ),
        );
        assert!(resp.as_fault().is_none(), "{resp:?}");
        assert_eq!(r.len(), 1);
        assert_eq!(r.entry("Echo").unwrap().wsdl.as_deref(), Some("<definitions/>"));

        let resp = round_trip(&r, ops::lookup(SoapVersion::V11, "Echo"));
        assert_eq!(
            ops::parse_lookup_response(&resp).as_deref(),
            Some("http://ws:8888/echo")
        );

        let resp = round_trip(&r, ops::unregister(SoapVersion::V11, "Echo"));
        assert!(resp.as_fault().is_none());
        assert!(r.is_empty());
    }

    #[test]
    fn register_farm_with_multiple_endpoints() {
        let r = registry();
        round_trip(
            &r,
            ops::register(
                SoapVersion::V12,
                "Farm",
                &["http://a/s".into(), "http://b/s".into()],
                None,
            ),
        );
        assert_eq!(r.entry("Farm").unwrap().endpoints().len(), 2);
    }

    #[test]
    fn list_returns_sorted_names() {
        let r = registry();
        round_trip(&r, ops::register(SoapVersion::V11, "B", &["http://b/".into()], None));
        round_trip(&r, ops::register(SoapVersion::V11, "A", &["http://a/".into()], None));
        let resp = round_trip(&r, ops::list(SoapVersion::V11));
        assert_eq!(
            ops::parse_list_response(&resp).unwrap(),
            vec!["A".to_string(), "B".to_string()]
        );
    }

    #[test]
    fn errors_are_faults() {
        let r = registry();
        let resp = round_trip(&r, ops::lookup(SoapVersion::V11, "Missing"));
        assert!(resp.as_fault().unwrap().reason.contains("Missing"));
        // Bad endpoint URL.
        let resp = round_trip(
            &r,
            ops::register(SoapVersion::V11, "X", &["ftp://nope".into()], None),
        );
        assert!(resp.as_fault().is_some());
        assert!(r.is_empty());
        // Missing parameters.
        let bare = RpcCall::new(REGISTRY_NS, "register").to_envelope(SoapVersion::V11);
        assert!(handle_soap(&r, &bare).as_fault().is_some());
        // Wrong namespace.
        let foreign = RpcCall::new("urn:other", "register").to_envelope(SoapVersion::V11);
        assert!(handle_soap(&r, &foreign).as_fault().is_some());
    }
}
