//! Message security inspection.
//!
//! The paper positions the WSD as "a complete firewall for Web Services"
//! with "message security inspection" and future-work single sign-on:
//! services behind the dispatcher "do not need to implement security —
//! instead rely on WSD to do checks". Policies inspect each envelope
//! before forwarding; the composite applies them in order.

use std::collections::HashSet;

use wsd_soap::Envelope;
use wsd_wsa::WsaHeaders;

use crate::error::WsdError;

/// The namespace of dispatcher-defined headers (auth tokens).
pub const WSD_NS: &str = "urn:wsd:dispatcher";

/// A message-inspection policy.
pub trait SecurityPolicy: Send + Sync {
    /// Accepts the message (Ok) or rejects it with a reason.
    fn inspect(&self, serialized_len: usize, env: &Envelope) -> Result<(), WsdError>;

    /// Short policy name for logs.
    fn name(&self) -> &'static str;
}

/// Accepts everything (the default).
#[derive(Debug, Default, Clone, Copy)]
pub struct AllowAll;

impl SecurityPolicy for AllowAll {
    fn inspect(&self, _len: usize, _env: &Envelope) -> Result<(), WsdError> {
        Ok(())
    }
    fn name(&self) -> &'static str {
        "allow-all"
    }
}

/// Rejects messages larger than a byte limit.
#[derive(Debug, Clone, Copy)]
pub struct MaxSize(pub usize);

impl SecurityPolicy for MaxSize {
    fn inspect(&self, len: usize, _env: &Envelope) -> Result<(), WsdError> {
        if len > self.0 {
            Err(WsdError::Rejected(format!(
                "message of {len} bytes exceeds the {} byte limit",
                self.0
            )))
        } else {
            Ok(())
        }
    }
    fn name(&self) -> &'static str {
        "max-size"
    }
}

/// Requires `wsa:Action` to be in an allow-list.
#[derive(Debug, Clone)]
pub struct RequireAction {
    allowed: HashSet<String>,
}

impl RequireAction {
    /// Builds the allow-list.
    pub fn new(actions: impl IntoIterator<Item = impl Into<String>>) -> Self {
        RequireAction {
            allowed: actions.into_iter().map(Into::into).collect(),
        }
    }
}

impl SecurityPolicy for RequireAction {
    fn inspect(&self, _len: usize, env: &Envelope) -> Result<(), WsdError> {
        let headers =
            WsaHeaders::from_envelope(env).map_err(|e| WsdError::Rejected(e.to_string()))?;
        match headers.action {
            Some(a) if self.allowed.contains(&a) => Ok(()),
            Some(a) => Err(WsdError::Rejected(format!("action {a:?} not allowed"))),
            None => Err(WsdError::Rejected("missing wsa:Action".to_string())),
        }
    }
    fn name(&self) -> &'static str {
        "require-action"
    }
}

/// Single sign-on: the message must carry a `wsd:AuthToken` header whose
/// value is a known token. Services behind the dispatcher then trust the
/// dispatcher instead of authenticating themselves.
#[derive(Debug, Clone)]
pub struct TokenAuth {
    tokens: HashSet<String>,
}

impl TokenAuth {
    /// Builds the token set.
    pub fn new(tokens: impl IntoIterator<Item = impl Into<String>>) -> Self {
        TokenAuth {
            tokens: tokens.into_iter().map(Into::into).collect(),
        }
    }

    /// Reads the token header from an envelope.
    pub fn token_of(env: &Envelope) -> Option<String> {
        env.find_header(Some(WSD_NS), "AuthToken").map(|h| h.text())
    }
}

impl SecurityPolicy for TokenAuth {
    fn inspect(&self, _len: usize, env: &Envelope) -> Result<(), WsdError> {
        match Self::token_of(env) {
            Some(t) if self.tokens.contains(&t) => Ok(()),
            Some(_) => Err(WsdError::Rejected("invalid auth token".to_string())),
            None => Err(WsdError::Rejected("missing wsd:AuthToken header".to_string())),
        }
    }
    fn name(&self) -> &'static str {
        "token-auth"
    }
}

/// Applies a list of policies in order; the first rejection wins.
pub struct PolicyChain {
    policies: Vec<Box<dyn SecurityPolicy>>,
}

impl Default for PolicyChain {
    fn default() -> Self {
        Self::new()
    }
}

impl PolicyChain {
    /// An empty (accept-everything) chain.
    pub fn new() -> Self {
        PolicyChain {
            policies: Vec::new(),
        }
    }

    /// Appends a policy. Returns `self` for chaining.
    pub fn with(mut self, policy: impl SecurityPolicy + 'static) -> Self {
        self.policies.push(Box::new(policy));
        self
    }

    /// Runs every policy.
    pub fn inspect(&self, serialized_len: usize, env: &Envelope) -> Result<(), WsdError> {
        for p in &self.policies {
            p.inspect(serialized_len, env)?;
        }
        Ok(())
    }

    /// Number of policies installed.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }
}

/// Attaches an auth-token header to an envelope (client side of single
/// sign-on).
pub fn attach_token(env: &mut Envelope, token: &str) {
    env.remove_headers(Some(WSD_NS), "AuthToken");
    env.headers.push(
        wsd_xml::Element::new_ns(Some("wsd"), "AuthToken", WSD_NS)
            .declare_namespace(Some("wsd"), WSD_NS)
            .with_text(token),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsd_soap::{rpc, SoapVersion};
    use wsd_wsa::WsaHeaders;

    fn env() -> Envelope {
        rpc::echo_request(SoapVersion::V11, "x")
    }

    #[test]
    fn allow_all_accepts() {
        assert!(AllowAll.inspect(10_000_000, &env()).is_ok());
    }

    #[test]
    fn max_size_enforced() {
        let p = MaxSize(100);
        assert!(p.inspect(100, &env()).is_ok());
        assert!(matches!(
            p.inspect(101, &env()),
            Err(WsdError::Rejected(_))
        ));
    }

    #[test]
    fn require_action_checks_header() {
        let p = RequireAction::new(["urn:wsd:echo:echo"]);
        let mut e = env();
        assert!(p.inspect(0, &e).is_err(), "missing action must fail");
        WsaHeaders::new().action("urn:wsd:echo:echo").apply(&mut e);
        assert!(p.inspect(0, &e).is_ok());
        WsaHeaders::new().action("urn:evil").apply(&mut e);
        assert!(p.inspect(0, &e).is_err());
    }

    #[test]
    fn token_auth_accepts_known_token_only() {
        let p = TokenAuth::new(["secret-1", "secret-2"]);
        let mut e = env();
        assert!(p.inspect(0, &e).is_err());
        attach_token(&mut e, "secret-2");
        assert!(p.inspect(0, &e).is_ok());
        attach_token(&mut e, "wrong");
        assert!(p.inspect(0, &e).is_err());
    }

    #[test]
    fn attach_token_replaces_previous() {
        let mut e = env();
        attach_token(&mut e, "a");
        attach_token(&mut e, "b");
        assert_eq!(TokenAuth::token_of(&e).as_deref(), Some("b"));
        // Survives serialization.
        let reparsed = Envelope::parse(&e.to_xml()).unwrap();
        assert_eq!(TokenAuth::token_of(&reparsed).as_deref(), Some("b"));
    }

    #[test]
    fn chain_applies_in_order() {
        let chain = PolicyChain::new()
            .with(MaxSize(1000))
            .with(TokenAuth::new(["t"]));
        let mut e = env();
        attach_token(&mut e, "t");
        assert!(chain.inspect(500, &e).is_ok());
        assert!(chain.inspect(5000, &e).is_err()); // size first
        let plain = env();
        assert!(chain.inspect(10, &plain).is_err()); // then token
        assert_eq!(chain.len(), 2);
        assert!(!chain.is_empty());
    }
}
