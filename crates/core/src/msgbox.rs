//! WS-MsgBox: the "post-office mailbox" store (paper §3, Figure 2).
//!
//! A client with no network endpoint creates a mailbox, hands the mailbox
//! address out as its `wsa:ReplyTo`, then polls for messages over plain
//! RPC (which works from behind any firewall). When done it destroys the
//! box "to free memory space in the WS-MsgBox service implementation".
//!
//! Implemented future-work items: per-mailbox **access keys** (the paper:
//! "currently the message box has unique hard to guess address but that
//! is the only protection" — we add a secret key checked on fetch and
//! destroy) and **message expiration** (TTL cleanup).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use wsd_concurrent::ShardedMap;
use wsd_soap::{rpc::RpcCall, Envelope, Fault, FaultCode, SoapVersion};
use wsd_store::{DurableMsgBox, FsStorage, MemStorage, Storage, StoreError};
use wsd_telemetry::Scope;
use wsd_wsa::MsgIdGen;

use crate::config::{MailboxBackend, MsgBoxConfig};

/// Namespace of the WS-MsgBox SOAP operations.
pub const MSGBOX_NS: &str = "urn:wsd:msgbox";

/// Tenant every mailbox is billed to until the facade grows multi-tenant
/// routing; the durable backend's per-tenant quota then caps the whole
/// store.
const TENANT: &str = "default";

/// Mailbox errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsgBoxError {
    /// No mailbox with that id (or it was destroyed).
    NoSuchBox,
    /// Wrong access key.
    WrongKey,
    /// The mailbox hit its stored-message cap (memory backend) or the
    /// tenant's byte quota (durable backend).
    Full,
    /// The durable backend's WAL failed (disk error).
    Storage(String),
}

impl std::fmt::Display for MsgBoxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsgBoxError::NoSuchBox => f.write_str("no such mailbox"),
            MsgBoxError::WrongKey => f.write_str("wrong mailbox access key"),
            MsgBoxError::Full => f.write_str("mailbox full"),
            MsgBoxError::Storage(e) => write!(f, "mailbox storage failure: {e}"),
        }
    }
}

fn map_store_err(e: StoreError) -> MsgBoxError {
    match e {
        StoreError::NoSuchBox => MsgBoxError::NoSuchBox,
        StoreError::WrongKey => MsgBoxError::WrongKey,
        StoreError::QuotaExceeded => MsgBoxError::Full,
        StoreError::Io(e) => MsgBoxError::Storage(e),
    }
}

impl std::error::Error for MsgBoxError {}

/// One stored message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredMessage {
    /// The serialized envelope.
    pub body: String,
    /// Deposit time (µs, caller's clock).
    pub received_at: u64,
    /// Drop-dead time (µs).
    pub expires_at: u64,
}

#[derive(Debug, Clone)]
struct Mailbox {
    key: String,
    messages: VecDeque<StoredMessage>,
    created_at: u64,
}

/// What actually holds the messages.
enum Backing {
    /// The paper's RAM-only store: a sharded map of mailboxes plus a
    /// resident-byte counter (so the §4.3.2 memory wall is observable).
    Memory {
        boxes: ShardedMap<String, Mailbox>,
        resident: AtomicU64,
    },
    /// WAL-backed durable store (boxed: much larger than `Memory`).
    Durable(Box<DurableMsgBox>),
}

/// The mailbox store. Thread-safe; time is supplied by the caller in
/// microseconds so both runtimes share it.
pub struct MsgBoxStore {
    backing: Backing,
    ids: MsgIdGen,
    config: MsgBoxConfig,
}

impl MsgBoxStore {
    /// An empty store with no telemetry.
    pub fn new(config: MsgBoxConfig, seed: u64) -> Self {
        Self::with_telemetry(config, seed, &Scope::noop())
    }

    /// An empty store; the durable backend hangs its WAL metrics off
    /// `scope`. Opening the durable backend replays any WAL already in
    /// `dir`, so messages acknowledged before a crash are back.
    ///
    /// Panics if the durable backend cannot open or repair its WAL —
    /// a store that cannot promise durability must not start.
    pub fn with_telemetry(config: MsgBoxConfig, seed: u64, scope: &Scope) -> Self {
        let backing = match &config.backend {
            MailboxBackend::Memory => Backing::Memory {
                boxes: ShardedMap::new(),
                resident: AtomicU64::new(0),
            },
            MailboxBackend::Durable { dir, store } => {
                let storage: Box<dyn Storage> = match dir {
                    Some(d) => Box::new(
                        FsStorage::open(d.clone()).expect("durable mailbox WAL directory"),
                    ),
                    None => Box::new(MemStorage::new()),
                };
                let (durable, _report) =
                    DurableMsgBox::open(store.clone(), storage, scope, 0)
                        .expect("durable mailbox WAL recovery");
                Backing::Durable(Box::new(durable))
            }
        };
        MsgBoxStore {
            backing,
            ids: MsgIdGen::new(seed),
            config,
        }
    }

    /// Creates a mailbox; returns `(mailbox id, access key)`.
    pub fn create(&self, now: u64) -> (String, String) {
        let id = format!("mbox-{}", &self.ids.next_id()[5..]);
        let key = format!("key-{}", &self.ids.next_id()[5..]);
        match &self.backing {
            Backing::Memory { boxes, .. } => {
                boxes.insert(
                    id.clone(),
                    Mailbox {
                        key: key.clone(),
                        messages: VecDeque::new(),
                        created_at: now,
                    },
                );
            }
            Backing::Durable(store) => {
                store
                    .create(&id, &key, TENANT, now)
                    .expect("durable mailbox create");
            }
        }
        (id, key)
    }

    /// Deposits a serialized envelope into a mailbox. Anyone may deposit
    /// (that is the point — services and dispatchers deliver here); only
    /// fetching needs the key.
    pub fn deposit(&self, id: &str, body: String, now: u64) -> Result<(), MsgBoxError> {
        let ttl = self.config.message_ttl.as_micros() as u64;
        let expires_at = now.saturating_add(ttl);
        match &self.backing {
            Backing::Memory { boxes, resident } => {
                let cap = self.config.max_messages_per_box;
                let len = body.len() as u64;
                let mut result = Err(MsgBoxError::NoSuchBox);
                let mut pruned = 0;
                boxes.update(id, |mbox| {
                    pruned = prune(mbox, now);
                    if mbox.messages.len() >= cap {
                        result = Err(MsgBoxError::Full);
                    } else {
                        mbox.messages.push_back(StoredMessage {
                            body,
                            received_at: now,
                            expires_at,
                        });
                        result = Ok(());
                    }
                });
                if result.is_ok() {
                    resident.fetch_add(len, Ordering::Relaxed);
                }
                resident.fetch_sub(pruned, Ordering::Relaxed);
                result
            }
            Backing::Durable(store) => store
                .deposit(id, body, now, expires_at)
                .map_err(map_store_err),
        }
    }

    /// Fetches up to `max` messages in arrival order, removing them.
    /// With the durable backend the removal is logged and fsynced
    /// *before* the messages are returned: pickup is at-most-once even
    /// across a crash.
    pub fn fetch(
        &self,
        id: &str,
        key: &str,
        max: usize,
        now: u64,
    ) -> Result<Vec<StoredMessage>, MsgBoxError> {
        match &self.backing {
            Backing::Memory { boxes, resident } => {
                let mut result = Err(MsgBoxError::NoSuchBox);
                let mut freed = 0;
                boxes.update(id, |mbox| {
                    if mbox.key != key {
                        result = Err(MsgBoxError::WrongKey);
                        return;
                    }
                    freed = prune(mbox, now);
                    let n = max.min(mbox.messages.len());
                    let got: Vec<StoredMessage> = mbox.messages.drain(..n).collect();
                    freed += got.iter().map(|m| m.body.len() as u64).sum::<u64>();
                    result = Ok(got);
                });
                resident.fetch_sub(freed, Ordering::Relaxed);
                result
            }
            Backing::Durable(store) => Ok(store
                .fetch(id, key, max, now)
                .map_err(map_store_err)?
                .into_iter()
                .map(|m| StoredMessage {
                    body: m.body,
                    received_at: m.received_at,
                    expires_at: m.expires_at,
                })
                .collect()),
        }
    }

    /// Number of messages waiting (after expiry pruning).
    pub fn len(&self, id: &str, now: u64) -> Result<usize, MsgBoxError> {
        match &self.backing {
            Backing::Memory { boxes, resident } => {
                let mut result = Err(MsgBoxError::NoSuchBox);
                let mut pruned = 0;
                boxes.update(id, |mbox| {
                    pruned = prune(mbox, now);
                    result = Ok(mbox.messages.len());
                });
                resident.fetch_sub(pruned, Ordering::Relaxed);
                result
            }
            Backing::Durable(store) => store.len(id, now).map_err(map_store_err),
        }
    }

    /// Destroys a mailbox, freeing its storage.
    pub fn destroy(&self, id: &str, key: &str) -> Result<(), MsgBoxError> {
        match &self.backing {
            Backing::Memory { boxes, resident } => match boxes.get(id) {
                None => Err(MsgBoxError::NoSuchBox),
                Some(mbox) if mbox.key != key => Err(MsgBoxError::WrongKey),
                Some(_) => {
                    if let Some(mbox) = boxes.remove(id) {
                        let freed: u64 =
                            mbox.messages.iter().map(|m| m.body.len() as u64).sum();
                        resident.fetch_sub(freed, Ordering::Relaxed);
                    }
                    Ok(())
                }
            },
            Backing::Durable(store) => store.destroy(id, key).map_err(map_store_err),
        }
    }

    /// Whether a mailbox exists.
    pub fn exists(&self, id: &str) -> bool {
        match &self.backing {
            Backing::Memory { boxes, .. } => boxes.contains_key(id),
            Backing::Durable(store) => store.exists(id),
        }
    }

    /// Number of live mailboxes.
    pub fn box_count(&self) -> usize {
        match &self.backing {
            Backing::Memory { boxes, .. } => boxes.len(),
            Backing::Durable(store) => store.box_count(),
        }
    }

    /// Drops expired messages everywhere; returns how many were dropped.
    pub fn expire_all(&self, now: u64) -> usize {
        match &self.backing {
            Backing::Memory { boxes, resident } => {
                let mut dropped = 0;
                let mut freed = 0;
                for id in boxes.keys() {
                    boxes.update(&id, |mbox| {
                        let before = mbox.messages.len();
                        freed += prune(mbox, now);
                        dropped += before - mbox.messages.len();
                    });
                }
                resident.fetch_sub(freed, Ordering::Relaxed);
                dropped
            }
            Backing::Durable(store) => store.expire_all(now),
        }
    }

    /// Age of a mailbox in µs, if it exists.
    pub fn age(&self, id: &str, now: u64) -> Option<u64> {
        match &self.backing {
            Backing::Memory { boxes, .. } => {
                boxes.get(id).map(|m| now.saturating_sub(m.created_at))
            }
            Backing::Durable(store) => store.age(id, now),
        }
    }

    /// Message bytes held in RAM right now. For the memory backend this
    /// is every stored body — the quantity that hits the heap wall; the
    /// durable backend caps it at its configured memory budget.
    pub fn resident_bytes(&self) -> u64 {
        match &self.backing {
            Backing::Memory { resident, .. } => resident.load(Ordering::Relaxed),
            Backing::Durable(store) => store.resident_bytes(),
        }
    }

    /// Message bytes living only on disk (0 for the memory backend).
    pub fn spilled_bytes(&self) -> u64 {
        match &self.backing {
            Backing::Memory { .. } => 0,
            Backing::Durable(store) => store.spilled_bytes(),
        }
    }

    /// Cumulative WAL fsyncs (0 for the memory backend). The simulation
    /// turns deltas of this into virtual disk latency.
    pub fn wal_fsyncs(&self) -> u64 {
        match &self.backing {
            Backing::Memory { .. } => 0,
            Backing::Durable(store) => store.wal().fsync_count(),
        }
    }

    /// Cumulative WAL bytes appended (0 for the memory backend).
    pub fn wal_bytes_appended(&self) -> u64 {
        match &self.backing {
            Backing::Memory { .. } => 0,
            Backing::Durable(store) => store.wal().bytes_appended(),
        }
    }
}

fn prune(mbox: &mut Mailbox, now: u64) -> u64 {
    let mut dropped = 0;
    mbox.messages.retain(|m| {
        if m.expires_at > now {
            true
        } else {
            dropped += m.body.len() as u64;
            false
        }
    });
    dropped
}

// ---------------------------------------------------------------------
// SOAP facade: create / fetch / destroy as RPC operations, so clients
// interact with the store through ordinary SOAP-RPC (paper: "All
// interactions between clients and the WS-MsgBox are RPC").
// ---------------------------------------------------------------------

/// Handles one WS-MsgBox RPC envelope, producing the response envelope.
pub fn handle_soap(store: &MsgBoxStore, env: &Envelope, now: u64) -> Envelope {
    let version = env.version;
    let call = match RpcCall::from_envelope(env) {
        Ok(c) if c.namespace == MSGBOX_NS => c,
        Ok(_) => return fault(version, FaultCode::Sender, "not a WS-MsgBox operation"),
        Err(e) => return fault(version, FaultCode::Sender, &e.to_string()),
    };
    match call.operation.as_str() {
        "create" => {
            let (id, key) = store.create(now);
            let op = wsd_xml::Element::new_ns(Some("m"), "createResponse", MSGBOX_NS)
                .declare_namespace(Some("m"), MSGBOX_NS)
                .with_child(wsd_xml::Element::new("boxId").with_text(id))
                .with_child(wsd_xml::Element::new("accessKey").with_text(key));
            Envelope::request(version, op)
        }
        "fetch" => {
            let id = call.param("boxId").unwrap_or_default();
            let key = call.param("accessKey").unwrap_or_default();
            let max: usize = call
                .param("max")
                .and_then(|m| m.parse().ok())
                .unwrap_or(usize::MAX);
            match store.fetch(id, key, max, now) {
                Ok(messages) => {
                    let mut op = wsd_xml::Element::new_ns(Some("m"), "fetchResponse", MSGBOX_NS)
                        .declare_namespace(Some("m"), MSGBOX_NS);
                    for m in messages {
                        // Stored envelopes nest as CDATA so arbitrary XML
                        // payloads survive unescaped inspection.
                        let mut holder = wsd_xml::Element::new("message");
                        holder.children.push(wsd_xml::Node::CData(m.body));
                        op = op.with_child(holder);
                    }
                    Envelope::request(version, op)
                }
                Err(e) => fault(version, FaultCode::Sender, &e.to_string()),
            }
        }
        "destroy" => {
            let id = call.param("boxId").unwrap_or_default();
            let key = call.param("accessKey").unwrap_or_default();
            match store.destroy(id, key) {
                Ok(()) => {
                    let op = wsd_xml::Element::new_ns(Some("m"), "destroyResponse", MSGBOX_NS)
                        .declare_namespace(Some("m"), MSGBOX_NS);
                    Envelope::request(version, op)
                }
                Err(e) => fault(version, FaultCode::Sender, &e.to_string()),
            }
        }
        other => fault(
            version,
            FaultCode::Sender,
            &format!("unknown WS-MsgBox operation {other:?}"),
        ),
    }
}

fn fault(version: SoapVersion, code: FaultCode, reason: &str) -> Envelope {
    Envelope::fault(version, Fault::new(code, reason))
}

/// Client-side helpers building the RPC requests [`handle_soap`] serves.
pub mod ops {
    use super::MSGBOX_NS;
    use wsd_soap::{rpc::RpcCall, Envelope, SoapVersion};

    /// `create` request.
    pub fn create(version: SoapVersion) -> Envelope {
        RpcCall::new(MSGBOX_NS, "create").to_envelope(version)
    }

    /// `fetch` request.
    pub fn fetch(version: SoapVersion, box_id: &str, key: &str, max: usize) -> Envelope {
        RpcCall::new(MSGBOX_NS, "fetch")
            .with_param("boxId", box_id)
            .with_param("accessKey", key)
            .with_param("max", max.to_string())
            .to_envelope(version)
    }

    /// `destroy` request.
    pub fn destroy(version: SoapVersion, box_id: &str, key: &str) -> Envelope {
        RpcCall::new(MSGBOX_NS, "destroy")
            .with_param("boxId", box_id)
            .with_param("accessKey", key)
            .to_envelope(version)
    }

    /// Reads `(boxId, accessKey)` out of a `createResponse`.
    pub fn parse_create_response(env: &Envelope) -> Option<(String, String)> {
        let op = env.payload()?.first()?;
        let id = op.find_child(None, "boxId")?.text();
        let key = op.find_child(None, "accessKey")?.text();
        Some((id, key))
    }

    /// Reads the stored messages out of a `fetchResponse`.
    pub fn parse_fetch_response(env: &Envelope) -> Option<Vec<String>> {
        let op = env.payload()?.first()?;
        if op.name.local != "fetchResponse" {
            return None;
        }
        Some(
            op.find_children(None, "message")
                .map(|m| m.text())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn store() -> MsgBoxStore {
        MsgBoxStore::new(MsgBoxConfig::default(), 42)
    }

    #[test]
    fn create_deposit_fetch_destroy_cycle() {
        let s = store();
        let (id, key) = s.create(0);
        assert!(s.exists(&id));
        s.deposit(&id, "<m1/>".into(), 10).unwrap();
        s.deposit(&id, "<m2/>".into(), 20).unwrap();
        assert_eq!(s.len(&id, 30).unwrap(), 2);
        let got = s.fetch(&id, &key, 10, 30).unwrap();
        assert_eq!(
            got.iter().map(|m| m.body.as_str()).collect::<Vec<_>>(),
            vec!["<m1/>", "<m2/>"]
        );
        assert_eq!(s.len(&id, 30).unwrap(), 0);
        s.destroy(&id, &key).unwrap();
        assert!(!s.exists(&id));
        assert_eq!(s.deposit(&id, "x".into(), 40), Err(MsgBoxError::NoSuchBox));
    }

    #[test]
    fn fetch_respects_max_and_order() {
        let s = store();
        let (id, key) = s.create(0);
        for i in 0..5 {
            s.deposit(&id, format!("m{i}"), i).unwrap();
        }
        let first = s.fetch(&id, &key, 2, 10).unwrap();
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].body, "m0");
        let rest = s.fetch(&id, &key, 100, 10).unwrap();
        assert_eq!(rest.len(), 3);
        assert_eq!(rest[0].body, "m2");
    }

    #[test]
    fn wrong_key_rejected_for_fetch_and_destroy() {
        let s = store();
        let (id, _key) = s.create(0);
        assert_eq!(s.fetch(&id, "bad", 1, 0), Err(MsgBoxError::WrongKey));
        assert_eq!(s.destroy(&id, "bad"), Err(MsgBoxError::WrongKey));
        assert!(s.exists(&id));
    }

    #[test]
    fn capacity_enforced() {
        let cfg = MsgBoxConfig {
            max_messages_per_box: 2,
            ..MsgBoxConfig::default()
        };
        let s = MsgBoxStore::new(cfg, 1);
        let (id, _) = s.create(0);
        s.deposit(&id, "a".into(), 0).unwrap();
        s.deposit(&id, "b".into(), 0).unwrap();
        assert_eq!(s.deposit(&id, "c".into(), 0), Err(MsgBoxError::Full));
    }

    #[test]
    fn expiry_drops_old_messages_only() {
        let cfg = MsgBoxConfig {
            message_ttl: Duration::from_micros(100),
            ..MsgBoxConfig::default()
        };
        let s = MsgBoxStore::new(cfg, 1);
        let (id, key) = s.create(0);
        s.deposit(&id, "old".into(), 0).unwrap();
        s.deposit(&id, "new".into(), 80).unwrap();
        // At t=100 the first expires (expires_at = 100), second survives.
        let got = s.fetch(&id, &key, 10, 100).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].body, "new");
    }

    #[test]
    fn expire_all_counts_drops() {
        let cfg = MsgBoxConfig {
            message_ttl: Duration::from_micros(50),
            ..MsgBoxConfig::default()
        };
        let s = MsgBoxStore::new(cfg, 1);
        let (a, _) = s.create(0);
        let (b, _) = s.create(0);
        s.deposit(&a, "1".into(), 0).unwrap();
        s.deposit(&b, "2".into(), 0).unwrap();
        s.deposit(&b, "3".into(), 40).unwrap(); // expires at 90
        assert_eq!(s.expire_all(55), 2);
        assert_eq!(s.expire_all(55), 0);
    }

    #[test]
    fn ids_and_keys_are_unique() {
        let s = store();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let (id, key) = s.create(0);
            assert!(seen.insert(id));
            assert!(seen.insert(key));
        }
        assert_eq!(s.box_count(), 100);
    }

    #[test]
    fn soap_create_fetch_destroy_round_trip() {
        use wsd_soap::SoapVersion::V11;
        let s = store();
        // create
        let resp = handle_soap(&s, &ops::create(V11), 0);
        let (id, key) = ops::parse_create_response(&resp).unwrap();
        // deposit directly (as a dispatcher would), then fetch via SOAP.
        s.deposit(&id, "<stored><xml/></stored>".into(), 5).unwrap();
        let resp = handle_soap(&s, &ops::fetch(V11, &id, &key, 10), 10);
        let messages = ops::parse_fetch_response(&resp).unwrap();
        assert_eq!(messages, vec!["<stored><xml/></stored>".to_string()]);
        // destroy
        let resp = handle_soap(&s, &ops::destroy(V11, &id, &key), 20);
        assert!(resp.as_fault().is_none());
        assert!(!s.exists(&id));
    }

    #[test]
    fn soap_fetch_survives_serialization() {
        use wsd_soap::SoapVersion::V11;
        let s = store();
        let resp = handle_soap(&s, &ops::create(V11), 0);
        let (id, key) = ops::parse_create_response(&resp).unwrap();
        let inner = wsd_soap::rpc::echo_response(V11, "hello").to_xml();
        s.deposit(&id, inner.clone(), 0).unwrap();
        let resp = handle_soap(&s, &ops::fetch(V11, &id, &key, 1), 0);
        let wire = resp.to_xml();
        let reparsed = Envelope::parse(&wire).unwrap();
        let messages = ops::parse_fetch_response(&reparsed).unwrap();
        assert_eq!(messages, vec![inner.clone()]);
        // The recovered message is itself a parseable envelope.
        let inner_env = Envelope::parse(&messages[0]).unwrap();
        assert_eq!(
            wsd_soap::rpc::parse_echo_response(&inner_env).unwrap(),
            "hello"
        );
    }

    #[test]
    fn soap_errors_become_faults() {
        use wsd_soap::SoapVersion::V11;
        let s = store();
        let resp = handle_soap(&s, &ops::fetch(V11, "nope", "k", 1), 0);
        assert!(resp.as_fault().is_some());
        let resp = handle_soap(
            &s,
            &RpcCall::new(MSGBOX_NS, "explode").to_envelope(V11),
            0,
        );
        assert!(resp.as_fault().unwrap().reason.contains("explode"));
        let resp = handle_soap(
            &s,
            &RpcCall::new("urn:other", "create").to_envelope(V11),
            0,
        );
        assert!(resp.as_fault().is_some());
    }

    #[test]
    fn memory_backend_tracks_resident_bytes() {
        let cfg = MsgBoxConfig {
            message_ttl: Duration::from_micros(100),
            ..MsgBoxConfig::default()
        };
        let s = MsgBoxStore::new(cfg, 1);
        let (id, key) = s.create(0);
        assert_eq!(s.resident_bytes(), 0);
        s.deposit(&id, "12345".into(), 0).unwrap();
        s.deposit(&id, "678".into(), 10).unwrap();
        assert_eq!(s.resident_bytes(), 8);
        s.fetch(&id, &key, 1, 20).unwrap();
        assert_eq!(s.resident_bytes(), 3);
        // Expiry pruning releases heap too (second deposit dies at 110).
        assert_eq!(s.expire_all(120), 1);
        assert_eq!(s.resident_bytes(), 0);
        s.deposit(&id, "zz".into(), 130).unwrap();
        s.destroy(&id, &key).unwrap();
        assert_eq!(s.resident_bytes(), 0);
        assert_eq!(s.spilled_bytes(), 0);
        assert_eq!(s.wal_fsyncs(), 0);
    }

    fn durable_config(dir: Option<std::path::PathBuf>) -> MsgBoxConfig {
        MsgBoxConfig {
            backend: MailboxBackend::Durable {
                dir,
                store: wsd_store::StoreConfig {
                    wal: wsd_store::WalConfig {
                        sync: wsd_store::SyncMode::Always,
                        ..wsd_store::WalConfig::default()
                    },
                    ..wsd_store::StoreConfig::default()
                },
            },
            ..MsgBoxConfig::default()
        }
    }

    #[test]
    fn durable_backend_survives_reopen() {
        let dir = std::env::temp_dir().join("wsd-core-durable-msgbox-test");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = durable_config(Some(dir.clone()));
        let s = MsgBoxStore::new(cfg.clone(), 42);
        let (id, key) = s.create(0);
        s.deposit(&id, "<durable/>".into(), 1).unwrap();
        s.deposit(&id, "<second/>".into(), 2).unwrap();
        assert_eq!(s.len(&id, 3).unwrap(), 2);
        drop(s);
        // A fresh store over the same directory replays the WAL.
        let s = MsgBoxStore::new(cfg.clone(), 43);
        assert!(s.exists(&id));
        let got = s.fetch(&id, &key, 10, 4).unwrap();
        assert_eq!(
            got.iter().map(|m| m.body.as_str()).collect::<Vec<_>>(),
            vec!["<durable/>", "<second/>"]
        );
        drop(s);
        // The pickup was logged before the messages were returned, so a
        // third incarnation must not re-deliver.
        let s = MsgBoxStore::new(cfg, 44);
        assert!(s.fetch(&id, &key, 10, 5).unwrap().is_empty());
        drop(s);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_backend_maps_quota_to_full() {
        let mut cfg = durable_config(None);
        if let MailboxBackend::Durable { store, .. } = &mut cfg.backend {
            store.quota_bytes_per_tenant = 4;
        }
        let s = MsgBoxStore::new(cfg, 7);
        let (id, _key) = s.create(0);
        assert_eq!(s.deposit(&id, "12345".into(), 1), Err(MsgBoxError::Full));
        s.deposit(&id, "1234".into(), 1).unwrap();
        assert_eq!(s.deposit("mbox-nope", "x".into(), 2), Err(MsgBoxError::NoSuchBox));
        assert!(s.wal_fsyncs() > 0);
        assert!(s.wal_bytes_appended() > 0);
    }

    #[test]
    fn concurrent_deposit_and_fetch_lose_nothing() {
        use std::sync::Arc;
        let s = Arc::new(store());
        let (id, key) = s.create(0);
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&s);
            let id = id.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    s.deposit(&id, format!("{t}-{i}"), 0).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let got = s.fetch(&id, &key, usize::MAX, 0).unwrap();
        assert_eq!(got.len(), 1000);
        let unique: std::collections::HashSet<_> = got.iter().map(|m| &m.body).collect();
        assert_eq!(unique.len(), 1000);
    }
}
