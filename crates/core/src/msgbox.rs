//! WS-MsgBox: the "post-office mailbox" store (paper §3, Figure 2).
//!
//! A client with no network endpoint creates a mailbox, hands the mailbox
//! address out as its `wsa:ReplyTo`, then polls for messages over plain
//! RPC (which works from behind any firewall). When done it destroys the
//! box "to free memory space in the WS-MsgBox service implementation".
//!
//! Implemented future-work items: per-mailbox **access keys** (the paper:
//! "currently the message box has unique hard to guess address but that
//! is the only protection" — we add a secret key checked on fetch and
//! destroy) and **message expiration** (TTL cleanup).

use std::collections::VecDeque;

use wsd_concurrent::ShardedMap;
use wsd_soap::{rpc::RpcCall, Envelope, Fault, FaultCode, SoapVersion};
use wsd_wsa::MsgIdGen;

use crate::config::MsgBoxConfig;

/// Namespace of the WS-MsgBox SOAP operations.
pub const MSGBOX_NS: &str = "urn:wsd:msgbox";

/// Mailbox errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsgBoxError {
    /// No mailbox with that id (or it was destroyed).
    NoSuchBox,
    /// Wrong access key.
    WrongKey,
    /// The mailbox hit its stored-message cap.
    Full,
}

impl std::fmt::Display for MsgBoxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsgBoxError::NoSuchBox => f.write_str("no such mailbox"),
            MsgBoxError::WrongKey => f.write_str("wrong mailbox access key"),
            MsgBoxError::Full => f.write_str("mailbox full"),
        }
    }
}

impl std::error::Error for MsgBoxError {}

/// One stored message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredMessage {
    /// The serialized envelope.
    pub body: String,
    /// Deposit time (µs, caller's clock).
    pub received_at: u64,
    /// Drop-dead time (µs).
    pub expires_at: u64,
}

#[derive(Debug, Clone)]
struct Mailbox {
    key: String,
    messages: VecDeque<StoredMessage>,
    created_at: u64,
}

/// The mailbox store. Thread-safe; time is supplied by the caller in
/// microseconds so both runtimes share it.
pub struct MsgBoxStore {
    boxes: ShardedMap<String, Mailbox>,
    ids: MsgIdGen,
    config: MsgBoxConfig,
}

impl MsgBoxStore {
    /// An empty store.
    pub fn new(config: MsgBoxConfig, seed: u64) -> Self {
        MsgBoxStore {
            boxes: ShardedMap::new(),
            ids: MsgIdGen::new(seed),
            config,
        }
    }

    /// Creates a mailbox; returns `(mailbox id, access key)`.
    pub fn create(&self, now: u64) -> (String, String) {
        let id = format!("mbox-{}", &self.ids.next_id()[5..]);
        let key = format!("key-{}", &self.ids.next_id()[5..]);
        self.boxes.insert(
            id.clone(),
            Mailbox {
                key: key.clone(),
                messages: VecDeque::new(),
                created_at: now,
            },
        );
        (id, key)
    }

    /// Deposits a serialized envelope into a mailbox. Anyone may deposit
    /// (that is the point — services and dispatchers deliver here); only
    /// fetching needs the key.
    pub fn deposit(&self, id: &str, body: String, now: u64) -> Result<(), MsgBoxError> {
        let cap = self.config.max_messages_per_box;
        let ttl = self.config.message_ttl.as_micros() as u64;
        let mut result = Err(MsgBoxError::NoSuchBox);
        self.boxes.update(id, |mbox| {
            prune(mbox, now);
            if mbox.messages.len() >= cap {
                result = Err(MsgBoxError::Full);
            } else {
                mbox.messages.push_back(StoredMessage {
                    body,
                    received_at: now,
                    expires_at: now.saturating_add(ttl),
                });
                result = Ok(());
            }
        });
        result
    }

    /// Fetches up to `max` messages in arrival order, removing them.
    pub fn fetch(
        &self,
        id: &str,
        key: &str,
        max: usize,
        now: u64,
    ) -> Result<Vec<StoredMessage>, MsgBoxError> {
        let mut result = Err(MsgBoxError::NoSuchBox);
        self.boxes.update(id, |mbox| {
            if mbox.key != key {
                result = Err(MsgBoxError::WrongKey);
                return;
            }
            prune(mbox, now);
            let n = max.min(mbox.messages.len());
            result = Ok(mbox.messages.drain(..n).collect());
        });
        result
    }

    /// Number of messages waiting (after expiry pruning).
    pub fn len(&self, id: &str, now: u64) -> Result<usize, MsgBoxError> {
        let mut result = Err(MsgBoxError::NoSuchBox);
        self.boxes.update(id, |mbox| {
            prune(mbox, now);
            result = Ok(mbox.messages.len());
        });
        result
    }

    /// Destroys a mailbox, freeing its storage.
    pub fn destroy(&self, id: &str, key: &str) -> Result<(), MsgBoxError> {
        match self.boxes.get(id) {
            None => Err(MsgBoxError::NoSuchBox),
            Some(mbox) if mbox.key != key => Err(MsgBoxError::WrongKey),
            Some(_) => {
                self.boxes.remove(id);
                Ok(())
            }
        }
    }

    /// Whether a mailbox exists.
    pub fn exists(&self, id: &str) -> bool {
        self.boxes.contains_key(id)
    }

    /// Number of live mailboxes.
    pub fn box_count(&self) -> usize {
        self.boxes.len()
    }

    /// Drops expired messages everywhere; returns how many were dropped.
    pub fn expire_all(&self, now: u64) -> usize {
        let mut dropped = 0;
        for id in self.boxes.keys() {
            self.boxes.update(&id, |mbox| {
                let before = mbox.messages.len();
                prune(mbox, now);
                dropped += before - mbox.messages.len();
            });
        }
        dropped
    }

    /// Age of a mailbox in µs, if it exists.
    pub fn age(&self, id: &str, now: u64) -> Option<u64> {
        self.boxes.get(id).map(|m| now.saturating_sub(m.created_at))
    }
}

fn prune(mbox: &mut Mailbox, now: u64) {
    mbox.messages.retain(|m| m.expires_at > now);
}

// ---------------------------------------------------------------------
// SOAP facade: create / fetch / destroy as RPC operations, so clients
// interact with the store through ordinary SOAP-RPC (paper: "All
// interactions between clients and the WS-MsgBox are RPC").
// ---------------------------------------------------------------------

/// Handles one WS-MsgBox RPC envelope, producing the response envelope.
pub fn handle_soap(store: &MsgBoxStore, env: &Envelope, now: u64) -> Envelope {
    let version = env.version;
    let call = match RpcCall::from_envelope(env) {
        Ok(c) if c.namespace == MSGBOX_NS => c,
        Ok(_) => return fault(version, FaultCode::Sender, "not a WS-MsgBox operation"),
        Err(e) => return fault(version, FaultCode::Sender, &e.to_string()),
    };
    match call.operation.as_str() {
        "create" => {
            let (id, key) = store.create(now);
            let op = wsd_xml::Element::new_ns(Some("m"), "createResponse", MSGBOX_NS)
                .declare_namespace(Some("m"), MSGBOX_NS)
                .with_child(wsd_xml::Element::new("boxId").with_text(id))
                .with_child(wsd_xml::Element::new("accessKey").with_text(key));
            Envelope::request(version, op)
        }
        "fetch" => {
            let id = call.param("boxId").unwrap_or_default();
            let key = call.param("accessKey").unwrap_or_default();
            let max: usize = call
                .param("max")
                .and_then(|m| m.parse().ok())
                .unwrap_or(usize::MAX);
            match store.fetch(id, key, max, now) {
                Ok(messages) => {
                    let mut op = wsd_xml::Element::new_ns(Some("m"), "fetchResponse", MSGBOX_NS)
                        .declare_namespace(Some("m"), MSGBOX_NS);
                    for m in messages {
                        // Stored envelopes nest as CDATA so arbitrary XML
                        // payloads survive unescaped inspection.
                        let mut holder = wsd_xml::Element::new("message");
                        holder.children.push(wsd_xml::Node::CData(m.body));
                        op = op.with_child(holder);
                    }
                    Envelope::request(version, op)
                }
                Err(e) => fault(version, FaultCode::Sender, &e.to_string()),
            }
        }
        "destroy" => {
            let id = call.param("boxId").unwrap_or_default();
            let key = call.param("accessKey").unwrap_or_default();
            match store.destroy(id, key) {
                Ok(()) => {
                    let op = wsd_xml::Element::new_ns(Some("m"), "destroyResponse", MSGBOX_NS)
                        .declare_namespace(Some("m"), MSGBOX_NS);
                    Envelope::request(version, op)
                }
                Err(e) => fault(version, FaultCode::Sender, &e.to_string()),
            }
        }
        other => fault(
            version,
            FaultCode::Sender,
            &format!("unknown WS-MsgBox operation {other:?}"),
        ),
    }
}

fn fault(version: SoapVersion, code: FaultCode, reason: &str) -> Envelope {
    Envelope::fault(version, Fault::new(code, reason))
}

/// Client-side helpers building the RPC requests [`handle_soap`] serves.
pub mod ops {
    use super::MSGBOX_NS;
    use wsd_soap::{rpc::RpcCall, Envelope, SoapVersion};

    /// `create` request.
    pub fn create(version: SoapVersion) -> Envelope {
        RpcCall::new(MSGBOX_NS, "create").to_envelope(version)
    }

    /// `fetch` request.
    pub fn fetch(version: SoapVersion, box_id: &str, key: &str, max: usize) -> Envelope {
        RpcCall::new(MSGBOX_NS, "fetch")
            .with_param("boxId", box_id)
            .with_param("accessKey", key)
            .with_param("max", max.to_string())
            .to_envelope(version)
    }

    /// `destroy` request.
    pub fn destroy(version: SoapVersion, box_id: &str, key: &str) -> Envelope {
        RpcCall::new(MSGBOX_NS, "destroy")
            .with_param("boxId", box_id)
            .with_param("accessKey", key)
            .to_envelope(version)
    }

    /// Reads `(boxId, accessKey)` out of a `createResponse`.
    pub fn parse_create_response(env: &Envelope) -> Option<(String, String)> {
        let op = env.payload()?.first()?;
        let id = op.find_child(None, "boxId")?.text();
        let key = op.find_child(None, "accessKey")?.text();
        Some((id, key))
    }

    /// Reads the stored messages out of a `fetchResponse`.
    pub fn parse_fetch_response(env: &Envelope) -> Option<Vec<String>> {
        let op = env.payload()?.first()?;
        if op.name.local != "fetchResponse" {
            return None;
        }
        Some(
            op.find_children(None, "message")
                .map(|m| m.text())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn store() -> MsgBoxStore {
        MsgBoxStore::new(MsgBoxConfig::default(), 42)
    }

    #[test]
    fn create_deposit_fetch_destroy_cycle() {
        let s = store();
        let (id, key) = s.create(0);
        assert!(s.exists(&id));
        s.deposit(&id, "<m1/>".into(), 10).unwrap();
        s.deposit(&id, "<m2/>".into(), 20).unwrap();
        assert_eq!(s.len(&id, 30).unwrap(), 2);
        let got = s.fetch(&id, &key, 10, 30).unwrap();
        assert_eq!(
            got.iter().map(|m| m.body.as_str()).collect::<Vec<_>>(),
            vec!["<m1/>", "<m2/>"]
        );
        assert_eq!(s.len(&id, 30).unwrap(), 0);
        s.destroy(&id, &key).unwrap();
        assert!(!s.exists(&id));
        assert_eq!(s.deposit(&id, "x".into(), 40), Err(MsgBoxError::NoSuchBox));
    }

    #[test]
    fn fetch_respects_max_and_order() {
        let s = store();
        let (id, key) = s.create(0);
        for i in 0..5 {
            s.deposit(&id, format!("m{i}"), i).unwrap();
        }
        let first = s.fetch(&id, &key, 2, 10).unwrap();
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].body, "m0");
        let rest = s.fetch(&id, &key, 100, 10).unwrap();
        assert_eq!(rest.len(), 3);
        assert_eq!(rest[0].body, "m2");
    }

    #[test]
    fn wrong_key_rejected_for_fetch_and_destroy() {
        let s = store();
        let (id, _key) = s.create(0);
        assert_eq!(s.fetch(&id, "bad", 1, 0), Err(MsgBoxError::WrongKey));
        assert_eq!(s.destroy(&id, "bad"), Err(MsgBoxError::WrongKey));
        assert!(s.exists(&id));
    }

    #[test]
    fn capacity_enforced() {
        let cfg = MsgBoxConfig {
            max_messages_per_box: 2,
            ..MsgBoxConfig::default()
        };
        let s = MsgBoxStore::new(cfg, 1);
        let (id, _) = s.create(0);
        s.deposit(&id, "a".into(), 0).unwrap();
        s.deposit(&id, "b".into(), 0).unwrap();
        assert_eq!(s.deposit(&id, "c".into(), 0), Err(MsgBoxError::Full));
    }

    #[test]
    fn expiry_drops_old_messages_only() {
        let cfg = MsgBoxConfig {
            message_ttl: Duration::from_micros(100),
            ..MsgBoxConfig::default()
        };
        let s = MsgBoxStore::new(cfg, 1);
        let (id, key) = s.create(0);
        s.deposit(&id, "old".into(), 0).unwrap();
        s.deposit(&id, "new".into(), 80).unwrap();
        // At t=100 the first expires (expires_at = 100), second survives.
        let got = s.fetch(&id, &key, 10, 100).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].body, "new");
    }

    #[test]
    fn expire_all_counts_drops() {
        let cfg = MsgBoxConfig {
            message_ttl: Duration::from_micros(50),
            ..MsgBoxConfig::default()
        };
        let s = MsgBoxStore::new(cfg, 1);
        let (a, _) = s.create(0);
        let (b, _) = s.create(0);
        s.deposit(&a, "1".into(), 0).unwrap();
        s.deposit(&b, "2".into(), 0).unwrap();
        s.deposit(&b, "3".into(), 40).unwrap(); // expires at 90
        assert_eq!(s.expire_all(55), 2);
        assert_eq!(s.expire_all(55), 0);
    }

    #[test]
    fn ids_and_keys_are_unique() {
        let s = store();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let (id, key) = s.create(0);
            assert!(seen.insert(id));
            assert!(seen.insert(key));
        }
        assert_eq!(s.box_count(), 100);
    }

    #[test]
    fn soap_create_fetch_destroy_round_trip() {
        use wsd_soap::SoapVersion::V11;
        let s = store();
        // create
        let resp = handle_soap(&s, &ops::create(V11), 0);
        let (id, key) = ops::parse_create_response(&resp).unwrap();
        // deposit directly (as a dispatcher would), then fetch via SOAP.
        s.deposit(&id, "<stored><xml/></stored>".into(), 5).unwrap();
        let resp = handle_soap(&s, &ops::fetch(V11, &id, &key, 10), 10);
        let messages = ops::parse_fetch_response(&resp).unwrap();
        assert_eq!(messages, vec!["<stored><xml/></stored>".to_string()]);
        // destroy
        let resp = handle_soap(&s, &ops::destroy(V11, &id, &key), 20);
        assert!(resp.as_fault().is_none());
        assert!(!s.exists(&id));
    }

    #[test]
    fn soap_fetch_survives_serialization() {
        use wsd_soap::SoapVersion::V11;
        let s = store();
        let resp = handle_soap(&s, &ops::create(V11), 0);
        let (id, key) = ops::parse_create_response(&resp).unwrap();
        let inner = wsd_soap::rpc::echo_response(V11, "hello").to_xml();
        s.deposit(&id, inner.clone(), 0).unwrap();
        let resp = handle_soap(&s, &ops::fetch(V11, &id, &key, 1), 0);
        let wire = resp.to_xml();
        let reparsed = Envelope::parse(&wire).unwrap();
        let messages = ops::parse_fetch_response(&reparsed).unwrap();
        assert_eq!(messages, vec![inner.clone()]);
        // The recovered message is itself a parseable envelope.
        let inner_env = Envelope::parse(&messages[0]).unwrap();
        assert_eq!(
            wsd_soap::rpc::parse_echo_response(&inner_env).unwrap(),
            "hello"
        );
    }

    #[test]
    fn soap_errors_become_faults() {
        use wsd_soap::SoapVersion::V11;
        let s = store();
        let resp = handle_soap(&s, &ops::fetch(V11, "nope", "k", 1), 0);
        assert!(resp.as_fault().is_some());
        let resp = handle_soap(
            &s,
            &RpcCall::new(MSGBOX_NS, "explode").to_envelope(V11),
            0,
        );
        assert!(resp.as_fault().unwrap().reason.contains("explode"));
        let resp = handle_soap(
            &s,
            &RpcCall::new("urn:other", "create").to_envelope(V11),
            0,
        );
        assert!(resp.as_fault().is_some());
    }

    #[test]
    fn concurrent_deposit_and_fetch_lose_nothing() {
        use std::sync::Arc;
        let s = Arc::new(store());
        let (id, key) = s.create(0);
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&s);
            let id = id.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    s.deposit(&id, format!("{t}-{i}"), 0).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let got = s.fetch(&id, &key, usize::MAX, 0).unwrap();
        assert_eq!(got.len(), 1000);
        let unique: std::collections::HashSet<_> = got.iter().map(|m| &m.body).collect();
        assert_eq!(unique.len(), 1000);
    }
}
