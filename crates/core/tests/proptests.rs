//! Property-based invariants for the dispatcher core.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use wsd_core::config::MsgBoxConfig;
use wsd_core::msg::{MsgCore, Routed};
use wsd_core::msgbox::MsgBoxStore;
use wsd_core::registry::{BalanceStrategy, Registry};
use wsd_core::url::Url;
use wsd_soap::{rpc, SoapVersion};
use wsd_wsa::{EndpointReference, WsaHeaders};

// ---------------------------------------------------------------------
// MsgBoxStore model test: behaves like a map of queues with access keys.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum BoxOp {
    Create,
    Deposit { box_ix: usize, body: String },
    Fetch { box_ix: usize, wrong_key: bool, max: usize },
    Destroy { box_ix: usize, wrong_key: bool },
}

fn box_op() -> impl Strategy<Value = BoxOp> {
    prop_oneof![
        2 => Just(BoxOp::Create),
        5 => (0usize..6, "[a-z]{1,12}").prop_map(|(box_ix, body)| BoxOp::Deposit { box_ix, body }),
        4 => (0usize..6, any::<bool>(), 1usize..8)
            .prop_map(|(box_ix, wrong_key, max)| BoxOp::Fetch { box_ix, wrong_key, max }),
        1 => (0usize..6, any::<bool>()).prop_map(|(box_ix, wrong_key)| BoxOp::Destroy { box_ix, wrong_key }),
    ]
}

proptest! {
    #[test]
    fn msgbox_store_matches_queue_model(ops in prop::collection::vec(box_op(), 0..120)) {
        let store = MsgBoxStore::new(MsgBoxConfig::default(), 7);
        let mut boxes: Vec<(String, String)> = Vec::new(); // (id, key)
        let mut model: HashMap<String, Vec<String>> = HashMap::new();
        let mut now = 0u64;
        for op in ops {
            now += 1;
            match op {
                BoxOp::Create => {
                    let (id, key) = store.create(now);
                    model.insert(id.clone(), Vec::new());
                    boxes.push((id, key));
                }
                BoxOp::Deposit { box_ix, body } => {
                    if boxes.is_empty() { continue; }
                    let (id, _) = &boxes[box_ix % boxes.len()];
                    let expect_ok = model.contains_key(id);
                    let got = store.deposit(id, body.clone(), now);
                    prop_assert_eq!(got.is_ok(), expect_ok);
                    if expect_ok {
                        model.get_mut(id).unwrap().push(body);
                    }
                }
                BoxOp::Fetch { box_ix, wrong_key, max } => {
                    if boxes.is_empty() { continue; }
                    let (id, key) = &boxes[box_ix % boxes.len()];
                    let key = if wrong_key { "bogus" } else { key.as_str() };
                    let got = store.fetch(id, key, max, now);
                    match (model.get_mut(id), wrong_key) {
                        (Some(queue), false) => {
                            let fetched = got.unwrap();
                            let expect: Vec<String> =
                                queue.drain(..max.min(queue.len())).collect();
                            let got_bodies: Vec<String> =
                                fetched.into_iter().map(|m| m.body).collect();
                            prop_assert_eq!(got_bodies, expect);
                        }
                        (Some(_), true) => prop_assert!(got.is_err()),
                        (None, _) => prop_assert!(got.is_err()),
                    }
                }
                BoxOp::Destroy { box_ix, wrong_key } => {
                    if boxes.is_empty() { continue; }
                    let (id, key) = &boxes[box_ix % boxes.len()];
                    let key = if wrong_key { "bogus" } else { key.as_str() };
                    let got = store.destroy(id, key);
                    match (model.contains_key(id), wrong_key) {
                        (true, false) => {
                            prop_assert!(got.is_ok());
                            model.remove(id);
                        }
                        (true, true) => prop_assert!(got.is_err()),
                        (false, _) => prop_assert!(got.is_err()),
                    }
                }
            }
            prop_assert_eq!(store.box_count(), model.len());
        }
    }
}

// ---------------------------------------------------------------------
// MsgCore: every forwarded request's reply routes back, exactly once.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn every_forward_routes_its_reply_exactly_once(
        n in 1usize..20,
        reply_hosts in prop::collection::vec("[a-z]{1,8}", 1..4),
    ) {
        let registry = Arc::new(Registry::new());
        registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
        let core = MsgCore::new(registry, "http://dispatcher/msg", 5);
        let mut ids = Vec::new();
        for i in 0..n {
            let mut env = rpc::echo_request(SoapVersion::V11, "x");
            let host = &reply_hosts[i % reply_hosts.len()];
            WsaHeaders::new()
                .to("http://dispatcher/svc/Echo")
                .reply_to(EndpointReference::new(format!("http://{host}:9000/cb")))
                .message_id(format!("uuid:{i}"))
                .apply(&mut env);
            match core.route(env, 483, i as u64).unwrap() {
                Routed::Forward { to, .. } => prop_assert_eq!(to.host.as_str(), "ws"),
                other => prop_assert!(false, "expected Forward, got {:?}", other),
            }
            ids.push((format!("uuid:{i}"), reply_hosts[i % reply_hosts.len()].clone()));
        }
        prop_assert_eq!(core.pending_routes(), n);
        // Replies in arbitrary (here reversed) order each route to their
        // original client; a second identical reply has no route left.
        for (id, host) in ids.iter().rev() {
            let mut reply = rpc::echo_response(SoapVersion::V11, "x");
            WsaHeaders::new().relates_to(id.clone()).apply(&mut reply);
            match core.route(reply.clone(), 483, 0) {
                Ok(Routed::Reply { to, .. }) => {
                    prop_assert_eq!(&to.host, host);
                }
                other => prop_assert!(false, "reply must route: {:?}", other),
            }
            prop_assert!(core.route(reply, 483, 0).is_err(), "route must be consumed");
        }
        prop_assert_eq!(core.pending_routes(), 0);
    }
}

// ---------------------------------------------------------------------
// Registry: lookups always return a registered, live endpoint, whatever
// the strategy; round-robin visits everything.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn lookup_always_returns_registered_live_endpoint(
        endpoints in prop::collection::vec("[a-z]{1,8}", 1..6),
        dead_ix in any::<prop::sample::Index>(),
        strategy_ix in 0usize..3,
    ) {
        let strategy = [
            BalanceStrategy::First,
            BalanceStrategy::RoundRobin,
            BalanceStrategy::LeastPending,
        ][strategy_ix];
        let registry = Registry::new().with_strategy(strategy);
        let urls: Vec<Url> = endpoints
            .iter()
            .enumerate()
            .map(|(i, h)| Url::parse(&format!("http://{h}-{i}/s")).unwrap())
            .collect();
        registry.register_many("S", urls.clone(), None);
        // Mark one endpoint dead (if there are at least two).
        let dead = if urls.len() > 1 {
            let d = urls[dead_ix.index(urls.len())].clone();
            registry.mark_down("S", &d);
            Some(d)
        } else {
            None
        };
        let mut seen = std::collections::HashSet::new();
        for _ in 0..urls.len() * 3 {
            let got = registry.lookup("S").unwrap();
            prop_assert!(urls.contains(&got));
            prop_assert_ne!(Some(&got), dead.as_ref());
            seen.insert(got);
        }
        if strategy == BalanceStrategy::RoundRobin {
            let live = urls.len() - usize::from(dead.is_some());
            prop_assert_eq!(seen.len(), live, "round robin must visit all live endpoints");
        }
    }
}
