#!/usr/bin/env sh
# Offline-safe verification: build, test, lint. No network access needed
# (all dependencies are vendored path crates).
#
# Modes:
#   scripts/verify.sh                  invariant lint + build + test + clippy
#   scripts/verify.sh lint             just the invariant checks: wsd-lint
#                                      against lint-baseline.json (with a
#                                      500ms analysis-time budget — the
#                                      linter's own performance is part of
#                                      the contract), wsd-lint linting
#                                      itself (--self, full rule set, zero
#                                      tolerance), plus a
#                                      warnings-as-errors build
#   scripts/verify.sh sanitize         the invariant checks, then the
#                                      wsd-concurrent and wsd-store test
#                                      suites under Miri (UB/aliasing
#                                      sanitizer); skips with a warning
#                                      when the toolchain has no Miri
#   scripts/verify.sh bench-smoke      the default, plus a quick dispatch_hotpath
#                                      run emitting BENCH_hotpath.json at the
#                                      repo root (override with BENCH_HOTPATH_JSON)
#   scripts/verify.sh connscale-smoke  the default, plus a 64-connection
#                                      connection_scaling sweep asserting the
#                                      reactor's peak thread count stays within
#                                      its handler pool size
#   scripts/verify.sh fleet-smoke      the default, plus a shortened fleet
#                                      scaling sweep asserting >=3x delivered
#                                      throughput 1->4 instances and the
#                                      kill-one failover invariants (zero
#                                      acked loss, zero duplicate delivery)
#   scripts/verify.sh bench-gate       the default, plus fresh dispatch_hotpath /
#                                      connection_scaling / durability /
#                                      fleet_scaling smoke runs
#                                      compared against the checked-in
#                                      BENCH_*.json — fails on a >20% p50 /
#                                      ns-per-op regression
#                                      (BENCH_GATE_THRESHOLD=0.30 loosens it on
#                                      noisy machines); a missing reference
#                                      baseline warns and skips that gate
#   scripts/verify.sh durability-smoke the real-process WAL crash smoke alone
#                                      (also part of the default mode): SIGKILL
#                                      a durable-msgbox writer mid-deposit over
#                                      a temp dir, recover, assert no acked
#                                      message is lost or delivered twice
set -eu

cd "$(dirname "$0")/.."

# Invariant checks run first in every mode: they are the cheapest gate
# and the one most likely to catch a discipline regression. The linter
# also lints itself — full rule set, no baseline tolerance.
# The budget keeps the linter honest about its own cost: a release
# build must finish the whole-workspace analysis in under 500ms.
cargo build -q --release -p wsd-lint
./target/release/wsd-lint --check --budget-ms 500
./target/release/wsd-lint --self
RUSTFLAGS="-D warnings" cargo build --workspace

if [ "${1:-}" = "lint" ]; then
    exit 0
fi

# Miri catches UB and aliasing violations the normal test run cannot;
# the concurrency and storage crates are where that risk lives. The
# component is optional in offline toolchains, so absence is a warning,
# not a failure.
if [ "${1:-}" = "sanitize" ]; then
    if cargo miri --version >/dev/null 2>&1; then
        MIRIFLAGS="${MIRIFLAGS:--Zmiri-disable-isolation}" \
            cargo miri test -p wsd-concurrent -p wsd-store
    else
        echo "verify.sh: WARNING: cargo miri not available in this toolchain; skipping sanitize run" >&2
    fi
    exit 0
fi

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace -- -D warnings

# Real-process crash coverage for the durable msgbox: the seeded
# property sweep runs under `cargo test`; this adds actual SIGKILLs
# against actual files and fsyncs. Cheap (three rounds), so it is part
# of the default sequence, not just its named mode.
if [ -z "${1:-}" ] || [ "${1:-}" = "durability-smoke" ]; then
    smoke_dir=$(mktemp -d)
    cargo run -q --release -p wsd-store --bin durability_smoke -- "$smoke_dir"
    rm -rf "$smoke_dir"
fi

if [ "${1:-}" = "bench-smoke" ]; then
    : "${CRITERION_SAMPLES:=3}"
    # Absolute: cargo runs bench binaries from the package directory.
    : "${BENCH_HOTPATH_JSON:=$(pwd)/BENCH_hotpath.json}"
    export CRITERION_SAMPLES BENCH_HOTPATH_JSON
    # alloc-count layers the counting global allocator under the bench so
    # the JSON carries route_raw allocs/op alongside the timings.
    cargo bench -p wsd-bench --features alloc-count --bench dispatch_hotpath
fi

if [ "${1:-}" = "connscale-smoke" ]; then
    # 64 mostly-idle connections, both front ends; the bench binary
    # asserts the reactor's peak thread count <= pool size + event loop.
    CONNSCALE_SMOKE=1 cargo bench -p wsd-bench --bench connection_scaling
fi

# The fleet smoke runs in the default mode too: it is a few seconds of
# virtual time and guards the tier's two delivery invariants (no acked
# loss, no duplicates across a kill) plus the scale-out floor.
if [ -z "${1:-}" ] || [ "${1:-}" = "fleet-smoke" ]; then
    FLEET_SMOKE=1 cargo bench -p wsd-bench --bench fleet_scaling
fi

if [ "${1:-}" = "bench-gate" ]; then
    : "${CRITERION_SAMPLES:=3}"
    export CRITERION_SAMPLES
    gate_dir=$(mktemp -d)
    trap 'rm -rf "$gate_dir"' EXIT
    BENCH_HOTPATH_JSON="$gate_dir/hotpath.json" \
        cargo bench -p wsd-bench --features alloc-count --bench dispatch_hotpath
    CONNSCALE_SMOKE=1 BENCH_CONNSCALE_JSON="$gate_dir/connscale.json" \
        cargo bench -p wsd-bench --bench connection_scaling
    BENCH_DURABILITY_JSON="$gate_dir/durability.json" \
        cargo bench -p wsd-bench --bench durability
    FLEET_SMOKE=1 BENCH_FLEET_JSON="$gate_dir/fleet.json" \
        cargo bench -p wsd-bench --bench fleet_scaling
    cargo run -q --release -p wsd-bench --bin bench_gate -- \
        BENCH_hotpath.json "$gate_dir/hotpath.json"
    cargo run -q --release -p wsd-bench --bin bench_gate -- \
        BENCH_connscale.json "$gate_dir/connscale.json"
    cargo run -q --release -p wsd-bench --bin bench_gate -- \
        BENCH_durability.json "$gate_dir/durability.json"
    cargo run -q --release -p wsd-bench --bin bench_gate -- \
        BENCH_fleet.json "$gate_dir/fleet.json"
fi
