#!/usr/bin/env sh
# Offline-safe verification: build, test, lint. No network access needed
# (all dependencies are vendored path crates).
set -eu

cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace -- -D warnings
