#!/usr/bin/env sh
# Installs the repo's git hooks. Currently one: a pre-push hook that
# runs the invariant linter (`wsd-lint --check` against the ratchet
# baseline) so discipline regressions are caught before they leave the
# machine. Safe to re-run; refuses to clobber a hook it did not write.
set -eu

cd "$(dirname "$0")/.."

hooks_dir=$(git rev-parse --git-path hooks)
hook="$hooks_dir/pre-push"
marker="# installed by scripts/install-hooks.sh"

if [ -e "$hook" ] && ! grep -qF "$marker" "$hook"; then
    echo "install-hooks.sh: $hook exists and was not installed by this script; not overwriting" >&2
    exit 1
fi

mkdir -p "$hooks_dir"
cat > "$hook" <<EOF
#!/usr/bin/env sh
$marker
# Invariant lint gate: a release build must pass the ratchet baseline
# (and its own 500ms analysis budget) before anything is pushed.
set -eu
cd "\$(git rev-parse --show-toplevel)"
cargo build -q --release -p wsd-lint
exec ./target/release/wsd-lint --check --budget-ms 500
EOF
chmod +x "$hook"
echo "install-hooks.sh: installed $hook"
