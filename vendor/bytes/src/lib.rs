//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset of `bytes::Bytes` the workspace uses: a cheaply
//! clonable, immutable, contiguous byte buffer. Static slices are kept
//! as borrows (no allocation); owned data is reference-counted.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// The empty buffer.
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Wraps a `'static` slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(bytes),
        }
    }

    /// Copies `data` into a fresh owned buffer (the real crate's
    /// constructor for borrowed slices).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            repr: Repr::Shared(data.into()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a sub-buffer of `range` (copies the owned case's range
    /// lazily via `Arc` slicing is not possible, so this clones bytes).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        match &self.repr {
            Repr::Static(s) => Bytes::from_static(&s[range]),
            Repr::Shared(s) => Bytes::from(s[range].to_vec()),
        }
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            repr: Repr::Shared(v.into()),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_owned_compare_equal() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.starts_with(b"ab"));
    }

    #[test]
    fn clone_is_shallow_for_owned() {
        let a = Bytes::from(vec![1u8; 1000]);
        let b = a.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn slice_works() {
        let a = Bytes::from(b"hello world".to_vec());
        assert_eq!(&a.slice(0..5)[..], b"hello");
    }
}
