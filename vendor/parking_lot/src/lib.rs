//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment vendors every third-party dependency; this crate
//! provides the subset of the real `parking_lot` API the workspace uses
//! (non-poisoning `Mutex`, `RwLock` and a `Condvar` whose timed waits take
//! deadlines) implemented directly on `std::sync`. Poisoned locks are
//! recovered transparently, matching `parking_lot`'s behaviour of not
//! propagating panics through lock acquisition.

use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive; `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]. Holds an `Option` internally so [`Condvar`]
/// can temporarily hand the underlying std guard to `std::sync::Condvar`.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified. Spurious wakeups are possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.guard = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_timeout<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.guard = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Blocks until notified or the `deadline` instant passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        if timeout.is_zero() {
            return WaitTimeoutResult(true);
        }
        self.wait_timeout(guard, timeout)
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock; `read()`/`write()` return guards directly.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (the borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_until_deadline_expires() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
