//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses —
//! `Strategy`, `prop_map`/`prop_recursive`, tuple/range/regex strategies,
//! `collection::vec`, `option::of`, `sample::Index`, weighted
//! `prop_oneof!`, and the `proptest!` test macro — with fully
//! deterministic generation (seeded per test by name) and no shrinking.
//! Failures report the generated inputs; rerunning reproduces them
//! exactly.

pub mod regex;
pub mod rng;

pub use rng::TestRng;

use std::rc::Rc;

// ---------------------------------------------------------------------
// Core strategy machinery
// ---------------------------------------------------------------------

/// Error signalled by `prop_assert*` macros inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: std::fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds recursive structures: `f` receives the strategy for the
    /// previous level and returns the next level's strategy. `depth`
    /// levels are stacked on top of `self` (the leaf strategy); the
    /// `desired_size`/`expected_branch_size` hints are accepted for
    /// API compatibility but unused.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = f(strat).boxed();
        }
        strat
    }

    /// Keeps only values passing `pred` (bounded retries, then the last
    /// candidate is used regardless — adequate for sparse filters).
    fn prop_filter<F>(self, _reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: std::fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut last = self.inner.generate(rng);
        for _ in 0..100 {
            if (self.pred)(&last) {
                break;
            }
            last = self.inner.generate(rng);
        }
        last
    }
}

/// A strategy producing exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A weighted union over same-valued strategies (backs `prop_oneof!`).
pub struct Union<T> {
    entries: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: std::fmt::Debug> Union<T> {
    /// Uniform union.
    pub fn new(entries: Vec<BoxedStrategy<T>>) -> Self {
        Union::new_weighted(entries.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted union.
    pub fn new_weighted(entries: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!entries.is_empty(), "prop_oneof! needs at least one arm");
        let total = entries.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        Union { entries, total }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.entries {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        self.entries.last().unwrap().1.generate(rng)
    }
}

// Integer range strategies: `0usize..3`, `1u64..1000`, ...
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                (lo + rng.below(span.saturating_add(1).max(1)) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Regex string strategies: `"[a-z]{1,8}"` used directly as a strategy.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex::Pattern::parse(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

// Tuple strategies up to arity 6.
macro_rules! impl_tuple_strategy {
    ($($S:ident/$v:ident),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($S,)+) = self;
                ($($S.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A/a);
impl_tuple_strategy!(A/a, B/b);
impl_tuple_strategy!(A/a, B/b, C/c);
impl_tuple_strategy!(A/a, B/b, C/c, D/d);
impl_tuple_strategy!(A/a, B/b, C/c, D/d, E/e);
impl_tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f);

// ---------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: std::fmt::Debug + Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.chance(1, 2)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        loop {
            if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                return c;
            }
        }
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------
// Submodules mirroring proptest's layout
// ---------------------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Size bounds for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, 0..10)` — a vector of generated elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.range(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::*;

    /// Strategy for `Option<S::Value>` (¼ `None`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `of(strategy)` — `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.chance(1, 4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// String strategies.
pub mod string {
    use super::*;

    /// A strategy generating strings matching a regex subset.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        pattern: regex::Pattern,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            self.pattern.generate(rng)
        }
    }

    /// Compiles `pattern` into a string strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, regex::RegexError> {
        Ok(RegexGeneratorStrategy {
            pattern: regex::Pattern::parse(pattern)?,
        })
    }
}

/// Sampling helpers.
pub mod sample {
    use super::*;

    /// An arbitrary index, resolved against a collection length at use.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Maps this index into `[0, size)`. Panics if `size == 0`.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            (self.0 % size as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// The `prop::` alias namespace (`use proptest::prelude::*` brings it in).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
    pub use crate::string;
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Stable hash of a test name, used to derive per-test seeds.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), l, r
            )));
        }
    }};
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
}

/// Skips the current case when an assumption fails. (This stand-in
/// counts it as a vacuous pass.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// A (possibly weighted) union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Declares property tests. Each inner `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::seeded(
                    $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)))
                );
                for case in 0..config.cases {
                    let values = ( $($crate::Strategy::generate(&($strat), &mut rng),)* );
                    let repr = format!("{:?}", &values);
                    let ($($arg,)*) = values;
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs {} = {}",
                            case + 1, config.cases, e,
                            stringify!(($($arg),*)), repr
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(u16),
        Pop,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            2 => any::<u16>().prop_map(Op::Push),
            1 => Just(Op::Pop),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..17, v in 1u64..1000) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((1..1000).contains(&v));
        }

        #[test]
        fn vec_and_regex_strategies(items in prop::collection::vec("[a-z]{1,8}", 1..6)) {
            prop_assert!(!items.is_empty() && items.len() < 6);
            for s in &items {
                prop_assert!((1..=8).contains(&s.len()));
                prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
            }
        }

        #[test]
        fn oneof_and_map_compose(ops in prop::collection::vec(op(), 0..50)) {
            // Model check: a Vec<u16> driven by the ops never underflows.
            let mut model: Vec<u16> = Vec::new();
            for op in ops {
                match op {
                    Op::Push(v) => model.push(v),
                    Op::Pop => { model.pop(); }
                }
            }
            prop_assert!(model.len() < 51);
        }

        #[test]
        fn index_is_always_in_bounds(xs in prop::collection::vec(any::<u8>(), 1..9), ix in any::<prop::sample::Index>()) {
            let i = ix.index(xs.len());
            prop_assert!(i < xs.len());
        }

        #[test]
        fn option_of_produces_both(o in prop::option::of(0u32..10)) {
            if let Some(v) = o {
                prop_assert!(v < 10);
            }
        }

        #[test]
        fn tuples_and_mut_patterns(mut s in "[A-Za-z][A-Za-z0-9-]{0,15}", n in 0u8..5) {
            s.push('!');
            prop_assert!(s.ends_with('!'));
            prop_assert!(n < 5);
        }
    }

    #[test]
    fn determinism_same_seed_same_values() {
        let strat = crate::collection::vec("[a-z]{1,8}", 1..6);
        let mut a = crate::TestRng::seeded(99);
        let mut b = crate::TestRng::seeded(99);
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        struct Tree {
            kids: Vec<Tree>,
        }
        fn leaf() -> impl Strategy<Value = Tree> {
            Just(Tree { kids: vec![] })
        }
        let strat = leaf().prop_recursive(4, 32, 5, |inner| {
            crate::collection::vec(inner, 0..5).prop_map(|kids| Tree { kids })
        });
        let mut rng = crate::TestRng::seeded(3);
        fn depth(t: &Tree) -> usize {
            1 + t.kids.iter().map(depth).max().unwrap_or(0)
        }
        for _ in 0..50 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 5);
        }
    }
}
