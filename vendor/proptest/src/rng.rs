//! Deterministic RNG for test-case generation (splitmix64 core).

/// A small, fast, deterministic RNG. Not cryptographic; used only to
/// derive arbitrary test inputs reproducibly.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn seeded(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift reduction; bias is irrelevant for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Bernoulli draw with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}
