//! Generator for a practical regex subset.
//!
//! Supports exactly the constructs the workspace's strategies use:
//! literals, `.`, character classes (`[a-z0-9_]`, negation, `\xHH`
//! escapes, escaped punctuation), groups, alternation, and the
//! quantifiers `?`, `*`, `+`, `{n}`, `{m,n}`. Generation picks uniformly
//! among class members and within repetition bounds.

use crate::rng::TestRng;

/// A parse error for an unsupported or malformed pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError(pub String);

impl std::fmt::Display for RegexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported regex: {}", self.0)
    }
}

impl std::error::Error for RegexError {}

/// Unbounded repetitions (`*`, `+`) generate at most this many copies.
const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
pub(crate) enum Node {
    /// A sequence of nodes matched in order.
    Seq(Vec<Node>),
    /// One alternative among several.
    Alt(Vec<Node>),
    /// A single literal char.
    Lit(char),
    /// `.` — any char except newline.
    AnyChar,
    /// A character class.
    Class(CharClass),
    /// A repetition of the inner node.
    Repeat(Box<Node>, u32, u32),
}

#[derive(Debug, Clone)]
pub(crate) struct CharClass {
    negated: bool,
    /// Inclusive ranges of allowed (or excluded) chars.
    ranges: Vec<(char, char)>,
}

impl CharClass {
    fn contains(&self, c: char) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
        inside != self.negated
    }

    fn sample(&self, rng: &mut TestRng) -> char {
        if !self.negated {
            // Pick a range weighted by its size, then a char within it.
            let total: u64 = self
                .ranges
                .iter()
                .map(|&(lo, hi)| (hi as u64).saturating_sub(lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total.max(1));
            for &(lo, hi) in &self.ranges {
                let span = (hi as u64) - (lo as u64) + 1;
                if pick < span {
                    // Skip the surrogate gap.
                    let mut v = lo as u32 + pick as u32;
                    if (0xD800..=0xDFFF).contains(&v) {
                        v = 0xE000 + (v - 0xD800);
                    }
                    return char::from_u32(v).unwrap_or('a');
                }
                pick -= span;
            }
            return 'a';
        }
        // Negated: rejection-sample, mostly printable ASCII with an
        // occasional wider unicode scalar to keep coverage honest.
        for _ in 0..64 {
            let candidate = if rng.chance(7, 8) {
                char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap()
            } else {
                let v = rng.below(0x2FFF) as u32 + 0xA0;
                match char::from_u32(v) {
                    Some(c) => c,
                    None => continue,
                }
            };
            if self.contains(candidate) {
                return candidate;
            }
        }
        // Dense exclusion set: scan for any permitted char.
        for v in 0x20u32..0xFFFF {
            if let Some(c) = char::from_u32(v) {
                if self.contains(c) {
                    return c;
                }
            }
        }
        'a'
    }
}

/// A parsed, generatable pattern.
#[derive(Debug, Clone)]
pub struct Pattern {
    root: Node,
}

impl Pattern {
    /// Parses `pattern`, rejecting constructs outside the subset.
    pub fn parse(pattern: &str) -> Result<Pattern, RegexError> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0usize;
        let root = parse_alt(&chars, &mut pos)?;
        if pos != chars.len() {
            return Err(RegexError(format!(
                "trailing input at {pos} in {pattern:?}"
            )));
        }
        Ok(Pattern { root })
    }

    /// Generates one string matching the pattern.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        gen_node(&self.root, rng, &mut out);
        out
    }
}

fn gen_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Seq(items) => {
            for item in items {
                gen_node(item, rng, out);
            }
        }
        Node::Alt(alts) => {
            let ix = rng.range(0, alts.len());
            gen_node(&alts[ix], rng, out);
        }
        Node::Lit(c) => out.push(*c),
        Node::AnyChar => {
            // Mostly printable ASCII, sometimes wider unicode; never '\n'.
            let c = loop {
                let c = if rng.chance(3, 4) {
                    char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap()
                } else {
                    match char::from_u32(rng.below(0xFFFF) as u32) {
                        Some(c) => c,
                        None => continue,
                    }
                };
                if c != '\n' {
                    break c;
                }
            };
            out.push(c);
        }
        Node::Class(class) => out.push(class.sample(rng)),
        Node::Repeat(inner, lo, hi) => {
            let n = *lo + rng.below((*hi - *lo + 1) as u64) as u32;
            for _ in 0..n {
                gen_node(inner, rng, out);
            }
        }
    }
}

fn parse_alt(chars: &[char], pos: &mut usize) -> Result<Node, RegexError> {
    let mut alts = vec![parse_seq(chars, pos)?];
    while *pos < chars.len() && chars[*pos] == '|' {
        *pos += 1;
        alts.push(parse_seq(chars, pos)?);
    }
    if alts.len() == 1 {
        Ok(alts.pop().unwrap())
    } else {
        Ok(Node::Alt(alts))
    }
}

fn parse_seq(chars: &[char], pos: &mut usize) -> Result<Node, RegexError> {
    let mut items = Vec::new();
    while *pos < chars.len() {
        match chars[*pos] {
            ')' | '|' => break,
            _ => {
                let atom = parse_atom(chars, pos)?;
                items.push(parse_quantifier(chars, pos, atom)?);
            }
        }
    }
    Ok(Node::Seq(items))
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Result<Node, RegexError> {
    match chars[*pos] {
        '(' => {
            *pos += 1;
            // Non-capturing group marker is tolerated.
            if chars[*pos..].starts_with(&['?', ':']) {
                *pos += 2;
            }
            let inner = parse_alt(chars, pos)?;
            if *pos >= chars.len() || chars[*pos] != ')' {
                return Err(RegexError("unclosed group".into()));
            }
            *pos += 1;
            Ok(inner)
        }
        '[' => {
            *pos += 1;
            parse_class(chars, pos)
        }
        '.' => {
            *pos += 1;
            Ok(Node::AnyChar)
        }
        '\\' => {
            *pos += 1;
            let c = parse_escape(chars, pos)?;
            Ok(Node::Lit(c))
        }
        c @ ('*' | '+' | '?' | '{') => Err(RegexError(format!("dangling quantifier {c:?}"))),
        c => {
            *pos += 1;
            Ok(Node::Lit(c))
        }
    }
}

fn parse_escape(chars: &[char], pos: &mut usize) -> Result<char, RegexError> {
    let c = *chars
        .get(*pos)
        .ok_or_else(|| RegexError("trailing backslash".into()))?;
    *pos += 1;
    match c {
        'x' => {
            let hex: String = chars
                .get(*pos..*pos + 2)
                .ok_or_else(|| RegexError("truncated \\x escape".into()))?
                .iter()
                .collect();
            *pos += 2;
            let v = u32::from_str_radix(&hex, 16)
                .map_err(|_| RegexError(format!("bad \\x escape {hex:?}")))?;
            char::from_u32(v).ok_or_else(|| RegexError("bad \\x codepoint".into()))
        }
        'n' => Ok('\n'),
        'r' => Ok('\r'),
        't' => Ok('\t'),
        // Escaped punctuation/metachars stand for themselves.
        other => Ok(other),
    }
}

fn parse_class(chars: &[char], pos: &mut usize) -> Result<Node, RegexError> {
    let negated = *pos < chars.len() && chars[*pos] == '^';
    if negated {
        *pos += 1;
    }
    let mut ranges: Vec<(char, char)> = Vec::new();
    let mut first = true;
    loop {
        let c = *chars
            .get(*pos)
            .ok_or_else(|| RegexError("unclosed class".into()))?;
        if c == ']' && !first {
            *pos += 1;
            break;
        }
        first = false;
        let lo = if c == '\\' {
            *pos += 1;
            parse_escape(chars, pos)?
        } else {
            *pos += 1;
            c
        };
        // Range if a '-' follows and isn't the closing position.
        if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&n| n != ']') {
            *pos += 1;
            let hc = chars[*pos];
            let hi = if hc == '\\' {
                *pos += 1;
                parse_escape(chars, pos)?
            } else {
                *pos += 1;
                hc
            };
            if hi < lo {
                return Err(RegexError(format!("inverted range {lo:?}-{hi:?}")));
            }
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    if ranges.is_empty() {
        return Err(RegexError("empty class".into()));
    }
    Ok(Node::Class(CharClass { negated, ranges }))
}

fn parse_quantifier(chars: &[char], pos: &mut usize, atom: Node) -> Result<Node, RegexError> {
    let Some(&c) = chars.get(*pos) else {
        return Ok(atom);
    };
    match c {
        '?' => {
            *pos += 1;
            Ok(Node::Repeat(Box::new(atom), 0, 1))
        }
        '*' => {
            *pos += 1;
            Ok(Node::Repeat(Box::new(atom), 0, UNBOUNDED_CAP))
        }
        '+' => {
            *pos += 1;
            Ok(Node::Repeat(Box::new(atom), 1, UNBOUNDED_CAP))
        }
        '{' => {
            *pos += 1;
            let mut lo = String::new();
            while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
                lo.push(chars[*pos]);
                *pos += 1;
            }
            let lo: u32 = lo
                .parse()
                .map_err(|_| RegexError("bad repetition lower bound".into()))?;
            let hi = match chars.get(*pos) {
                Some(',') => {
                    *pos += 1;
                    let mut hi = String::new();
                    while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
                        hi.push(chars[*pos]);
                        *pos += 1;
                    }
                    if hi.is_empty() {
                        lo + UNBOUNDED_CAP
                    } else {
                        hi.parse()
                            .map_err(|_| RegexError("bad repetition upper bound".into()))?
                    }
                }
                _ => lo,
            };
            if chars.get(*pos) != Some(&'}') {
                return Err(RegexError("unclosed repetition".into()));
            }
            *pos += 1;
            if hi < lo {
                return Err(RegexError("inverted repetition bounds".into()));
            }
            Ok(Node::Repeat(Box::new(atom), lo, hi))
        }
        _ => Ok(atom),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(pattern: &str, verify: impl Fn(&str) -> bool) {
        let p = Pattern::parse(pattern).unwrap_or_else(|e| panic!("{pattern:?}: {e}"));
        let mut rng = TestRng::seeded(42);
        for _ in 0..200 {
            let s = p.generate(&mut rng);
            assert!(verify(&s), "{pattern:?} generated {s:?}");
        }
    }

    #[test]
    fn simple_class_with_bounds() {
        check("[a-z]{1,8}", |s| {
            (1..=8).contains(&s.chars().count())
                && s.chars().all(|c| c.is_ascii_lowercase())
        });
    }

    #[test]
    fn leading_char_then_tail() {
        check("[a-zA-Z_][a-zA-Z0-9_.-]{0,12}", |s| {
            let mut cs = s.chars();
            let head = cs.next().unwrap();
            (head.is_ascii_alphabetic() || head == '_')
                && cs.all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c))
        });
    }

    #[test]
    fn negated_control_class() {
        check("[^\u{0}-\u{8}\u{b}\u{c}\u{e}-\u{1f}]{0,40}", |s| {
            s.chars().all(|c| {
                let v = c as u32;
                !(v <= 8 || v == 0xb || v == 0xc || (0xe..=0x1f).contains(&v))
            })
        });
    }

    #[test]
    fn hex_escapes_and_groups() {
        check("[\\x21-\\x7e]( ?[\\x21-\\x7e]){0,30}", |s| {
            !s.is_empty() && s.chars().all(|c| c == ' ' || ('\x21'..='\x7e').contains(&c))
        });
    }

    #[test]
    fn dot_never_emits_newline() {
        check(".{0,300}", |s| !s.contains('\n'));
    }

    #[test]
    fn escaped_punctuation_in_class() {
        check("[<>&;/='\"a-z0-9 \\-!\\[\\]?]{0,200}", |s| {
            s.chars()
                .all(|c| "<>&;/='\" -![]?".contains(c) || c.is_ascii_lowercase() || c.is_ascii_digit())
        });
    }

    #[test]
    fn alternation_picks_both_sides() {
        let p = Pattern::parse("ab|cd").unwrap();
        let mut rng = TestRng::seeded(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            seen.insert(p.generate(&mut rng));
        }
        assert_eq!(
            seen,
            ["ab".to_string(), "cd".to_string()].into_iter().collect()
        );
    }
}
