//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/type surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion`, benchmark groups,
//! `BenchmarkId`, `Throughput`, `BatchSize`, `black_box` — backed by a
//! simple wall-clock timer: each benchmark is warmed up briefly, then
//! timed over a fixed number of iterations and reported as mean
//! time/iteration on stdout. No statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// Opaque value barrier (re-exported for API compatibility).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are sized (accepted, unused).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Declared throughput of a benchmark (accepted, echoed in output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    samples: u64,
    last: Option<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warmup: one untimed call.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.last = Some(start.elapsed() / self.samples as u32);
    }

    /// Times `routine` with a fresh `setup` output per iteration
    /// (setup time excluded).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.last = Some(total / self.samples as u32);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Sets measurement time (accepted, unused).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<R>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher) -> R,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.to_string(), f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I) -> R,
    ) -> &mut Self {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    fn run<R>(&self, id: &str, mut f: impl FnMut(&mut Bencher) -> R) {
        let mut bencher = Bencher {
            samples: self.sample_size.min(self.criterion.max_samples),
            last: None,
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id);
        match bencher.last {
            Some(per_iter) => {
                let tp = match self.throughput {
                    Some(Throughput::Bytes(n)) if per_iter.as_nanos() > 0 => {
                        let gib = n as f64 / per_iter.as_secs_f64() / (1 << 30) as f64;
                        format!("  ({gib:.3} GiB/s)")
                    }
                    Some(Throughput::Elements(n)) if per_iter.as_nanos() > 0 => {
                        format!("  ({:.0} elem/s)", n as f64 / per_iter.as_secs_f64())
                    }
                    _ => String::new(),
                };
                println!("bench: {label:<60} {per_iter:>12.3?}/iter{tp}");
            }
            None => println!("bench: {label:<60} (no measurement)"),
        }
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    default_samples: u64,
    max_samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs quick: these benches wrap whole simulations. The
        // sample count can be raised via CRITERION_SAMPLES.
        let default_samples = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Criterion {
            default_samples,
            max_samples: u64::MAX,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: self.default_samples,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<R>(
        &mut self,
        id: &str,
        f: impl FnMut(&mut Bencher) -> R,
    ) -> &mut Self {
        let group = BenchmarkGroup {
            criterion: self,
            name: "criterion".into(),
            sample_size: self.default_samples,
            throughput: None,
        };
        group.run(id, f);
        self
    }

    /// Configures sample size (accepted for API compatibility).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_samples = (n as u64).max(1);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("add", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        g.finish();
        // warmup + samples
        assert!(runs >= 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2).throughput(Throughput::Bytes(8));
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }

    #[test]
    fn iter_batched_runs_setup_each_time() {
        let mut b = Bencher {
            samples: 5,
            last: None,
        };
        let mut setups = 0u32;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 6);
        assert!(b.last.is_some());
    }
}
