//! Rebuild the paper's trans-Atlantic testbed on the deterministic
//! network simulator and run a one-minute RPC load test — a miniature
//! Figure 5 point, but showing the simulator API directly.
//!
//! ```text
//! cargo run --example trans_atlantic_sim
//! ```

use std::sync::Arc;

use ws_dispatcher::core::registry::Registry;
use ws_dispatcher::core::sim::{EchoMode, SimEchoService, SimRpcDispatcher};
use ws_dispatcher::core::url::Url;
use ws_dispatcher::loadgen::ramp::ClientPlacement;
use ws_dispatcher::loadgen::{spawn_rpc_fleet, RpcClientConfig};
use ws_dispatcher::netsim::{profiles, FirewallPolicy, SimDuration, SimTime, Simulation};

fn main() {
    let mut sim = Simulation::new(2005);

    // The paper's sites, with their measured link speeds. The WS host
    // would normally sit behind the INRIA firewall; the dispatcher host
    // is the designated opening (here both open so the direct/dispatched
    // comparison is apples-to-apples).
    let ws_host = sim.add_host(
        profiles::inria_fast("inria-fast")
            .firewall(FirewallPolicy::Open)
            .cpu_per_kb(SimDuration::from_micros(500)),
    );
    let disp_host = sim.add_host(
        profiles::inria_fast("dispatcher")
            .firewall(FirewallPolicy::Open)
            .cpu_per_kb(SimDuration::from_micros(500)),
    );
    let client_host = sim.add_host(profiles::iu_high("iu-backbone"));

    // The echo WS with ~10 ms of 2004-Java-SOAP CPU per message.
    let service = SimEchoService::new(EchoMode::Rpc, SimDuration::from_millis(10));
    let service_stats = service.stats();
    let sp = sim.spawn(ws_host, Box::new(service));
    sim.listen(sp, 8888);

    // The RPC-Dispatcher in front of it.
    let registry = Arc::new(Registry::new());
    registry.register("Echo", Url::parse("http://inria-fast:8888/echo").unwrap());
    let dispatcher = SimRpcDispatcher::new(
        registry,
        SimDuration::from_millis(3),
        SimDuration::from_secs(3),
        SimDuration::from_secs(30),
    );
    let disp_stats = dispatcher.stats();
    let dp = sim.spawn(disp_host, Box::new(dispatcher));
    sim.listen(dp, 8081);

    // 100 clients from Indiana, ramped over 5 virtual seconds, sending
    // the paper's 483-byte echo message for one virtual minute.
    let fleet = spawn_rpc_fleet(
        &mut sim,
        ClientPlacement::SharedHost(client_host),
        100,
        &RpcClientConfig {
            target_host: "dispatcher".into(),
            target_port: 8081,
            path: "/svc/Echo".into(),
            run_for: SimDuration::from_secs(60),
            ..RpcClientConfig::default()
        },
        SimDuration::from_secs(5),
    );

    let minute = SimTime::ZERO + SimDuration::from_secs(60);
    sim.run_until(minute);

    let totals = fleet.totals();
    let latency = totals.latency.as_ref().expect("latency recorded");
    println!("virtual time elapsed : {}", sim.now());
    println!("events processed     : {}", sim.events_processed());
    println!("messages transmitted : {}", totals.transmitted);
    println!("messages not sent    : {}", totals.not_sent);
    println!("throughput           : {:.0} messages/minute", totals.per_minute(60.0));
    println!(
        "round-trip latency   : p50 {:.1} ms, p95 {:.1} ms, max {:.1} ms",
        latency.p50_us as f64 / 1000.0,
        latency.p95_us as f64 / 1000.0,
        latency.max_us as f64 / 1000.0
    );
    println!(
        "dispatcher           : received={} forwarded={} relayed={}",
        disp_stats.received(),
        disp_stats.forwarded(),
        disp_stats.relayed()
    );
    println!("service responses    : {}", service_stats.responses_sent());
    assert!(totals.transmitted > 0);
    assert_eq!(totals.not_sent, 0);
    println!("ok");
}
