//! Quickstart: expose a Web Service through the RPC-Dispatcher and call
//! it by its logical name.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The topology is the paper's Figure 1 on the threaded runtime: a
//! client, the dispatcher (with its registry), and a Web Service whose
//! physical address the client never sees.

use std::sync::Arc;
use std::time::Duration;

use ws_dispatcher::core::config::DispatcherConfig;
use ws_dispatcher::core::registry::Registry;
use ws_dispatcher::core::rt::{rpc_call, EchoServer, Network, RpcDispatcherServer};
use ws_dispatcher::core::security::PolicyChain;
use ws_dispatcher::core::url::Url;
use ws_dispatcher::soap::{rpc, SoapVersion};

fn main() {
    // The in-process internet.
    let net = Network::new();

    // A Web Service on its "real" host — inside the inaccessible zone.
    let ws = EchoServer::start(&net, "ws-internal", 8888, 4, Duration::from_millis(2));

    // The registry maps the logical name clients use to the physical
    // address (paper §4.1: "the role of dispatcher is to translate
    // logical address to known physical locations").
    let registry = Arc::new(Registry::new());
    registry.register(
        "EchoService",
        Url::parse("http://ws-internal:8888/echo").unwrap(),
    );
    println!("registry:\n{}", registry.to_file_string());

    // The dispatcher at the edge.
    let dispatcher = RpcDispatcherServer::start(
        &net,
        "dispatcher",
        8081,
        Arc::clone(&registry),
        PolicyChain::new(),
        DispatcherConfig::default(),
    );

    // A client calls the *logical* service.
    let request = rpc::echo_request(SoapVersion::V11, "hello through the dispatcher");
    let response = rpc_call(
        &net,
        "dispatcher",
        8081,
        "/svc/EchoService",
        &request,
        Some(Duration::from_secs(5)),
    )
    .expect("call failed");
    let echoed = rpc::parse_echo_response(&response).expect("not an echo response");
    println!("echoed: {echoed:?}");
    assert_eq!(echoed, "hello through the dispatcher");

    let stats = dispatcher.stats();
    println!(
        "dispatcher: received={} forwarded={} relayed={}",
        stats.received, stats.forwarded, stats.relayed
    );

    dispatcher.shutdown();
    ws.shutdown();
    println!("ok");
}
