//! The paper's future-work load balancing (§4.4: "integrate a
//! load-balancing system into the Registry service that uses a farm of
//! WS-Dispatchers"): one logical name backed by a farm of service
//! endpoints, round-robin selection, liveness-based failover, and
//! single-sign-on token checks at the dispatcher.
//!
//! ```text
//! cargo run --example load_balanced_farm
//! ```

use std::sync::Arc;
use std::time::Duration;

use ws_dispatcher::core::config::DispatcherConfig;
use ws_dispatcher::core::registry::{BalanceStrategy, Registry};
use ws_dispatcher::core::rt::{rpc_call, EchoServer, Network, RpcDispatcherServer};
use ws_dispatcher::core::security::{attach_token, PolicyChain, TokenAuth};
use ws_dispatcher::core::url::Url;
use ws_dispatcher::soap::{rpc, SoapVersion};

fn main() {
    let net = Network::new();

    // A farm of three echo workers.
    let workers: Vec<EchoServer> = (0..3)
        .map(|i| EchoServer::start(&net, &format!("worker-{i}"), 8888, 2, Duration::ZERO))
        .collect();

    // One logical service, three physical endpoints, round-robin.
    let registry = Arc::new(Registry::new().with_strategy(BalanceStrategy::RoundRobin));
    registry.register_many(
        "Echo",
        (0..3)
            .map(|i| Url::parse(&format!("http://worker-{i}:8888/echo")).unwrap())
            .collect(),
        Some("<definitions name=\"Echo\"/>".to_string()),
    );

    // The dispatcher also enforces single sign-on: services behind it
    // "do not need to implement security — instead rely on WSD".
    let policies = PolicyChain::new().with(TokenAuth::new(["token-alice"]));
    let dispatcher = RpcDispatcherServer::start(
        &net,
        "dispatcher",
        8081,
        Arc::clone(&registry),
        policies,
        DispatcherConfig::default(),
    );

    // An unauthenticated call is rejected at the edge.
    let bare = rpc::echo_request(SoapVersion::V11, "no token");
    let resp = rpc_call(&net, "dispatcher", 8081, "/svc/Echo", &bare, None).unwrap();
    assert!(resp.as_fault().is_some(), "must be rejected without a token");
    println!("unauthenticated call rejected: {:?}", resp.as_fault().unwrap().reason);

    // Authenticated calls spread across the farm.
    for i in 0..6 {
        let mut env = rpc::echo_request(SoapVersion::V11, &format!("call {i}"));
        attach_token(&mut env, "token-alice");
        let resp = rpc_call(&net, "dispatcher", 8081, "/svc/Echo", &env, None).unwrap();
        assert_eq!(rpc::parse_echo_response(&resp).unwrap(), format!("call {i}"));
    }
    let served: Vec<u64> = workers.iter().map(|w| w.served()).collect();
    println!("round-robin spread across the farm: {served:?}");
    assert!(served.iter().all(|&s| s == 2), "each worker serves 2 of 6");

    // Kill one worker: the dispatcher marks it down on the first failed
    // forward and fails over to the survivors.
    workers[0].shutdown();
    println!("worker-0 stopped; calling 4 more times...");
    let mut ok = 0;
    for i in 0..4 {
        let mut env = rpc::echo_request(SoapVersion::V11, &format!("after-failure {i}"));
        attach_token(&mut env, "token-alice");
        let resp = rpc_call(&net, "dispatcher", 8081, "/svc/Echo", &env, None).unwrap();
        if resp.as_fault().is_none() {
            ok += 1;
        }
    }
    println!("{ok}/4 calls succeeded after failover (first may 502 while marking down)");
    assert!(ok >= 3);
    let entry = registry.entry("Echo").unwrap();
    println!(
        "live endpoints now: {:?}",
        entry.live_endpoints().iter().map(|u| u.to_string()).collect::<Vec<_>>()
    );
    assert_eq!(entry.live_endpoints().len(), 2);

    dispatcher.shutdown();
    for w in &workers[1..] {
        w.shutdown();
    }
    println!("ok");
}
