//! The paper's headline scenario: a client with **no reachable network
//! endpoint** (behind a firewall/NAT) holds an asynchronous conversation
//! with a Web Service, using the MSG-Dispatcher and a WS-MsgBox mailbox.
//!
//! ```text
//! cargo run --example firewall_messaging
//! ```
//!
//! Flow (paper Figures 1 and 2):
//! 1. the client creates a mailbox at the WS-MsgBox service,
//! 2. sends a one-way echo request to the dispatcher with
//!    `wsa:ReplyTo` = the mailbox's deposit URL,
//! 3. the dispatcher resolves the logical name, rewrites the addressing
//!    headers and forwards to the WS,
//! 4. the WS replies through the dispatcher, which deposits into the
//!    mailbox (the client's own endpoint is unreachable),
//! 5. the client polls the mailbox over plain RPC — which always works
//!    outbound through firewalls — and picks up the correlated reply.

use std::sync::Arc;
use std::time::Duration;

use ws_dispatcher::core::config::{DispatcherConfig, MsgBoxConfig};
use ws_dispatcher::core::msg::MsgCore;
use ws_dispatcher::core::registry::Registry;
use ws_dispatcher::core::rt::{
    send_oneway, MailboxClient, MsgBoxServer, MsgDispatcherServer, Network,
};
use ws_dispatcher::core::url::Url;
use ws_dispatcher::http::{serve_connection, Limits, Response, Status};
use ws_dispatcher::soap::{rpc, Envelope, SoapVersion};
use ws_dispatcher::wsa::{EndpointReference, WsaHeaders};

fn main() {
    let net = Network::new();

    // --- a one-way echo Web Service that replies via its ReplyTo ------
    {
        let net2 = Arc::clone(&net);
        net.listen("ws-internal", 8888, move |stream| {
            let net = Arc::clone(&net2);
            std::thread::spawn(move || {
                let _ = serve_connection(stream, &Limits::default(), |req| {
                    let env = match Envelope::parse(&req.body_utf8()) {
                        Ok(e) => e,
                        Err(_) => return Response::empty(Status::BAD_REQUEST),
                    };
                    let headers = WsaHeaders::from_envelope(&env).unwrap_or_default();
                    let text = rpc::parse_echo(&env).unwrap_or_default();
                    // Build the reply, correlated via RelatesTo.
                    let mut reply = rpc::echo_response(env.version, &text);
                    let mut h = WsaHeaders::new();
                    if let Some(r) = &headers.reply_to {
                        h = h.to(r.address.clone());
                    }
                    if let Some(id) = &headers.message_id {
                        h = h.relates_to(id.clone());
                    }
                    h.apply(&mut reply);
                    if let Some(r) = &headers.reply_to {
                        if let Ok(url) = Url::parse(&r.address) {
                            let _ = ws_dispatcher::core::rt::send_oneway(
                                &net, &url.host, url.port, &url.path, &reply,
                            );
                        }
                    }
                    Response::empty(Status::ACCEPTED)
                });
            });
        });
    }

    // --- dispatcher + mailbox service ---------------------------------
    let registry = Arc::new(Registry::new());
    registry.register("Echo", Url::parse("http://ws-internal:8888/echo").unwrap());
    let core = MsgCore::new(registry, "http://dispatcher:8080/msg", 42);
    let dispatcher =
        MsgDispatcherServer::start(&net, "dispatcher", 8080, core, DispatcherConfig::default());
    let msgbox = MsgBoxServer::start(&net, "msgbox", 8082, MsgBoxConfig::default(), 42);

    // --- the firewalled client ----------------------------------------
    // Inbound connections to "laptop" are dropped, exactly like a NATed
    // cable-modem client. Outbound still works.
    net.set_firewalled("laptop", true);

    // 1. Create a mailbox (plain RPC, outbound — works through the
    //    firewall).
    let mailbox = MailboxClient::create(&net, "msgbox", 8082).expect("create mailbox");
    println!("mailbox created: {} -> {}", mailbox.box_id(), mailbox.deposit_url());

    // 2. Send the one-way request with ReplyTo = the mailbox.
    let mut request = rpc::echo_request(SoapVersion::V11, "message from behind the firewall");
    WsaHeaders::new()
        .to("http://dispatcher/svc/Echo")
        .reply_to(EndpointReference::new(mailbox.deposit_url()))
        .message_id("uuid:example-1")
        .apply(&mut request);
    send_oneway(&net, "dispatcher", 8080, "/msg", &request).expect("send");
    println!("one-way request accepted by the dispatcher");

    // 3-5. The reply flows WS → dispatcher → mailbox; poll for it.
    let replies = mailbox
        .poll_until(10, Duration::from_millis(20), Duration::from_secs(5))
        .expect("poll");
    assert_eq!(replies.len(), 1, "expected exactly one reply");
    let text = rpc::parse_echo_response(&replies[0]).expect("echo response");
    let correlated = WsaHeaders::from_envelope(&replies[0])
        .ok()
        .and_then(|h| h.relates_to.first().map(|(id, _)| id.clone()));
    println!("reply from mailbox: {text:?} (RelatesTo {correlated:?})");
    assert_eq!(text, "message from behind the firewall");
    assert_eq!(correlated.as_deref(), Some("uuid:example-1"));

    // Clean up: destroy the mailbox "to free memory space".
    mailbox.destroy().expect("destroy");
    dispatcher.shutdown();
    msgbox.shutdown();
    println!("ok");
}
