//! The registry as a browseable service — the paper's "Yellow Pages"
//! (§4.1) and liveness-checking (§4.4) future work.
//!
//! ```text
//! cargo run --example registry_browser
//! ```
//!
//! Plain HTTP GET against the registry service: list everything, inspect
//! one entry's endpoints and WSDL, and actively probe a service farm,
//! letting the registry mark dead endpoints down.

use std::sync::Arc;
use std::time::Duration;

use ws_dispatcher::core::registry::Registry;
use ws_dispatcher::core::rt::{EchoServer, Network, RegistryServer};
use ws_dispatcher::core::url::Url;
use ws_dispatcher::http::{HttpClient, Request};

fn get(net: &Arc<Network>, target: &str) -> String {
    let stream = net.connect("registry", 8090).expect("connect");
    let mut client = HttpClient::new(stream);
    let mut req = Request::get("registry:8090", target);
    req.headers.set("Connection", "close");
    let resp = client.call(&req).expect("GET");
    resp.body_utf8().to_string()
}

fn main() {
    let net = Network::new();

    // A farm of two echo workers — but only one is actually running.
    let live_worker = EchoServer::start(&net, "worker-0", 8888, 2, Duration::ZERO);
    let registry = Arc::new(Registry::new());
    registry.register_many(
        "EchoService",
        vec![
            Url::parse("http://worker-0:8888/echo").unwrap(),
            Url::parse("http://worker-1:8888/echo").unwrap(), // never started
        ],
        Some("<definitions name=\"EchoService\" targetNamespace=\"urn:wsd:echo\"/>".into()),
    );
    registry.register(
        "ReportService",
        Url::parse("http://reports:9001/run").unwrap(),
    );

    let server = RegistryServer::start(&net, "registry", 8090, Arc::clone(&registry));

    println!("== GET /registry (the Yellow Pages)\n{}", get(&net, "/registry"));
    println!("== GET /registry/EchoService\n{}", get(&net, "/registry/EchoService"));

    println!("== GET /alive/EchoService (active probe)");
    let probe = get(&net, "/alive/EchoService");
    println!("{probe}");
    assert!(probe.contains("worker-0:8888/echo alive"));
    assert!(probe.contains("worker-1:8888/echo down"));

    // The probe updated the registry: the dispatcher would now skip the
    // dead endpoint.
    let entry = registry.entry("EchoService").unwrap();
    println!(
        "live endpoints after probe: {:?}",
        entry
            .live_endpoints()
            .iter()
            .map(|u| u.to_string())
            .collect::<Vec<_>>()
    );
    assert_eq!(entry.live_endpoints().len(), 1);

    server.shutdown();
    live_worker.shutdown();
    println!("ok");
}
