//! # ws-dispatcher
//!
//! Asynchronous peer-to-peer Web Services through firewalls — a complete
//! Rust implementation of the system described in *"Asynchronous
//! Peer-to-Peer Web Services and Firewalls"* (Caromel, di Costanzo,
//! Gannon, Slominski — IPDPS 2005).
//!
//! This crate is the facade: it re-exports the whole stack under stable
//! names. The pieces:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`concurrent`] | `wsd-concurrent` | thread pool, FIFO queue, sharded map, thread budget |
//! | [`xml`] | `wsd-xml` | from-scratch XML parser/writer with namespaces |
//! | [`soap`] | `wsd-soap` | SOAP 1.1/1.2 envelopes, faults, RPC wrapping |
//! | [`wsa`] | `wsd-wsa` | WS-Addressing headers, EPRs, dispatcher rewrite |
//! | [`http`] | `wsd-http` | HTTP/1.x messages, parser, in-memory streams |
//! | [`netsim`] | `wsd-netsim` | deterministic discrete-event network simulator |
//! | [`core`] | `wsd-core` | **the dispatcher**: registry, RPC/MSG dispatching, WS-MsgBox |
//! | [`loadgen`] | `wsd-loadgen` | the paper's ramping echo test client |
//!
//! # Quickstart (threaded runtime)
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use ws_dispatcher::core::registry::Registry;
//! use ws_dispatcher::core::rt::{rpc_call, EchoServer, Network, RpcDispatcherServer};
//! use ws_dispatcher::core::security::PolicyChain;
//! use ws_dispatcher::core::url::Url;
//! use ws_dispatcher::core::config::DispatcherConfig;
//! use ws_dispatcher::soap::{rpc, SoapVersion};
//!
//! let net = Network::new();
//! let ws = EchoServer::start(&net, "ws", 8888, 4, Duration::ZERO);
//! let registry = Arc::new(Registry::new());
//! registry.register("Echo", Url::parse("http://ws:8888/echo").unwrap());
//! let disp = RpcDispatcherServer::start(
//!     &net, "dispatcher", 8081, registry, PolicyChain::new(), DispatcherConfig::default());
//!
//! let req = rpc::echo_request(SoapVersion::V11, "hello");
//! let resp = rpc_call(&net, "dispatcher", 8081, "/svc/Echo", &req, None).unwrap();
//! assert_eq!(rpc::parse_echo_response(&resp).unwrap(), "hello");
//! disp.shutdown();
//! ws.shutdown();
//! ```

pub use wsd_concurrent as concurrent;
pub use wsd_core as core;
pub use wsd_http as http;
pub use wsd_loadgen as loadgen;
pub use wsd_netsim as netsim;
pub use wsd_soap as soap;
pub use wsd_wsa as wsa;
pub use wsd_xml as xml;
